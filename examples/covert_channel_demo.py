#!/usr/bin/env python3
"""A covert channel with no shared memory and no cache lines (Vuln 4).

Two processes that share *nothing* — no mmap, no files, no common
frames — exchange a message through SSBP: the sender charges (or not) a
predictor entry the receiver found by code sliding; the receiver reads
each bit as a stall-vs-bypass timing difference.

Run:  python examples/covert_channel_demo.py
"""

from repro.attacks.covert_channel import SsbpCovertChannel

MESSAGE = b"hi"


def to_bits(payload: bytes) -> list[int]:
    return [byte >> bit & 1 for byte in payload for bit in range(8)]


def from_bits(bits: list[int]) -> bytes:
    out = bytearray()
    for index in range(0, len(bits), 8):
        out.append(sum(bit << pos for pos, bit in enumerate(bits[index : index + 8])))
    return bytes(out)


def main() -> None:
    channel = SsbpCovertChannel()
    sender_frames = {
        m.frame for m in channel.sender_process.address_space.pages().values()
    }
    receiver_frames = {
        m.frame for m in channel.receiver_process.address_space.pages().values()
    }
    print(f"shared physical frames between the processes: "
          f"{len(sender_frames & receiver_frames)}")

    attempts = channel.handshake()
    print(f"handshake: receiver collided with the sender's entry after "
          f"{attempts} slide attempts (bound: 4096)")

    report = channel.transmit(to_bits(MESSAGE))
    decoded = from_bits(report.received)
    print(f"sent {MESSAGE!r}, received {decoded!r}")
    print(f"bit errors: {report.errors}/{len(report.sent)}; "
          f"bandwidth {report.bits_per_second:,.0f} bit/s (simulated time)")


if __name__ == "__main__":
    main()
