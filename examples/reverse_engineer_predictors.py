#!/usr/bin/env python3
"""Re-run the paper's full reverse-engineering campaign, black-box.

Treats the simulated machine exactly like the authors treated their
Ryzen 9 5900X: no peeking at simulator internals — only stld sequences,
RDPRU-style timing, and page-table inspection where the paper used
PTEditor.  Produces the paper's findings one by one:

* the six timing levels and the TABLE I model (>99.8% agreement);
* the IPA hash: stride-12 XOR fold (Fig 4);
* PSFP's 12-entry abrupt eviction, SSBP's gradual curve (Fig 5);
* collision statistics (Fig 7).

Run:  python examples/reverse_engineer_predictors.py
"""

from repro.experiments import (
    fig4_hash,
    fig5_eviction,
    fig7_collisions,
    table1_state_machine,
    table2_counters,
)


def main() -> None:
    print(table1_state_machine.run(sequences=30).render())
    print()
    print(table2_counters.run().render())
    print()
    print(fig4_hash.run().render())
    print()
    print(fig5_eviction.run(psfp_trials=5, ssbp_trials=30).render())
    print()
    print(fig7_collisions.run(trials=8).render())


if __name__ == "__main__":
    main()
