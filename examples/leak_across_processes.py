#!/usr/bin/env python3
"""Spectre-CTL end to end: leak a victim-private secret across processes.

Reproduces the paper's headline attack (Section V-C) on the simulated
machine: the attacker process shares only an *input buffer* with the
victim, finds SSBP collisions with the victim gadget's loads by code
sliding, opens transient windows by delaying the victim's store, and
reads the secret back through the SSBP covert channel — no Flush+Reload,
no shared secret-dependent cache lines.

Run:  python examples/leak_across_processes.py
"""

import time

from repro.attacks.spectre_ctl import SpectreCTL
from repro.osm.domains import SecurityDomain

SECRET = b"SEV keys :)"


def main() -> None:
    print("setting up victim (user process) and attacker...")
    attack = SpectreCTL(victim_domain=SecurityDomain.USER)
    print(f"  victim pid {attack.victim.pid} holds the secret at "
          f"{attack.secret_va:#x} (no attacker mapping)")

    print("phase 1: code-sliding collision search (unprivileged)...")
    started = time.time()
    load1, load3 = attack.find_collisions()
    print(f"  gadget load 1 collided after {load1.attempts} attempts")
    print(f"  gadget load 3 collided after {load3.attempts} attempts "
          f"({time.time() - started:.1f}s)")

    print(f"phase 2+3: leaking {len(SECRET)} bytes, 256 guesses each...")
    started = time.time()
    report = attack.leak(SECRET)
    elapsed = time.time() - started
    print(f"  recovered: {report.recovered!r}")
    print(f"  accuracy:  {report.accuracy:.2%}  (paper: 99.97%)")
    print(f"  bandwidth: {report.bytes_per_second:,.0f} B/s of simulated "
          f"time ({elapsed:.1f}s wall)")
    assert report.recovered == SECRET, "the leak should be exact"

    print()
    print("same attack against a KERNEL victim (Vulnerability 1: SSBP is")
    print("shared across security domains)...")
    kernel_attack = SpectreCTL(victim_domain=SecurityDomain.KERNEL)
    kernel_attack.find_collisions()
    kernel_report = kernel_attack.leak(b"root")
    print(f"  recovered from kernel thread: {kernel_report.recovered!r}")


if __name__ == "__main__":
    main()
