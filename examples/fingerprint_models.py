#!/usr/bin/env python3
"""Fig 11 end to end: which CNN is my neighbour running?

A victim process runs inference with one of six CNN models; an attacker
sharing the core walks the entire SSBP space by code sliding, reads
every C3 value through timing, and aggregates the value-frequency
vector.  An SVM trained on labelled fingerprints then identifies the
model (the paper reports > 95.5%).

This script collects a reduced dataset (a few fingerprints per model),
prints the per-model signatures, and scores the classifier on held-out
samples.  Expect a few minutes.

Run:  python examples/fingerprint_models.py
"""

import time

import numpy as np

from repro.analysis.svm import OneVsRestSvm, train_test_split
from repro.attacks.fingerprint import collect_dataset
from repro.workloads.cnn import CNN_MODELS


def main() -> None:
    print("collecting SSBP fingerprints (fresh machine per sample)...")
    started = time.time()
    features, labels, names = collect_dataset(
        CNN_MODELS, samples_per_model=3, rounds=5
    )
    print(f"  {len(labels)} fingerprints in {time.time() - started:.0f}s")

    print()
    print("per-model C3-value signatures (mean frequency, values 1..35):")
    for label, name in enumerate(names):
        mean = features[labels == label].mean(axis=0)
        top = np.argsort(mean)[::-1][:3]
        peaks = ", ".join(f"C3={bin + 1}: {mean[bin]:.2f}" for bin in top if mean[bin] > 0)
        print(f"  {name:12s} {peaks}")

    print()
    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, test_fraction=0.3, seed=1
    )
    classifier = OneVsRestSvm(epochs=150).fit(train_x, train_y)
    accuracy = classifier.score(test_x, test_y)
    print(f"SVM held-out accuracy: {accuracy:.0%}  (paper: > 95.5% at full scale)")


if __name__ == "__main__":
    main()
