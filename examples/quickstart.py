#!/usr/bin/env python3
"""Quickstart: meet PSFP and SSBP in five minutes.

Walks the paper's core reverse-engineering loop on the simulated Zen 3
machine:

1. run the stld microbenchmark and watch the six timing levels;
2. replay the paper's signature sequences against the TABLE I model;
3. charge an SSBP entry and read its C3 counter back *by timing alone*.

Run:  python examples/quickstart.py
"""

from repro.core.counters import CounterState
from repro.core.state_machine import run_sequence
from repro.revng.probes import PredictorProber
from repro.revng.sequences import format_types, to_bools
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier


def main() -> None:
    print("=== 1. The TABLE I state machine (pure model) ===")
    for sequence in ("7n, a", "n, a, 7n", "a, 4n, a, 4n, a, 16n"):
        types, state = run_sequence(CounterState(), to_bools(sequence))
        print(f"  phi({sequence:24s}) = {format_types(types)}")
        print(f"    final counters: {state}")

    print()
    print("=== 2. Timing the microbenchmark on the simulated CPU ===")
    harness = StldHarness()
    classifier = TimingClassifier(harness)
    calibration = classifier.calibrate()
    print("  calibrated timing classes (cycles):")
    for timing_class, mean in sorted(
        calibration.means.items(), key=lambda kv: kv[1]
    ):
        print(f"    {timing_class.name:18s} ~{mean:6.1f}")
    print(f"  smallest class gap: {classifier.margin():.1f} cycles "
          f"(RDPRU noise < 1% — classes stay separable)")

    print()
    print("=== 3. Reading predictor counters through timing ===")
    prober = PredictorProber(harness, classifier)
    print("  charging C3 with the paper's (7n, a) x 3 training...")
    prober.charge_c3(load_id=1, store_id=1)
    value = prober.read_c3(load_id=1)
    print(f"  C3 read back by counting type-F stalls: {value} (expected 15)")
    print("  draining and re-reading...")
    print(f"  C3 after drain: {prober.read_c3(load_id=1)} (expected 0)")


if __name__ == "__main__":
    main()
