#!/usr/bin/env python3
"""Section VI in action: what stops the attacks, and what does it cost?

1. The SSBD overhead sweep over ten SPEC2017-like workloads (Fig 12).
2. The mitigation matrix: attack viability under SSBD, PSFD,
   flush-SSBP-on-switch, and randomized (re-keyed) selection.

Run:  python examples/evaluate_mitigations.py
"""

from repro.experiments import fig12_ssbd_overhead, sec6_mitigations


def main() -> None:
    print(fig12_ssbd_overhead.run().render())
    print()
    print("running the mitigation matrix (attack campaigns under each")
    print("defense; a couple of minutes)...")
    print()
    print(sec6_mitigations.run().render())


if __name__ == "__main__":
    main()
