# Convenience targets for the repro package.  Everything assumes the
# source layout (PYTHONPATH=src) so no install step is needed.

# Recipes always run under a plain non-login /bin/sh.  Login shells on
# dev images commonly run `conda config` from their profile, which emits
# a condarc WARNING ("Key auto_activate_base is an alias ...") into any
# captured stream; pinning SHELL guarantees no recipe output is ever
# polluted by profile noise, so smoke-gate logs stay grep-clean no
# matter which shell launched make.  (If the warning still appears, it
# is from the *invoking* login shell, before make starts — run make from
# a non-login shell or `conda config --set auto_activate false` once.)
SHELL := /bin/sh

PY      ?= python
JOBS    ?= 4
RESULTS ?= results

export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test experiments-quick experiments-check experiments-all regen-experiments-md fuzz-smoke chaos-smoke trace-smoke attack-smoke interference-smoke scan-smoke bench-smoke bench-baseline perf-gate equivalence-check clean-cache

test:
	$(PY) -m pytest -x -q

## Fast-tier campaign with parallel workers and JSON artifacts.
experiments-quick:
	$(PY) -m repro.experiments.runner --cost fast --jobs $(JOBS) --json $(RESULTS)

## Opt-in determinism check: the fast tier must produce identical rows,
## metrics and seeds under --jobs 1 and --jobs $(JOBS).  Regressions in
## driver determinism (global RNG use, order dependence) surface here.
experiments-check:
	rm -rf $(RESULTS)-serial $(RESULTS)-parallel
	$(PY) -m repro.experiments.runner --cost fast --jobs 1       --no-cache --json $(RESULTS)-serial
	$(PY) -m repro.experiments.runner --cost fast --jobs $(JOBS) --no-cache --json $(RESULTS)-parallel
	$(PY) -m repro.experiments.report --compare $(RESULTS)-serial $(RESULTS)-parallel
	rm -rf $(RESULTS)-serial $(RESULTS)-parallel

## The full campaign (slow leak evaluations included).
experiments-all:
	$(PY) -m repro.experiments.runner --all --jobs $(JOBS) --json $(RESULTS)

## Rewrite EXPERIMENTS.md's generated measured-values table from artifacts.
regen-experiments-md: experiments-all
	$(PY) -m repro.experiments.report --json $(RESULTS) --write EXPERIMENTS.md

## Seeded differential-fuzzing smoke: replay the regression corpus plus a
## small generated budget under "none" and "ssbd".  Must be clean (no
## architectural divergences, no leaks surviving SSBD) and byte-identical
## between --jobs 1 and --jobs $(JOBS).  Separate corpus dirs per run so
## the first run's additions cannot change the second run's replay list.
fuzz-smoke:
	rm -rf $(RESULTS)-fuzz
	$(PY) -m repro.fuzz.cli --budget 25 --seed 1 --jobs 1       --out $(RESULTS)-fuzz/serial.jsonl   --corpus-dir $(RESULTS)-fuzz/corpus-serial
	$(PY) -m repro.fuzz.cli --budget 25 --seed 1 --jobs $(JOBS) --out $(RESULTS)-fuzz/parallel.jsonl --corpus-dir $(RESULTS)-fuzz/corpus-parallel
	cmp $(RESULTS)-fuzz/serial.jsonl $(RESULTS)-fuzz/parallel.jsonl
	rm -rf $(RESULTS)-fuzz
	@echo "fuzz-smoke: clean and deterministic"

## Chaos-tested recovery (docs/resilience.md): the same four-experiment
## campaign runs clean, then under injected worker crash/hang/corruption
## (which retries must absorb — manifests byte-identical to baseline),
## then interrupted mid-campaign (must exit 3 with a checkpoint) and
## resumed (must converge to the baseline manifest, byte for byte).
## Every run uses the same --jobs so the manifests stay comparable;
## --stable-meta zeroes wall times and worker pids for the same reason.
CHAOS_NAMES = fig4 sec3-selection table1 fig2
CHAOS_FLAGS = --jobs $(JOBS) --no-cache --stable-meta --timeout 10
chaos-smoke:
	rm -rf $(RESULTS)-chaos
	$(PY) -m repro.experiments.runner $(CHAOS_NAMES) $(CHAOS_FLAGS) --json $(RESULTS)-chaos/baseline
	$(PY) -m repro.experiments.runner $(CHAOS_NAMES) $(CHAOS_FLAGS) --json $(RESULTS)-chaos/faulted \
		--chaos "crash@fig4,hang@table1,corrupt@fig2"
	cmp $(RESULTS)-chaos/baseline/campaign.json $(RESULTS)-chaos/faulted/campaign.json
	$(PY) -m repro.experiments.runner $(CHAOS_NAMES) $(CHAOS_FLAGS) --json $(RESULTS)-chaos/resumed \
		--chaos "interrupt@fig4"; test $$? -eq 3
	$(PY) -m repro.experiments.runner $(CHAOS_NAMES) $(CHAOS_FLAGS) --json $(RESULTS)-chaos/resumed --resume
	cmp $(RESULTS)-chaos/baseline/campaign.json $(RESULTS)-chaos/resumed/campaign.json
	rm -rf $(RESULTS)-chaos
	@echo "chaos-smoke: crash/hang/corruption absorbed; interrupt+resume converged"

## Telemetry determinism + overhead gate (docs/observability.md): the
## same seeded targets must record byte-identical traces twice serially
## AND across --jobs 1 / --jobs $(JOBS); then the overhead guard proves
## tracing-disabled runs stay in budget while instrumentation stays live.
TRACE_TARGETS = stl case:fuzz-v1:5:12 fig4
trace-smoke:
	rm -rf $(RESULTS)-trace
	$(PY) -m repro.telemetry.cli record $(TRACE_TARGETS) --jobs 1       --out $(RESULTS)-trace/serial
	$(PY) -m repro.telemetry.cli record $(TRACE_TARGETS) --jobs 1       --out $(RESULTS)-trace/again
	$(PY) -m repro.telemetry.cli record $(TRACE_TARGETS) --jobs $(JOBS) --out $(RESULTS)-trace/parallel
	for f in $(RESULTS)-trace/serial/*.trace.jsonl; do \
		cmp "$$f" "$(RESULTS)-trace/again/$$(basename $$f)" || exit 1; \
		cmp "$$f" "$(RESULTS)-trace/parallel/$$(basename $$f)" || exit 1; \
	done
	$(PY) -m repro.telemetry.overhead
	rm -rf $(RESULTS)-trace
	@echo "trace-smoke: traces deterministic across reruns and job counts; overhead in budget"

## End-to-end exploitation gate (docs/attacks.md): the seeded secret
## extraction must fully recover under "none" and measurably degrade
## under ssbd/fence (asserted by `repro-attack verify`), write
## byte-identical reports across reruns, and the three attack
## experiments must produce identical results under --jobs 1 and
## --jobs $(JOBS).
ATTACK_NAMES = channel-capacity stl-extraction aslr-derand
ATTACK_FLAGS = --no-cache --stable-meta
attack-smoke:
	rm -rf $(RESULTS)-attack
	mkdir -p $(RESULTS)-attack
	$(PY) -m repro.attacks.cli leak --mitigation all --out $(RESULTS)-attack/leak-a.json
	$(PY) -m repro.attacks.cli leak --mitigation all --out $(RESULTS)-attack/leak-b.json
	cmp $(RESULTS)-attack/leak-a.json $(RESULTS)-attack/leak-b.json
	$(PY) -m repro.attacks.cli verify $(RESULTS)-attack/leak-a.json
	$(PY) -m repro.experiments.runner $(ATTACK_NAMES) --jobs 1       $(ATTACK_FLAGS) --json $(RESULTS)-attack/serial
	$(PY) -m repro.experiments.runner $(ATTACK_NAMES) --jobs $(JOBS) $(ATTACK_FLAGS) --json $(RESULTS)-attack/parallel
	$(PY) -m repro.experiments.report --compare $(RESULTS)-attack/serial $(RESULTS)-attack/parallel
	rm -rf $(RESULTS)-attack
	@echo "attack-smoke: full recovery unmitigated, degraded under ssbd/fence, deterministic across reruns and job counts"

## Robustness gate (docs/interference.md): the per-preset covert-channel
## curve must be byte-identical across reruns and --jobs 1 / --jobs
## $(JOBS) (the interference schedules are seeded, so noise is
## reproducible), and the adversarial preset must actually cost the
## channel throughput relative to quiet — otherwise the model is wired
## up but not biting.
interference-smoke:
	rm -rf $(RESULTS)-interf
	$(PY) -m repro.experiments.runner robustness-channel --jobs 1       --no-cache --stable-meta --json $(RESULTS)-interf/serial
	$(PY) -m repro.experiments.runner robustness-channel --jobs 1       --no-cache --stable-meta --json $(RESULTS)-interf/again
	$(PY) -m repro.experiments.runner robustness-channel --jobs $(JOBS) --no-cache --stable-meta --json $(RESULTS)-interf/parallel
	cmp $(RESULTS)-interf/serial/robustness-channel.json $(RESULTS)-interf/again/robustness-channel.json
	$(PY) -m repro.experiments.report --compare $(RESULTS)-interf/serial $(RESULTS)-interf/parallel
	$(PY) -c "import json; m = json.load(open('$(RESULTS)-interf/serial/robustness-channel.json'))['metrics']; \
	q, a = m['quiet_goodput_bps'], m['adversarial_goodput_bps']; \
	assert a < q, f'adversarial goodput {a} not below quiet {q}'; \
	assert m['adversarial_byte_errors'] >= m['quiet_byte_errors'], 'adversarial byte errors below quiet'; \
	print(f'interference bites: quiet {q} b/s -> adversarial {a} b/s')"
	rm -rf $(RESULTS)-interf
	@echo "interference-smoke: robustness curve deterministic across reruns and job counts; adversarial preset degrades the channel"

## Static-scanner gate (docs/static-analysis.md): the corpus replay set
## plus a generated budget must scan byte-identically across a rerun and
## --jobs 1 / --jobs $(JOBS) (findings JSONL cmp'd literally), and the
## scanner-vs-oracle cross-validation must report zero soundness
## violations (repro-scan crossval exits 1 on any dynamic leak the
## scanner missed).
scan-smoke:
	rm -rf $(RESULTS)-scan
	mkdir -p $(RESULTS)-scan
	$(PY) -m repro.static.cli scan --no-corpus --budget 10 --seed 1 --jobs 1       --out $(RESULTS)-scan/serial.jsonl
	$(PY) -m repro.static.cli scan --no-corpus --budget 10 --seed 1 --jobs 1       --out $(RESULTS)-scan/again.jsonl
	$(PY) -m repro.static.cli scan --no-corpus --budget 10 --seed 1 --jobs $(JOBS) --out $(RESULTS)-scan/parallel.jsonl
	cmp $(RESULTS)-scan/serial.jsonl $(RESULTS)-scan/again.jsonl
	cmp $(RESULTS)-scan/serial.jsonl $(RESULTS)-scan/parallel.jsonl
	$(PY) -m repro.static.cli crossval --no-corpus --budget 4 --seed 1 --jobs $(JOBS)
	rm -rf $(RESULTS)-scan
	@echo "scan-smoke: findings byte-identical across reruns and job counts; cross-validation sound"

## Performance regression gate (docs/performance.md): a quick benchmark
## pass compared against the committed baseline benchmarks/BENCH_seed.json.
## Fails (exit 1) only on a >25% throughput drop that also exceeds both
## runs' measured spread, so scheduler noise alone cannot fail the gate.
## Re-baseline with `make bench-baseline` after a deliberate perf change
## (policy: docs/performance.md "Updating the baseline").
bench-smoke:
	rm -rf $(RESULTS)-bench
	$(PY) -m repro.bench.cli run --quick --label smoke --out $(RESULTS)-bench/BENCH_smoke.json
	$(PY) -m repro.bench.cli compare benchmarks/BENCH_seed.json $(RESULTS)-bench/BENCH_smoke.json
	rm -rf $(RESULTS)-bench
	@echo "bench-smoke: no benchmark regressed beyond the noise-adjusted 25% gate"

## Rewrite the committed baseline from a quick run on this machine.
bench-baseline:
	$(PY) -m repro.bench.cli run --quick --label seed --out benchmarks/BENCH_seed.json

## Engine/scheduling performance gate (docs/performance.md): a quick
## pass over the benchmarks this family is responsible for — both
## execution engines and batched supervisor dispatch — compared against
## the committed baseline with the same noise-aware rule as bench-smoke,
## plus one absolute invariant: the compiled engine must stay faster
## than the interpreter on identical work.  The 1.1x floor is
## deliberately below the committed full-scale ratio (>=1.4x) because
## quick-scale spreads on a shared box reach ~15%; this gate catches
## "compiled engine quietly stopped helping", not small drift.
perf-gate:
	rm -rf $(RESULTS)-perf
	$(PY) -m repro.bench.cli run pipeline.steps pipeline.steps_compiled supervisor.batch_dispatch \
		--quick --label perf --out $(RESULTS)-perf/BENCH_perf.json
	$(PY) -m repro.bench.cli compare benchmarks/BENCH_seed.json $(RESULTS)-perf/BENCH_perf.json
	$(PY) -c "import json; b = json.load(open('$(RESULTS)-perf/BENCH_perf.json'))['benchmarks']; \
	ratio = b['pipeline.steps_compiled']['ops_per_s'] / b['pipeline.steps']['ops_per_s']; \
	assert ratio >= 1.1, f'compiled engine only {ratio:.2f}x the interpreter (floor 1.1x at quick scale)'; \
	print(f'compiled engine {ratio:.2f}x interpreter on identical stepped work')"
	rm -rf $(RESULTS)-perf
	@echo "perf-gate: no regression vs baseline; engine speedup intact"

## Behaviour-equivalence gate for interpreter optimizations: recompute
## experiment/corpus/trace digests and require byte-identical results
## against benchmarks/GOLDEN.json (full tier, several minutes).  Run this
## before committing any change to cpu/, core/ or mem/ hot paths.
equivalence-check:
	$(PY) -m repro.bench.equivalence --golden benchmarks/GOLDEN.json

clean-cache:
	rm -rf .repro-cache .repro-corpus
