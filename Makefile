# Convenience targets for the repro package.  Everything assumes the
# source layout (PYTHONPATH=src) so no install step is needed.

PY      ?= python
JOBS    ?= 4
RESULTS ?= results

export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test experiments-quick experiments-check experiments-all regen-experiments-md fuzz-smoke clean-cache

test:
	$(PY) -m pytest -x -q

## Fast-tier campaign with parallel workers and JSON artifacts.
experiments-quick:
	$(PY) -m repro.experiments.runner --cost fast --jobs $(JOBS) --json $(RESULTS)

## Opt-in determinism check: the fast tier must produce identical rows,
## metrics and seeds under --jobs 1 and --jobs $(JOBS).  Regressions in
## driver determinism (global RNG use, order dependence) surface here.
experiments-check:
	rm -rf $(RESULTS)-serial $(RESULTS)-parallel
	$(PY) -m repro.experiments.runner --cost fast --jobs 1       --no-cache --json $(RESULTS)-serial
	$(PY) -m repro.experiments.runner --cost fast --jobs $(JOBS) --no-cache --json $(RESULTS)-parallel
	$(PY) -m repro.experiments.report --compare $(RESULTS)-serial $(RESULTS)-parallel
	rm -rf $(RESULTS)-serial $(RESULTS)-parallel

## The full campaign (slow leak evaluations included).
experiments-all:
	$(PY) -m repro.experiments.runner --all --jobs $(JOBS) --json $(RESULTS)

## Rewrite EXPERIMENTS.md's generated measured-values table from artifacts.
regen-experiments-md: experiments-all
	$(PY) -m repro.experiments.report --json $(RESULTS) --write EXPERIMENTS.md

## Seeded differential-fuzzing smoke: replay the regression corpus plus a
## small generated budget under "none" and "ssbd".  Must be clean (no
## architectural divergences, no leaks surviving SSBD) and byte-identical
## between --jobs 1 and --jobs $(JOBS).  Separate corpus dirs per run so
## the first run's additions cannot change the second run's replay list.
fuzz-smoke:
	rm -rf $(RESULTS)-fuzz
	$(PY) -m repro.fuzz.cli --budget 25 --seed 1 --jobs 1       --out $(RESULTS)-fuzz/serial.jsonl   --corpus-dir $(RESULTS)-fuzz/corpus-serial
	$(PY) -m repro.fuzz.cli --budget 25 --seed 1 --jobs $(JOBS) --out $(RESULTS)-fuzz/parallel.jsonl --corpus-dir $(RESULTS)-fuzz/corpus-parallel
	cmp $(RESULTS)-fuzz/serial.jsonl $(RESULTS)-fuzz/parallel.jsonl
	rm -rf $(RESULTS)-fuzz
	@echo "fuzz-smoke: clean and deterministic"

clean-cache:
	rm -rf .repro-cache .repro-corpus
