"""Bench E11 — Section V-B: the out-of-place Spectre-STL campaign."""

from repro.experiments import attack_evals


def test_bench_spectre_stl(once):
    result = once(attack_evals.run_stl, secret_bytes=24)
    assert result.metrics["accuracy"] >= 0.95        # paper: 99.95%
    assert result.metrics["bytes_per_second"] > 0
