"""Bench E9/E10 — Figs 8-9: transient windows and surviving updates."""

from repro.experiments import sec4_transient


def test_bench_transient(once):
    result = once(sec4_transient.run)
    assert result.metrics["vulnerability_3_confirmed"] == "True"
    assert result.metrics["vulnerability_4_confirmed"] == "True"
