"""Bench E1 — Fig 2: execution-type timing levels."""

from repro.experiments import fig2_exec_types


def test_bench_fig2(once):
    result = once(fig2_exec_types.run)
    assert result.metrics["rollback_slower_than_everything"] == "True"
    assert result.metrics["type_agreement_with_model"] >= 0.99
