"""Bench E6 — Fig 5: eviction curves (PSFP abrupt at 12; SSBP gradual)."""

from repro.experiments import fig5_eviction


def test_bench_fig5(once):
    result = once(fig5_eviction.run, psfp_trials=5, ssbp_trials=30)
    assert result.metrics["psfp_threshold"] == 12
    assert result.metrics["ssbp_rate_at_16"] > 0.45
    assert result.metrics["ssbp_rate_at_32"] > 0.78
