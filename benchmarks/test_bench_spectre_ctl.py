"""Bench E12 — Section V-C.1: the cross-process Spectre-CTL campaign."""

from repro.experiments import attack_evals


def test_bench_spectre_ctl(once):
    result = once(attack_evals.run_ctl, secret_bytes=6)
    assert result.metrics["accuracy"] >= 0.83        # paper: 99.97%
    assert result.metrics["bytes_per_second"] > 0
