"""Bench E5 — TABLE II: counter organization probes."""

from repro.experiments import table2_counters


def test_bench_table2(once):
    result = once(table2_counters.run)
    assert all(row[-1] for row in result.rows)
