"""Bench E14 — Fig 11: CNN fingerprinting via SSBP (SVM accuracy)."""

from repro.experiments import fig11_fingerprint


def test_bench_fig11(once):
    result = once(fig11_fingerprint.run, samples_per_model=3, rounds=5)
    # Paper: > 95.5% over 6 models; the reduced dataset still separates.
    assert result.metrics["svm_accuracy"] >= 0.75
    assert result.metrics["models"] == 6
