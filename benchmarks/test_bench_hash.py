"""Bench E4 — Fig 4: hash-function recovery from colliding pairs."""

from repro.experiments import fig4_hash


def test_bench_fig4(once):
    result = once(fig4_hash.run, count=128)
    assert result.metrics["stride"] == 12
    assert result.metrics["profile_consistency"] == 1.0
