"""Bench E3 — Section III-C.1: IPA-keyed selection."""

from repro.experiments import sec3_selection


def test_bench_selection(once):
    result = once(sec3_selection.run)
    assert result.metrics["conclusion_ipa_selected"] == "True"
