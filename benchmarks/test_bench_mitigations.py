"""Bench E17 — Section VI: mitigation spot-checks.

The full matrix (five mitigations x two attacks) is the
``sec6-mitigations`` experiment; the bench spot-checks the two findings
the paper emphasizes — SSBD stops the attacks, PSFD does not.
"""

from repro.cpu.machine import Machine
from repro.experiments.sec6_mitigations import ctl_leak_works, stl_leak_works


def test_bench_ssbd_stops_spectre_stl(once):
    machine = Machine(seed=616)
    machine.core.set_ssbd(True)
    assert once(stl_leak_works, machine, slide_pages=4) is False


def test_bench_psfd_does_not_stop_spectre_ctl(once):
    machine = Machine(seed=617)
    machine.core.set_psfd(True)
    assert once(ctl_leak_works, machine) is True
