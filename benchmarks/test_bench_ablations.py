"""Ablation benches for the design choices DESIGN.md calls out.

* SSBP backing-store geometry vs the Fig 5 curve (8x2 reproduces the
  paper's 50%/90% crossings; other geometries visibly do not);
* timer noise vs timing-class margin (classification survives the
  paper's <1% RDPRU noise with margin to spare);
* transient-window length (store AGEN depth) vs whether the Spectre-CTL
  covert update lands.
"""

import random

from repro.core.exec_types import ExecType
from repro.core.ssbp import Ssbp
from repro.cpu.isa import Halt, ImulImm, Load, Mov, MovImm, Program, Store
from repro.cpu.machine import Machine
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier


def _ssbp_eviction_rate(sets: int, ways: int, prime: int, trials: int = 300) -> float:
    rng = random.Random(99)
    evicted = 0
    for _ in range(trials):
        ssbp = Ssbp(sets=sets, ways=ways)
        base = rng.randrange(4096)
        ssbp.update(base, 15, 3)
        for tag in rng.sample([h for h in range(4096) if h != base], prime):
            ssbp.update(tag, 0, 1)
        evicted += not ssbp.contains(base)
    return evicted / trials


def test_bench_ablation_ssbp_geometry(once):
    def sweep():
        return {
            (sets, ways): (
                _ssbp_eviction_rate(sets, ways, 16),
                _ssbp_eviction_rate(sets, ways, 32),
            )
            for sets, ways in ((8, 2), (4, 4), (16, 1), (1, 16))
        }

    rates = once(sweep)
    at16, at32 = rates[(8, 2)]
    # The paper's curve: >50% at 16, ~90% at 32 — the shipped geometry.
    assert at16 > 0.5 and at32 > 0.85
    # A fully associative LRU equivalent (1 set x 16 ways) evicts
    # deterministically at 16 — the abrupt shape Fig 5 rules out.
    fa16, _ = rates[(1, 16)]
    assert fa16 == 1.0


def test_bench_ablation_timer_noise(once):
    def margin_at(noise: float) -> float:
        harness = StldHarness()
        model = harness.machine.core.model.with_overrides(timer_noise=noise)
        # Rebuild a machine at this noise level.
        from repro.cpu.machine import Machine as M

        machine = M(model=model, seed=77)
        harness = StldHarness(machine=machine)
        classifier = TimingClassifier(harness)
        classifier.calibrate()
        return classifier.margin()

    margins = once(lambda: [margin_at(0.0), margin_at(0.005)])
    # The paper's RDPRU noise (<1%) leaves the levels separable.
    assert margins[0] >= 2.0
    assert margins[1] >= 2.0


def _ctl_window_gadget(buf, agen):
    instructions = [MovImm("sbase", buf), Mov("t", "sbase")]
    instructions += [ImulImm("t", "t", 1)] * agen
    instructions += [
        MovImm("data", 1),
        Store(base="t", src="data", width=8),
        Load("first", base="sbase", width=8),
        Load("second", base="sbase", width=8),
        Halt(),
    ]
    return Program(instructions, name=f"window-{agen}")


def test_bench_ablation_zen2_no_psf(once):
    """Generational ablation: a Zen 2 style core (SSB, no PSF) never
    exhibits the C/D execution types, and the black-box campaign's
    detector notices (PSF shipped with Zen 3)."""
    from repro.core.config import zen2_model
    from repro.revng.report import ReverseEngineeringCampaign

    def probe():
        zen2 = ReverseEngineeringCampaign(Machine(model=zen2_model(), seed=9))
        zen3 = ReverseEngineeringCampaign(Machine(seed=9))
        return zen2.detect_psf(), zen3.detect_psf()

    zen2_psf, zen3_psf = once(probe)
    assert zen2_psf is False
    assert zen3_psf is True


def test_bench_ablation_window_length(once):
    """The nested covert update needs the store's AGEN delay to outlast
    the dependent loads: a 1-multiply chain yields no nested event, the
    microbenchmark's 20-multiply chain does."""

    def nested_events(agen: int) -> int:
        machine = Machine(seed=31)
        process = machine.kernel.create_process("w")
        buf = machine.kernel.map_anonymous(process, pages=1)
        program = machine.load_program(process, _ctl_window_gadget(buf, agen))
        result = machine.run(process, program)
        return sum(1 for e in result.events if e.exec_type is ExecType.G) + len(
            result.events
        )

    counts = once(lambda: {agen: nested_events(agen) for agen in (1, 20)})
    assert counts[20] > counts[1]
