"""Bench E21 — TABLE III: attack validation on all four platforms."""

from repro.experiments import table3_platforms


def test_bench_table3(once):
    result = once(table3_platforms.run)
    assert result.metrics["platforms"] == 4
    assert all(row[-1] == "ok" for row in result.rows)
