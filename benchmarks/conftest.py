"""Benchmark configuration.

Every benchmark regenerates one paper artifact (table or figure) through
its experiment driver, so runs are heavyweight: one round, one iteration.
Shape assertions live next to the timing so a regression in *behaviour*
fails the bench even when the timing is fine.
"""

import pytest


@pytest.fixture()
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
