"""Bench E15 — Fig 12: SSBD overhead sweep."""

from repro.experiments import fig12_ssbd_overhead


def test_bench_fig12(once):
    result = once(fig12_ssbd_overhead.run, operations=300, repetitions=2)
    over_20 = result.metrics["benchmarks_over_20pct"]
    assert "perlbench" in over_20 and "exchange2" in over_20
