"""Bench E7 — Section IV-A: the isolation matrix."""

from repro.experiments import sec4_isolation


def test_bench_isolation(once):
    result = once(sec4_isolation.run)
    assert all(row[-1] for row in result.rows)
