"""Bench E2 — TABLE I: state-machine validation (> 99.8% agreement)."""

from repro.experiments import table1_state_machine


def test_bench_table1(once):
    result = once(table1_state_machine.run, sequences=25, length=40)
    assert result.metrics["agreement"] > 0.998
