"""Bench E8 — Fig 7: collision-search statistics."""

from repro.experiments import fig7_collisions


def test_bench_fig7(once):
    result = once(fig7_collisions.run, trials=8)
    assert 500 < result.metrics["ssbp_mean_attempts"] <= 4096
    assert result.metrics["psfp_equal_distance_rate"] > 0.9
    assert (
        result.metrics["psfp_unequal_distance_rate"]
        < result.metrics["psfp_equal_distance_rate"]
    )
