"""Benches E18-E20: covert channel, in-place baseline, VA->PA leak."""

from repro.experiments.sec5_extensions import (
    run_address_leak,
    run_covert_channel,
    run_stl_inplace,
)


def test_bench_covert_channel(once):
    result = once(run_covert_channel, bits=48)
    assert result.metrics["error_rate"] == 0.0
    assert result.metrics["bits_per_second"] > 0


def test_bench_stl_inplace_vs_outofplace(once):
    result = once(run_stl_inplace, secret_bytes=4)
    assert result.metrics["inplace_invocations_per_byte"] > 1.5
    assert result.metrics["outofplace_accuracy"] >= 0.75


def test_bench_address_leak(once):
    result = once(run_address_leak, pages=4)
    assert result.metrics["pairs_recovered"] == result.metrics["pairs_total"]
