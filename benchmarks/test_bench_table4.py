"""Bench E16 — TABLE IV: vendor comparison (collision-cost contrast)."""

from repro.experiments import table4_comparison


def test_bench_table4(once):
    result = once(table4_comparison.run, collision_trials=3)
    assert result.metrics["amd_mean_collision_attempts"] > 100
