"""Bench E13 — Section V-C.2: the browser-model Spectre-CTL campaign."""

from repro.experiments import attack_evals


def test_bench_spectre_ctl_web(once):
    result = once(attack_evals.run_web, secret_bytes=6)
    # Paper: 81.1% — degraded but substantial.
    assert 0.3 <= result.metrics["accuracy"] <= 1.0
    assert result.metrics["bytes_per_second"] > 0
