"""A simulated Zen 3 physical core.

The core owns what is shared between its SMT threads — the data-cache
hierarchy, the SPEC_CTRL register, physical memory — and instantiates one
:class:`HardwareThread` (predictors, store queue, TLB, PMCs) per SMT
thread.  A deterministic RNG drives timer noise and any randomized
replacement so experiments are reproducible run to run.
"""

from __future__ import annotations

import random

from repro.core.config import CpuModel, default_model
from repro.core.spec_ctrl import SpecCtrl
from repro.cpu.thread import HardwareThread
from repro.errors import ConfigError
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.physical import PhysicalMemory

__all__ = ["Core"]


class Core:
    """One physical core plus the memory system behind it."""

    def __init__(
        self,
        model: CpuModel | None = None,
        memory: PhysicalMemory | None = None,
        seed: int = 0,
        hash_salt: int = 0,
    ) -> None:
        self.model = model or default_model()
        self.memory = memory or PhysicalMemory()
        self.rng = random.Random(seed)
        self.spec_ctrl = SpecCtrl()
        self.hierarchy = MemoryHierarchy(self.model.latency)
        self.hash_salt = hash_salt
        self.threads = [
            HardwareThread(i, self.model, self.spec_ctrl, hash_salt=hash_salt)
            for i in range(self.model.smt_threads)
        ]

    def thread(self, thread_id: int = 0) -> HardwareThread:
        try:
            return self.threads[thread_id]
        except IndexError:
            raise ConfigError(
                f"core has {len(self.threads)} SMT threads, no thread {thread_id}"
            ) from None

    def rdpru(self, thread_id: int = 0) -> int:
        """Read the per-thread cycle counter with the model's timer noise."""
        cycles = self.thread(thread_id).cycles
        noise = self.model.timer_noise
        if noise:
            jitter = self.rng.uniform(-noise, noise)
            return max(0, round(cycles * (1.0 + jitter)))
        return cycles

    def set_ssbd(self, enabled: bool) -> None:
        """Write the SSBD bit of SPEC_CTRL (Section VI-A)."""
        self.spec_ctrl.ssbd = enabled

    def set_psfd(self, enabled: bool) -> None:
        """Write the PSFD bit (observable but ineffective, Section VI-A)."""
        self.spec_ctrl.psfd = enabled

    def __repr__(self) -> str:
        return (
            f"Core(model={self.model.name!r}, threads={len(self.threads)}, "
            f"ssbd={self.spec_ctrl.ssbd})"
        )
