"""The micro-ISA interpreted by the simulated pipeline.

A :class:`Program` is a list of instruction objects assembled at a base
instruction *virtual* address; each instruction occupies a fixed number of
bytes, so code sliding (placing the same code at byte-granular offsets,
Section III-C.2) is just a prefix of 1-byte ``Pad`` instructions.

The ISA is deliberately tiny — the paper's microbenchmarks and gadgets
need loads, stores, multiply/ALU chains (for address-generation delay),
``clflush``/``mfence``, ``rdpru`` and a conditional branch.  Registers
are named strings holding unsigned integers.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigError, InvalidInstruction

__all__ = [
    "Instruction",
    "MovImm",
    "Mov",
    "Alu",
    "AluImm",
    "Imul",
    "ImulImm",
    "Load",
    "Store",
    "Clflush",
    "Mfence",
    "Rdpru",
    "Jz",
    "Label",
    "Pad",
    "Halt",
    "Program",
    "DecodedProgram",
    "OP_LABEL",
    "OP_PAD",
    "OP_MOVIMM",
    "OP_MOV",
    "OP_ALU",
    "OP_ALUIMM",
    "OP_IMUL",
    "OP_IMULIMM",
    "OP_LOAD",
    "OP_STORE",
    "OP_CLFLUSH",
    "OP_MFENCE",
    "OP_RDPRU",
    "OP_JZ",
    "OP_HALT",
    "OP_UNKNOWN",
    "ALU_ADD",
    "ALU_SUB",
    "ALU_XOR",
    "ALU_AND",
    "ALU_OR",
    "ALU_BAD",
    "instruction_from_repr",
    "instructions_from_reprs",
    "DECODE_CACHE_SIZE",
    "decode_cache_info",
    "clear_decode_cache",
    "set_decode_cache_size",
]


@dataclass(frozen=True)
class Instruction:
    """Base class: every instruction has an encoded size in bytes."""

    @property
    def size(self) -> int:
        return 4


@dataclass(frozen=True)
class Pad(Instruction):
    """A 1-byte filler (nop) used for byte-granular code sliding."""

    @property
    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class MovImm(Instruction):
    dst: str
    value: int


@dataclass(frozen=True)
class Mov(Instruction):
    dst: str
    src: str


@dataclass(frozen=True)
class Alu(Instruction):
    """1-cycle ALU op on two registers."""

    dst: str
    a: str
    b: str
    op: str = "add"  # add | sub | xor | and | or


@dataclass(frozen=True)
class AluImm(Instruction):
    dst: str
    src: str
    imm: int
    op: str = "add"


@dataclass(frozen=True)
class Imul(Instruction):
    """3-cycle multiply; chains of these delay address generation."""

    dst: str
    a: str
    b: str


@dataclass(frozen=True)
class ImulImm(Instruction):
    dst: str
    src: str
    imm: int


@dataclass(frozen=True)
class Load(Instruction):
    """``dst = mem[reg[base] + offset]`` (little-endian, ``size`` bytes)."""

    dst: str
    base: str
    offset: int = 0
    width: int = 8


@dataclass(frozen=True)
class Store(Instruction):
    """``mem[reg[base] + offset] = reg[src]`` (``width`` bytes)."""

    base: str
    src: str
    offset: int = 0
    width: int = 8


@dataclass(frozen=True)
class Clflush(Instruction):
    base: str
    offset: int = 0


@dataclass(frozen=True)
class Mfence(Instruction):
    """Serialize: resolve and commit every pending store."""


@dataclass(frozen=True)
class Rdpru(Instruction):
    """Read the cycle counter into ``dst`` (the paper's timing primitive)."""

    dst: str


@dataclass(frozen=True)
class Jz(Instruction):
    """Branch to ``label`` when ``reg[cond] == 0`` (predicted, trainable)."""

    cond: str
    label: str


@dataclass(frozen=True)
class Label(Instruction):
    """A named position; occupies no bytes."""

    name: str

    @property
    def size(self) -> int:
        return 0


@dataclass(frozen=True)
class Halt(Instruction):
    """Stop execution (end of the measured routine)."""


def _instruction_namespace() -> dict[str, type]:
    return {
        cls.__name__: cls
        for cls in (
            Instruction, Pad, MovImm, Mov, Alu, AluImm, Imul, ImulImm,
            Load, Store, Clflush, Mfence, Rdpru, Jz, Label, Halt,
        )
    }


def instruction_from_repr(text: str) -> Instruction:
    """Rebuild one instruction from its dataclass ``repr``.

    Findings artifacts store minimized reproducers as instruction reprs
    (:func:`repro.fuzz.shrink.shrink_report`); this is the inverse, used
    to replay a shrunk program — e.g. ``repro-fuzz --trace-findings``.
    Evaluation is restricted to the instruction classes themselves (no
    builtins), so only literal dataclass constructions parse.  Raises
    :class:`repro.errors.InvalidInstruction` on anything else.
    """
    try:
        value = eval(text, {"__builtins__": {}}, _instruction_namespace())
    except Exception as exc:
        raise InvalidInstruction(f"unparseable instruction repr {text!r}: {exc}") from exc
    if not isinstance(value, Instruction):
        raise InvalidInstruction(
            f"repr {text!r} is not an instruction (got {type(value).__name__})"
        )
    return value


def instructions_from_reprs(reprs: list[str]) -> list[Instruction]:
    """Rebuild a whole program from a list of instruction reprs."""
    return [instruction_from_repr(text) for text in reprs]


# ----------------------------------------------------------------------
# Dense decoded form
# ----------------------------------------------------------------------
# Integer opcodes for the interpreter's dispatch (one per instruction
# class).  The pipeline compares these instead of running an isinstance
# chain — the single hottest comparison in the simulator.
(
    OP_LABEL,
    OP_PAD,
    OP_MOVIMM,
    OP_MOV,
    OP_ALU,
    OP_ALUIMM,
    OP_IMUL,
    OP_IMULIMM,
    OP_LOAD,
    OP_STORE,
    OP_CLFLUSH,
    OP_MFENCE,
    OP_RDPRU,
    OP_JZ,
    OP_HALT,
    OP_UNKNOWN,
) = range(16)

#: ALU sub-opcodes; ``ALU_BAD`` marks an op string the decoder does not
#: know.  The error is deliberately deferred to *execution* of that
#: instruction (matching the un-decoded interpreter), so decoding never
#: rejects a program whose bad instruction is unreachable.
ALU_ADD, ALU_SUB, ALU_XOR, ALU_AND, ALU_OR, ALU_BAD = range(6)

_ALU_CODES = {
    "add": ALU_ADD,
    "sub": ALU_SUB,
    "xor": ALU_XOR,
    "and": ALU_AND,
    "or": ALU_OR,
}

_OPCODES: dict[type, int] = {
    Label: OP_LABEL,
    Pad: OP_PAD,
    MovImm: OP_MOVIMM,
    Mov: OP_MOV,
    Alu: OP_ALU,
    AluImm: OP_ALUIMM,
    Imul: OP_IMUL,
    ImulImm: OP_IMULIMM,
    Load: OP_LOAD,
    Store: OP_STORE,
    Clflush: OP_CLFLUSH,
    Mfence: OP_MFENCE,
    Rdpru: OP_RDPRU,
    Jz: OP_JZ,
    Halt: OP_HALT,
}


@dataclass(slots=True)
class DecodedProgram:
    """A :class:`Program` pre-decoded into parallel dense arrays.

    Built once per program (see :meth:`Program.decoded`) and then reused
    across the thousands of repeated runs an experiment performs.  Layout
    (all lists are indexed by instruction position):

    * ``ops[i]`` — the ``OP_*`` integer opcode;
    * ``args[i]`` — a per-opcode operand tuple (see :func:`_decode_args`);
    * ``names[i]`` — the instruction class name (trace events);
    * ``insts[i]`` — the original instruction object (error messages);
    * ``ivas[i]`` — the instruction virtual address.

    The decoded form carries no execution state; it is immutable in
    practice and safely shared by concurrent interpreter states (SMT).
    """

    ops: list[int]
    args: list[tuple]
    names: list[str]
    insts: list[Instruction]
    ivas: list[int]
    n: int


# ----------------------------------------------------------------------
# Global content-keyed decode cache
# ----------------------------------------------------------------------
# Campaign workloads rebuild Program *objects* constantly — every fuzz
# task, every corpus replay, every oracle fill constructs a fresh
# Program around content the process has decoded before.  The instance
# cache on Program (see :meth:`Program.decoded`) cannot help there, so
# this bounded LRU shares decoded forms across instances by content
# (instruction tuple + base IVA; frozen instruction dataclasses hash by
# value).  The bound matters: a long campaign cycles thousands of
# distinct generated programs through one warm worker, and an unbounded
# map would pin every one of them forever.

#: Default bound on the shared decode LRU (distinct program contents).
DECODE_CACHE_SIZE = 512

_decode_cache: "OrderedDict[tuple, DecodedProgram]" = OrderedDict()
_decode_cache_size = DECODE_CACHE_SIZE
_decode_stats = {"hits": 0, "misses": 0, "evictions": 0}


def decode_cache_info() -> dict[str, int]:
    """Current decode-cache occupancy and hit/miss/eviction counters."""
    return {
        "size": len(_decode_cache),
        "max_size": _decode_cache_size,
        **_decode_stats,
    }


def clear_decode_cache() -> None:
    """Drop every shared decoded form and reset the counters.

    Program instances keep their own references, so anything a live
    Program already decoded stays valid — only cross-instance sharing
    restarts cold.
    """
    _decode_cache.clear()
    for name in _decode_stats:
        _decode_stats[name] = 0


def set_decode_cache_size(size: int) -> int:
    """Rebound the LRU (evicting down if needed); returns the old size."""
    global _decode_cache_size
    previous = _decode_cache_size
    _decode_cache_size = max(1, int(size))
    while len(_decode_cache) > _decode_cache_size:
        _decode_cache.popitem(last=False)
        _decode_stats["evictions"] += 1
    return previous


def _decode_args(instruction: Instruction, labels: dict[str, int]) -> tuple:
    """Operand tuple for one instruction (layouts per opcode).

    ``Jz`` targets resolve to an instruction index here; an unknown label
    decodes to ``None`` and raises only if the branch actually executes —
    identical to the lazy lookup the un-decoded interpreter performed.
    Unknown ALU op strings decode to ``ALU_BAD`` the same way.
    """
    cls = type(instruction)
    if cls is MovImm:
        return (instruction.dst, instruction.value)
    if cls is Mov:
        return (instruction.dst, instruction.src)
    if cls is Alu:
        return (
            instruction.dst,
            instruction.a,
            instruction.b,
            _ALU_CODES.get(instruction.op, ALU_BAD),
            instruction.op,
        )
    if cls is AluImm:
        return (
            instruction.dst,
            instruction.src,
            instruction.imm,
            _ALU_CODES.get(instruction.op, ALU_BAD),
            instruction.op,
        )
    if cls is Imul:
        return (instruction.dst, instruction.a, instruction.b)
    if cls is ImulImm:
        return (instruction.dst, instruction.src, instruction.imm)
    if cls is Load:
        return (instruction.dst, instruction.base, instruction.offset, instruction.width)
    if cls is Store:
        return (instruction.base, instruction.src, instruction.offset, instruction.width)
    if cls is Clflush:
        return (instruction.base, instruction.offset)
    if cls is Rdpru:
        return (instruction.dst,)
    if cls is Jz:
        return (instruction.cond, labels.get(instruction.label), instruction.label)
    return ()


@dataclass
class Program:
    """An assembled instruction sequence with label resolution.

    ``base_iva`` is where the first instruction lives in the owning
    process's address space; each instruction's IVA follows from the
    encoded sizes.  The pipeline translates IVAs to IPAs through the page
    tables, so physical placement — what the predictors actually hash —
    is controlled by the kernel's frame allocator.
    """

    instructions: list[Instruction]
    base_iva: int = 0
    name: str = "program"
    _ivas: list[int] = field(default_factory=list, repr=False)
    _labels: dict[str, int] = field(default_factory=dict, repr=False)
    _decoded: "DecodedProgram | None" = field(
        default=None, repr=False, compare=False
    )
    _decoded_src: "tuple | None" = field(default=None, repr=False, compare=False)
    _decoded_base: "int | None" = field(default=None, repr=False, compare=False)
    #: Instance cache for the closure-compiled form (owned by
    #: :mod:`repro.cpu.compiler`): the compiled table plus the
    #: ``(decoded identity, latency constants)`` key it was built for.
    _compiled: "list | None" = field(default=None, repr=False, compare=False)
    _compiled_key: "tuple | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._layout()

    def _layout(self) -> None:
        self._ivas = []
        self._labels = {}
        cursor = self.base_iva
        for index, instruction in enumerate(self.instructions):
            self._ivas.append(cursor)
            if isinstance(instruction, Label):
                if instruction.name in self._labels:
                    raise ConfigError(f"duplicate label {instruction.name!r}")
                self._labels[instruction.name] = index
            cursor += instruction.size

    def relocate(self, base_iva: int) -> "Program":
        """A copy of this program laid out at a different base address."""
        return Program(list(self.instructions), base_iva, self.name)

    def decoded(self) -> DecodedProgram:
        """The dense decoded form, cached on the instance.

        The cache key is the program *content* — the instruction sequence
        and base address (the same inputs :func:`repro.experiments.cache.
        content_key` would hash) — so mutating ``instructions`` in place
        or rebinding ``base_iva`` invalidates the cache and triggers a
        re-layout + re-decode; returning the same objects hits.  The
        content check is an element-wise tuple comparison, which
        short-circuits on object identity, so a cache hit costs one
        O(n) pointer sweep rather than a full re-decode.

        On an instance miss, the process-wide content-keyed LRU is
        consulted before re-decoding, so a *fresh* Program around
        already-seen content (the campaign pattern: every fuzz task
        rebuilds its program) shares the existing decoded form instead
        of paying decode again.  The LRU is bounded
        (:data:`DECODE_CACHE_SIZE`); see :func:`decode_cache_info`.
        """
        src = tuple(self.instructions)
        if (
            self._decoded is not None
            and self._decoded_base == self.base_iva
            and self._decoded_src == src
        ):
            return self._decoded
        self._layout()  # re-derive IVAs/labels in case of in-place mutation
        try:
            shared = _decode_cache.get((src, self.base_iva))
        except TypeError:
            shared = None  # unhashable instruction subclass: skip sharing
        else:
            if shared is not None:
                _decode_cache.move_to_end((src, self.base_iva))
                _decode_stats["hits"] += 1
                self._decoded = shared
                self._decoded_src = src
                self._decoded_base = self.base_iva
                return shared
            _decode_stats["misses"] += 1
        labels = self._labels
        ops = []
        args = []
        names = []
        for instruction in src:
            ops.append(_OPCODES.get(type(instruction), OP_UNKNOWN))
            args.append(_decode_args(instruction, labels))
            names.append(type(instruction).__name__)
        self._decoded = DecodedProgram(
            ops=ops,
            args=args,
            names=names,
            insts=list(src),
            ivas=list(self._ivas),
            n=len(src),
        )
        self._decoded_src = src
        self._decoded_base = self.base_iva
        try:
            _decode_cache[(src, self.base_iva)] = self._decoded
        except TypeError:
            pass  # unhashable content stays instance-cached only
        else:
            while len(_decode_cache) > _decode_cache_size:
                _decode_cache.popitem(last=False)
                _decode_stats["evictions"] += 1
        return self._decoded

    def iva(self, index: int) -> int:
        """Instruction virtual address of the instruction at ``index``."""
        return self._ivas[index]

    def label_index(self, name: str) -> int:
        try:
            return self._labels[name]
        except KeyError:
            raise InvalidInstruction(f"unknown label {name!r}") from None

    @property
    def byte_size(self) -> int:
        return sum(instruction.size for instruction in self.instructions)

    def encode(self) -> bytes:
        """Synthetic machine code: a stable byte pattern per instruction.

        The bytes have no semantics (the pipeline interprets the objects),
        but they make code pages real: fork/COW copies them, and the code
        sliding experiments can fill pages with them the way the paper
        fills pages with stld machine code.
        """
        blob = bytearray()
        for instruction in self.instructions:
            digest = zlib.crc32(type(instruction).__name__.encode())
            blob += bytes([(digest & 0xFF) or 0x90] * instruction.size)
        return bytes(blob)

    def __len__(self) -> int:
        return len(self.instructions)
