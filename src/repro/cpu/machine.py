"""The top-level simulated machine: core + kernel + per-thread pipelines.

This is the facade most experiments use::

    machine = Machine(seed=1)
    victim = machine.kernel.create_process("victim")
    program = machine.load_program(victim, my_program)
    result = machine.run(victim, program, regs={"rdi": buf, "rsi": buf})

``load_program`` maps executable pages for the program, writes its
synthetic machine code into them (so fork/COW and code sliding behave like
they do for real text pages) and returns the program relocated to its
load address.  ``run`` schedules the process on a hardware thread (with
the kernel's context-switch flush semantics) and interprets the program.
"""

from __future__ import annotations

import math

from repro.core.config import CpuModel
from repro.cpu.core import Core
from repro.cpu.engine import resolve_engine
from repro.cpu.isa import Program
from repro.cpu.pipeline import Pipeline, RunResult
from repro.mem.physical import PAGE_SIZE
from repro.osm.address_space import Perm
from repro.osm.kernel import Kernel
from repro.osm.process import Process

__all__ = ["Machine"]


class Machine:
    """One simulated host: a core, a kernel, and per-thread pipelines."""

    def __init__(
        self,
        model: CpuModel | None = None,
        seed: int = 0,
        flush_ssbp_on_switch: bool = False,
        resalt_on_switch: bool = False,
        hash_salt: int = 0,
        engine: str | None = None,
    ) -> None:
        self.core = Core(model=model, seed=seed, hash_salt=hash_salt)
        self.kernel = Kernel(
            self.core,
            flush_ssbp_on_switch=flush_ssbp_on_switch,
            resalt_on_switch=resalt_on_switch,
        )
        #: Execution engine every pipeline dispatches with ("interpreter"
        #: or "compiled"); ``engine=None`` resolves the process default
        #: (:mod:`repro.cpu.engine`), frozen here for the machine's life.
        self.engine = resolve_engine(engine)
        self._pipelines = [
            Pipeline(self.core, thread, self.kernel, engine=self.engine)
            for thread in self.core.threads
        ]
        #: Optional :class:`repro.interference.model.InterferenceModel`;
        #: installed via ``InterferenceModel.attach(machine)``, consulted
        #: around every :meth:`run`.
        self.interference = None

    def attach_tracer(self, tracer) -> None:
        """Route every pipeline's trace events to ``tracer``.

        Pipelines created while a tracer is active pick it up on their
        own; this hook covers the opposite order (machine built first,
        recording started later).  Pass ``None`` to detach.
        """
        for pipeline in self._pipelines:
            pipeline.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # Program management
    # ------------------------------------------------------------------
    def load_program(
        self,
        process: Process,
        program: Program,
        perms: Perm = Perm.RX,
        extra_pages: int = 0,
    ) -> Program:
        """Map code pages for ``program`` and return it relocated there."""
        pages = max(1, math.ceil(program.byte_size / PAGE_SIZE)) + 1 + extra_pages
        base = self.kernel.map_anonymous(process, pages, perms=perms, kind="code")
        relocated = program.relocate(base)
        self.kernel.write(process, base, relocated.encode(), force=True)
        return relocated

    def place_program(self, process: Process, program: Program, iva: int) -> Program:
        """Relocate ``program`` to an exact IVA inside already-mapped pages
        (the code-sliding primitive) and write its bytes there."""
        relocated = program.relocate(iva)
        self.kernel.write(process, iva, relocated.encode(), force=True)
        return relocated

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def pipeline(self, thread_id: int = 0) -> Pipeline:
        return self._pipelines[thread_id]

    def run(
        self,
        process: Process,
        program: Program,
        regs: dict[str, int] | None = None,
        thread_id: int = 0,
        max_steps: int = 200_000,
    ) -> RunResult:
        """Schedule ``process`` on a hardware thread and run ``program``.

        When an interference model is attached it may inject co-runner
        bursts or a preemption before the run and perturb PMC counts
        after it (its own injected runs are reentrancy-guarded).
        """
        interference = self.interference
        if interference is not None:
            interference.before_run(process, thread_id)
        self.kernel.schedule(process, thread_id)
        result = self._pipelines[thread_id].run(process, program, regs, max_steps)
        if interference is not None:
            interference.after_run(thread_id)
        return result

    def run_smt(
        self,
        jobs: list[tuple[Process, Program, dict[str, int] | None]],
        max_steps: int = 400_000,
    ) -> list[RunResult]:
        """Run one program per SMT thread, interleaved step by step.

        Each job runs on its own hardware thread (job index = thread id):
        private predictors, store queue and TLB, but a *shared* cache
        hierarchy and physical memory — the Zen 3 sharing the paper's
        Section IV-A SMT experiment probes.  Round-robin stepping models
        the threads executing concurrently.
        """
        if len(jobs) > len(self.core.threads):
            raise ValueError(
                f"{len(jobs)} jobs but only {len(self.core.threads)} SMT threads"
            )
        states = []
        for thread_id, (process, program, regs) in enumerate(jobs):
            self.kernel.schedule(process, thread_id)
            states.append(self._pipelines[thread_id].begin(process, program, regs))
        live = list(range(len(states)))
        steps = 0
        while live:
            steps += 1
            if steps > max_steps:
                from repro.errors import SimulationLimitExceeded

                raise SimulationLimitExceeded(
                    f"SMT run exceeded {max_steps} interleaved steps"
                )
            for index in list(live):
                if not states[index].step():
                    live.remove(index)
        results = []
        for thread_id, state in enumerate(states):
            result = state.finalize()
            self.core.thread(thread_id).advance(result.cycles)
            results.append(result)
        return results

    def __repr__(self) -> str:
        return f"Machine(core={self.core!r})"
