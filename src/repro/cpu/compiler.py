"""The closure-compilation execution engine (``Machine(engine="compiled")``).

The reference interpreter (:meth:`repro.cpu.pipeline._ExecState.
_dispatch_one`) re-pays per step what is constant for the life of a
program: the opcode comparison chain, the operand-tuple unpack, the ALU
sub-opcode branch and the latency-constant attribute walks.  This module
lowers each cached :class:`~repro.cpu.isa.DecodedProgram` once into a
table of per-instruction *specialized closures* — threaded-code style:
``code[i]`` is a zero-lookup callable with its operand register names,
immediates (pre-masked), ALU operation and latency constants bound in
cell variables at compile time.  Executing instruction ``i`` is then one
``code[i](state)`` call.

Equivalence is the hard constraint, not a goal: every closure body is a
transliteration of the corresponding ``_dispatch_one`` arm, including

* the delta-journal register-write protocol (``_set_reg`` inlined: the
  undo record is appended *before* the write while any rollback point is
  live — see :class:`repro.cpu.pipeline._Snapshot`);
* PMC attribution (the per-dispatch ITLB event, load events via the
  shared ``_exec_load``) in the same order;
* telemetry (``DispatchEvent`` before the op, ``CommitEvent`` after,
  nothing for zero-size ``Label``) — still one ``is not None`` check
  when tracing is off;
* deferred decode errors (``ALU_BAD``, unknown labels, ``OP_UNKNOWN``
  raise at *execution*, after the dispatch preamble, exactly like the
  interpreter).

Heavyweight ops (loads, stores, branches, fences) delegate to the very
same ``_ExecState`` methods the interpreter uses, so the predictor
consultations, squash machinery and store-queue interactions are not
merely equivalent but the same code.  The equivalence gate
(:mod:`repro.bench.equivalence`) and the interpreter-vs-compiled
property tests in ``tests/cpu/test_engine_equivalence.py`` pin all of
this byte-for-byte.

Compiled tables are cached in a bounded content-keyed LRU (the same key
discipline as the decode cache in :mod:`repro.cpu.isa`, extended with
the latency constants that were baked into the closures), so warm
campaign workers recompile nothing across repeated runs of the same
program content.
"""

from __future__ import annotations

import operator
from collections import OrderedDict
from typing import Callable

from repro.core.config import LatencyModel
from repro.cpu.isa import (
    ALU_ADD,
    ALU_AND,
    ALU_OR,
    ALU_SUB,
    ALU_XOR,
    OP_ALU,
    OP_ALUIMM,
    OP_CLFLUSH,
    OP_HALT,
    OP_IMUL,
    OP_IMULIMM,
    OP_JZ,
    OP_LABEL,
    OP_LOAD,
    OP_MFENCE,
    OP_MOV,
    OP_MOVIMM,
    OP_PAD,
    OP_RDPRU,
    OP_STORE,
    DecodedProgram,
    Program,
)
from repro.core.hashfn import ipa_hash
from repro.core.predictor_unit import _SSBD_BLOCK
from repro.core.state_machine import predict as _predict_state
from repro.cpu.pipeline import _ABSENT, _ExecState, _SpecLoad
from repro.cpu.pmc import PmcEvent
from repro.errors import (
    InvalidInstruction,
    SegmentationFault,
    SimulationLimitExceeded,
)
from repro.mem.store_queue import StoreEntry
from repro.osm.address_space import CowFault, Perm
from repro.telemetry.events import DispatchEvent

__all__ = [
    "COMPILE_CACHE_SIZE",
    "compile_program",
    "compile_decoded",
    "compile_cache_info",
    "clear_compile_cache",
    "set_compile_cache_size",
    "CompiledExecState",
]

_U64 = (1 << 64) - 1
_ITLB = PmcEvent.ITLB_HIT_4K
_LD_DISPATCH = PmcEvent.LD_DISPATCH
_STLF = PmcEvent.STLF
_SQ_STALL = PmcEvent.SQ_STALL_TOKENS
_PERM_R = Perm.R
_PERM_W = Perm.W

#: Stand-in for "no speculated-load record constrains scheduling" in the
#: execute loop's cached bound (far beyond any reachable cycle count).
_NO_BOUND = 1 << 62

#: Default bound on the compiled-closure LRU (entries, i.e. distinct
#: program contents × latency models).  Sized like the decode cache: a
#: long fuzz campaign cycles thousands of generated programs through one
#: worker, and without a bound every one would pin its closure table.
COMPILE_CACHE_SIZE = 256

_OP_FN = {
    ALU_ADD: operator.add,
    ALU_SUB: operator.sub,
    ALU_XOR: operator.xor,
    ALU_AND: operator.and_,
    ALU_OR: operator.or_,
}


# ----------------------------------------------------------------------
# Per-opcode closure factories.  Each returns ``op(state) -> None`` with
# everything constant bound in the enclosing scope; the bodies replicate
# the matching ``_dispatch_one`` arm plus its shared pre/postlude.
# ----------------------------------------------------------------------

def _c_label(index: int) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state.index = next_index  # zero-size, zero-time: no PMC, no trace

    return op


def _c_movimm(index: int, name: str, dst: str, value: int) -> Callable:
    next_index = index + 1
    masked = value & _U64

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        regs = state.regs
        ready = state.ready
        if state._jlive:
            state._journal.append(
                (dst, regs.get(dst, _ABSENT), ready.get(dst, _ABSENT))
            )
        regs[dst] = masked
        ready[dst] = d
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_mov(index: int, name: str, dst: str, src: str) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        regs = state.regs
        ready = state.ready
        rs = ready.get(src, 0)
        value = regs.get(src, 0)
        if state._jlive:
            state._journal.append(
                (dst, regs.get(dst, _ABSENT), ready.get(dst, _ABSENT))
            )
        regs[dst] = value & _U64
        ready[dst] = rs if rs > d else d
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_alu(
    index: int, name: str, dst: str, a: str, b: str, fn: Callable, lat_alu: int
) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        regs = state.regs
        ready = state.ready
        value = fn(regs.get(a, 0), regs.get(b, 0))
        start = d
        ra = ready.get(a, 0)
        if ra > start:
            start = ra
        rb = ready.get(b, 0)
        if rb > start:
            start = rb
        if state._jlive:
            state._journal.append(
                (dst, regs.get(dst, _ABSENT), ready.get(dst, _ABSENT))
            )
        regs[dst] = value & _U64
        ready[dst] = start + lat_alu
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_aluimm(
    index: int, name: str, dst: str, src: str, imm: int, fn: Callable, lat_alu: int
) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        regs = state.regs
        ready = state.ready
        value = fn(regs.get(src, 0), imm)
        rs = ready.get(src, 0)
        start = rs if rs > d else d
        if state._jlive:
            state._journal.append(
                (dst, regs.get(dst, _ABSENT), ready.get(dst, _ABSENT))
            )
        regs[dst] = value & _U64
        ready[dst] = start + lat_alu
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_imul(
    index: int, name: str, dst: str, a: str, b: str, lat_imul: int
) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        regs = state.regs
        ready = state.ready
        value = regs.get(a, 0) * regs.get(b, 0)
        start = d
        ra = ready.get(a, 0)
        if ra > start:
            start = ra
        rb = ready.get(b, 0)
        if rb > start:
            start = rb
        if state._jlive:
            state._journal.append(
                (dst, regs.get(dst, _ABSENT), ready.get(dst, _ABSENT))
            )
        regs[dst] = value & _U64
        ready[dst] = start + lat_imul
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_imulimm(
    index: int, name: str, dst: str, src: str, imm: int, lat_imul: int
) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        regs = state.regs
        ready = state.ready
        value = regs.get(src, 0) * imm
        rs = ready.get(src, 0)
        start = rs if rs > d else d
        if state._jlive:
            state._journal.append(
                (dst, regs.get(dst, _ABSENT), ready.get(dst, _ABSENT))
            )
        regs[dst] = value & _U64
        ready[dst] = start + lat_imul
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_pad(index: int, name: str) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_rdpru(index: int, name: str, dst: str) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        regs = state.regs
        ready = state.ready
        frontier = max(ready.values(), default=0)
        if d > frontier:
            frontier = d
        value = state.thread.cycles + state._noisy(frontier)
        if state._jlive:
            state._journal.append(
                (dst, regs.get(dst, _ABSENT), ready.get(dst, _ABSENT))
            )
        regs[dst] = value & _U64
        ready[dst] = d
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_clflush(index: int, name: str, base: str, offset: int) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        vaddr = (state.regs.get(base, 0) + offset) & _U64
        paddr = state._translate(vaddr, _PERM_R)
        state.hierarchy.clflush(paddr)
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_load(index: int, name: str, args: tuple, iva: int, lat) -> Callable:
    """A load with the whole :meth:`_ExecState._exec_load` body inlined.

    Operands, the instruction's IVA and the latency constants are bound
    at compile time; the statements mirror the interpreter's, line for
    line and in the same order, with the trace-``None`` branches dropped
    — a recording run (the rare, already-slow mode) delegates to the
    inherited method so event emission cannot drift.
    """
    dst, base, offset, width = args
    next_index = index + 1
    lat_alu = lat.alu
    lat_fwd = lat.sq_forward
    lat_replay = lat.post_stall_replay

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        if state.trace is not None:
            state.trace.emit(
                DispatchEvent(cycle=d, thread=state.tid, index=index, op=name)
            )
            state._exec_load(index, args, d)
            state.retired += 1
            state._trace_commit(index, name, d)
            state.index = next_index
            state.dispatch = d + 1
            return
        state._bldd += 1
        regs = state.regs
        ready = state.ready
        vaddr = (regs.get(base, 0) + offset) & _U64
        rb = ready.get(base, 0)
        addr_ready = (rb if rb > d else d) + lat_alu
        try:
            # kernel.translate only adds COW-write resolution, which a
            # Perm.R access can never trigger, so loads go straight to
            # the page table (same faults, same result, one frame less).
            paddr = state.process.address_space.translate(vaddr, _PERM_R)
        except SegmentationFault as fault:
            state._faulting_load(dst, addr_ready, fault)
            state.retired += 1
            state.index = next_index
            state.dispatch = d + 1
            return

        load_seq = state.seq + 1
        state.seq = load_seq
        sq = state.sq
        pending = sq.nearest_unresolved(load_seq, addr_ready)

        if pending is None:
            # _plain_load, inlined.
            forwarding = sq.forwarding_store(load_seq, paddr, width, addr_ready)
            value = state._merged_read(load_seq, paddr, width, addr_ready, False)
            if forwarding is not None and forwarding.covers(paddr, width):
                fdr = forwarding.data_ready
                complete = (fdr if fdr > addr_ready else addr_ready) + lat_fwd
                state._bstlf += 1
            else:
                latency, _ = state.hierarchy.load(paddr)
                complete = addr_ready + latency
        else:
            # A load racing an unresolved older store: the predictor path.
            load_ipa = state.process.address_space.translate_nofault(iva)
            if load_ipa is None:
                raise SegmentationFault(iva, access="execute")
            salt = state.salt
            store_hash = ipa_hash(pending.store_ipa, salt)
            load_hash = ipa_hash(load_ipa, salt)
            # unit.predict, unrolled: the SSBD gate then the memoized
            # prediction for the assembled counter state.
            unit = state.unit
            if unit.spec_ctrl.ssbd:
                prediction = _SSBD_BLOCK
            else:
                prediction = _predict_state(unit.state_for(store_hash, load_hash))
            truth = pending.overlaps(paddr, width)
            covers = pending.covers(paddr, width)
            p_alias = prediction.aliasing
            p_fwd = prediction.psf_forward

            # sq.unresolved_older and the aliasing-others filter, as one
            # pass over the live entries.
            unresolved = []
            aliasing_others = []
            for entry in state.sq_entries:
                if (
                    entry.seq < load_seq
                    and not entry.committed
                    and entry.addr_ready > addr_ready
                ):
                    unresolved.append(entry)
                    if entry is not pending and entry.overlaps(paddr, width):
                        aliasing_others.append(entry)

            will_squash = (
                (p_alias and p_fwd and not covers)
                or (not p_alias and truth)
                or (not (p_alias and not p_fwd) and bool(aliasing_others))
            )
            snapshot = state._snapshot() if will_squash else None

            if p_alias and p_fwd:
                # Predictive store forwarding (type C right / D wrong).
                data = pending.data
                value = int.from_bytes(
                    data[:width].ljust(width, b"\x00"), "little"
                )
                pdr = pending.data_ready
                complete = (pdr if pdr > addr_ready else addr_ready) + lat_fwd
                state._bstlf += 1
            elif p_alias:
                # Stall until every older unresolved store resolves.
                stall_until = addr_ready
                for entry in unresolved:
                    if entry.addr_ready > stall_until:
                        stall_until = entry.addr_ready
                state._pmcc[_SQ_STALL] += (
                    stall_until - addr_ready if stall_until > addr_ready else 0
                )
                aliasing = [
                    entry
                    for entry in unresolved
                    if entry.overlaps(paddr, width)
                ]
                if aliasing:
                    value = state._merged_read(
                        load_seq, paddr, width, stall_until, True
                    )
                    complete = stall_until
                    for entry in aliasing:
                        if entry.data_ready > complete:
                            complete = entry.data_ready
                    complete += lat_fwd
                    state._bstlf += 1
                else:
                    latency, _ = state.hierarchy.load(paddr)
                    value = state._merged_read(
                        load_seq, paddr, width, stall_until, False
                    )
                    complete = stall_until + latency + lat_replay
            else:
                # Speculative store bypass: stale read around the store.
                latency, _ = state.hierarchy.load(paddr)
                value = state._merged_read(
                    load_seq, paddr, width, addr_ready, False
                )
                complete = addr_ready + latency

            pending.speculated_loads.append(
                _SpecLoad(
                    load_seq=load_seq,
                    load_index=index,
                    load_ipa=load_ipa,
                    load_hash=load_hash,
                    store_hash=store_hash,
                    paddr=paddr,
                    width=width,
                    prediction=prediction,
                    truth=truth,
                    covers=covers,
                    snapshot=snapshot,
                )
            )
            state._nrec += 1
            if not (p_alias and not p_fwd):
                for entry in aliasing_others:
                    snapshot.refs += 1
                    entry.speculated_loads.append(
                        _SpecLoad(
                            load_seq=load_seq,
                            load_index=index,
                            load_ipa=load_ipa,
                            load_hash=load_hash,
                            store_hash=store_hash,
                            paddr=paddr,
                            width=width,
                            prediction=prediction,
                            truth=True,
                            covers=entry.covers(paddr, width),
                            snapshot=snapshot,
                            guard=True,
                        )
                    )
                    state._nrec += 1

        if state._jlive:
            state._journal.append(
                (dst, regs.get(dst, _ABSENT), ready.get(dst, _ABSENT))
            )
        regs[dst] = value & _U64
        ready[dst] = complete
        state.retired += 1
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_store(index: int, name: str, args: tuple, iva: int, lat_alu: int) -> Callable:
    """A store with :meth:`_ExecState._exec_store` inlined (see _c_load)."""
    base, src, offset, width = args
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        if state.trace is not None:
            state.trace.emit(
                DispatchEvent(cycle=d, thread=state.tid, index=index, op=name)
            )
            state._exec_store(index, args, d)
            state.retired += 1
            state._trace_commit(index, name, d)
            state.index = next_index
            state.dispatch = d + 1
            return
        regs = state.regs
        ready = state.ready
        vaddr = (regs.get(base, 0) + offset) & _U64
        paddr = state.kernel.translate(state.process, vaddr, _PERM_W, state.thread)
        rb = ready.get(base, 0)
        rs = ready.get(src, 0)
        seq = state.seq + 1
        state.seq = seq
        store_ipa = state.process.address_space.translate_nofault(iva)
        if store_ipa is None:
            raise SegmentationFault(iva, access="execute")
        state.sq.push(
            StoreEntry(
                seq=seq,
                paddr=paddr,
                size=width,
                data=regs.get(src, 0).to_bytes(8, "little")[:width],
                addr_ready=(rb if rb > d else d) + lat_alu,
                data_ready=rs if rs > d else d,
                store_ipa=store_ipa,
            )
        )
        state.retired += 1
        state.index = next_index
        state.dispatch = d + 1

    return op


def _c_jz(index: int, name: str, args: tuple) -> Callable:
    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        if state.trace is not None:
            state.trace.emit(
                DispatchEvent(cycle=d, thread=state.tid, index=index, op=name)
            )
        state._exec_branch(index, args, d)  # the branch manages index/dispatch

    return op


def _c_halt(index: int, name: str) -> Callable:
    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        window = state.window
        if window is not None:
            # A wrong path ran into Halt: fast-forward to the window's
            # resolve point; the main loop will squash it.
            if window.stop > state.dispatch:
                state.dispatch = window.stop
            return
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        if not state._quiesce():
            state.halted = True

    return op


def _c_mfence(index: int, name: str) -> Callable:
    next_index = index + 1

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        trace = state.trace
        if trace is not None:
            trace.emit(DispatchEvent(cycle=d, thread=state.tid, index=index, op=name))
        before = state.index
        state._exec_mfence()
        if state.index != before:
            return  # a squash rewound us; the fence will re-execute
        state.retired += 1
        if trace is not None:
            state._trace_commit(index, name, d)
        state.index = next_index
        if d + 1 > state.dispatch:
            state.dispatch = d + 1

    return op


def _c_raise(index: int, name: str, message: str) -> Callable:
    """Deferred decode error: raises at execution, after the preamble,
    matching the interpreter's lazy rejection of unreachable garbage."""

    def op(state) -> None:
        state._bitlb += 1
        d = state.dispatch
        if state.trace is not None:
            state.trace.emit(
                DispatchEvent(cycle=d, thread=state.tid, index=index, op=name)
            )
        raise InvalidInstruction(message)

    return op


# ----------------------------------------------------------------------
# Superblock fusion
#
# A maximal run of register ops and stores (no loads, branches, fences
# or anything that can snapshot or squash) can be executed as one
# straight-line *fused* function: operand names, immediates, dispatch
# offsets and latency constants folded into generated source,
# `regs`/`ready` hoisted into locals, the per-dispatch ITLB count and
# retire count batched into two adds at the end (flushed early before
# each store, whose translate may fault).  The
# scheduling loop may only take a fused block when its per-step checks
# are provably no-ops for the block's whole dispatch range (see
# ``CompiledExecState.execute``), so fusion never changes what the
# reference interpreter would have done — it skips work the interpreter
# would have done to conclude "nothing to do".
# ----------------------------------------------------------------------

_ALU_SYM = {ALU_ADD: "+", ALU_SUB: "-", ALU_XOR: "^", ALU_AND: "&", ALU_OR: "|"}
_FUSE_SIMPLE = frozenset((OP_MOVIMM, OP_MOV, OP_PAD, OP_LABEL, OP_IMUL, OP_IMULIMM))


def _fusable(dec: DecodedProgram, i: int) -> bool:
    op = dec.ops[i]
    if op in _FUSE_SIMPLE:
        return True
    if op == OP_ALU or op == OP_ALUIMM:
        return dec.args[i][3] in _ALU_SYM
    # Stores fuse too: they cannot squash or complete out of order, and
    # the codegen flushes the batched counters before each one so any
    # fault inside the store (segfault, COW break) — and the store-queue
    # push itself — observes exactly the interpreter's state.  The
    # scheduler refuses store-bearing blocks that could overflow the
    # queue (see ``CompiledExecState.execute``), falling back to scalar
    # dispatch where capacity overflow raises on the interpreter's step.
    return op == OP_STORE


def _gen_fused(
    dec: DecodedProgram, start: int, end: int, lat: LatencyModel, journaled: bool
):
    """Generate one fused straight-line function for ``dec[start:end)``.

    Returns ``(dispatch_count, store_count, fn)``.  The body replicates
    each instruction's interpreter arm — with the delta-journal appends
    inlined before every register write when ``journaled`` (the variant
    run while a rollback point is live), omitted otherwise — and with
    ``dispatch`` kept as a compile-time offset from the entry value
    (labels occupy no dispatch slot, exactly like the interpreter).

    Stores are fused *segmented*: the batched ITLB/retire counts and the
    running ``dispatch``/``index`` are flushed immediately before each
    store body, so if the store faults (segfault on translate, missing
    instruction page) the exception propagates with every observable
    counter exactly where the scalar closure would have left it.  The
    store body itself is :func:`_c_store`'s hot path with the operands,
    IVA and latency folded in.

    Register values written inside the block live in Python locals until
    a flush point (the segment boundary before each store, and the block
    tail) — a read-after-write within the block hits the local instead
    of the ``regs``/``ready`` dicts, and a register written several
    times pays only one dict store.  The deferral is invisible: nothing
    inside a block observes the dicts except the generated code itself
    (journal entries read the same locals, so the rollback journal gets
    the identical old values), and every path that can raise or leave
    the block flushes first.
    """
    mask = hex(_U64)
    has_store = any(dec.ops[i] == OP_STORE for i in range(start, end))
    lines = [
        "def _fused(state):",
        "    regs = state.regs",
        "    ready = state.ready",
        "    rget = regs.get",
        "    yget = ready.get",
        "    d = state.dispatch",
    ]
    if has_store:
        lines.append("    _spc = state.process")
        lines.append("    _tr = _spc.address_space.translate")
        lines.append("    _tnf = _spc.address_space.translate_nofault")
        lines.append("    _push = state.sq.push")
    if journaled:
        lines.append("    japp = state._journal.append")
    emit = lines.append
    stores = 0
    flushed_itlb = 0  # dispatches whose ITLB count is already flushed
    flushed_ret = 0  # retires already flushed
    loc: dict[str, tuple[str, str]] = {}  # reg -> (value local, ready local)
    dirty: list[str] = []  # block-written regs not yet flushed to the dicts

    def rread(reg: str) -> str:
        pair = loc.get(reg)
        return pair[0] if pair is not None else f"rget({reg!r}, 0)"

    def yread(reg: str) -> str:
        pair = loc.get(reg)
        return pair[1] if pair is not None else f"yget({reg!r}, 0)"

    def journal(dst: str) -> None:
        if journaled:
            pair = loc.get(dst)
            if pair is not None:
                emit(f"    japp(({dst!r}, {pair[0]}, {pair[1]}))")
            else:
                emit(
                    f"    japp(({dst!r}, rget({dst!r}, _ABSENT),"
                    f" yget({dst!r}, _ABSENT)))"
                )

    def locals_for(dst: str) -> tuple[str, str]:
        pair = loc.get(dst)
        if pair is None:
            pair = loc[dst] = (f"_L{len(loc)}", f"_Y{len(loc)}")
        if dst not in dirty:
            dirty.append(dst)
        return pair

    def flush_regs() -> None:
        for reg in dirty:
            value, when = loc[reg]
            emit(f"    regs[{reg!r}] = {value}")
            emit(f"    ready[{reg!r}] = {when}")
        dirty.clear()

    k = 0  # dispatch offset of the next non-label instruction
    for i in range(start, end):
        op = dec.ops[i]
        args = dec.args[i]
        dk = f"d + {k}" if k else "d"
        if op == OP_LABEL:
            continue  # zero-size, zero-time; consumes a step, not a slot
        if op == OP_MOVIMM:
            dst, value = args
            journal(dst)
            lv, ly = locals_for(dst)
            emit(f"    {lv} = {value & _U64}")
            emit(f"    {ly} = {dk}")
        elif op == OP_MOV:
            dst, src = args
            emit(f"    _r = {yread(src)}")
            emit(f"    _v = {rread(src)}")
            journal(dst)
            lv, ly = locals_for(dst)
            emit(f"    {lv} = _v & {mask}")
            emit(f"    {ly} = _r if _r > {dk} else {dk}")
        elif op == OP_ALU or op == OP_IMUL:
            if op == OP_IMUL:
                dst, a, b = args
                sym, lat_c = "*", lat.imul
            else:
                dst, a, b, alu_code, _opname = args
                sym, lat_c = _ALU_SYM[alu_code], lat.alu
            emit(f"    _v = {rread(a)} {sym} {rread(b)}")
            emit(f"    _s = {dk}")
            emit(f"    _t = {yread(a)}")
            emit("    if _t > _s: _s = _t")
            emit(f"    _t = {yread(b)}")
            emit("    if _t > _s: _s = _t")
            journal(dst)
            lv, ly = locals_for(dst)
            emit(f"    {lv} = _v & {mask}")
            emit(f"    {ly} = _s + {lat_c}")
        elif op == OP_ALUIMM or op == OP_IMULIMM:
            if op == OP_IMULIMM:
                dst, src, imm = args
                sym, lat_c = "*", lat.imul
            else:
                dst, src, imm, alu_code, _opname = args
                sym, lat_c = _ALU_SYM[alu_code], lat.alu
            emit(f"    _v = {rread(src)} {sym} {imm}")
            emit(f"    _t = {yread(src)}")
            emit(f"    _s = _t if _t > {dk} else {dk}")
            journal(dst)
            lv, ly = locals_for(dst)
            emit(f"    {lv} = _v & {mask}")
            emit(f"    {ly} = _s + {lat_c}")
        elif op == OP_STORE:
            base, src, offset, width = args
            stores += 1
            # Flush batched state: anything from here on can raise (the
            # interpreter's state at a raise includes the store's own
            # ITLB count but not its retire/dispatch/index advance).
            flush_regs()
            emit(f"    state._bitlb += {k + 1 - flushed_itlb}")
            if k - flushed_ret:
                emit(f"    state.retired += {k - flushed_ret}")
            if k:
                emit(f"    state.dispatch = d + {k}")
            emit(f"    state.index = {i}")
            flushed_itlb = k + 1
            flushed_ret = k
            emit(f"    _va = ({rread(base)} + {offset}) & {mask}")
            # kernel.translate == page-table translate except that it
            # resolves CowFault and retries; take the direct path and
            # fall back to the kernel only on an actual COW break.
            emit("    try:")
            emit("        _pa = _tr(_va, _PERM_W)")
            emit("    except _Cow:")
            emit("        _pa = state.kernel.translate(_spc, _va, _PERM_W, state.thread)")
            emit(f"    _rb = {yread(base)}")
            emit(f"    _rs = {yread(src)}")
            emit("    _sn = state.seq + 1")
            emit("    state.seq = _sn")
            emit(f"    _ipa = _tnf({dec.ivas[i]})")
            emit("    if _ipa is None:")
            emit(f"        raise _SegF({dec.ivas[i]}, access='execute')")
            emit(
                f"    _push(_StoreEntry(seq=_sn, paddr=_pa, size={width},"
                f" data={rread(src)}.to_bytes(8, 'little')[:{width}],"
                f" addr_ready=(_rb if _rb > {dk} else {dk}) + {lat.alu},"
                f" data_ready=_rs if _rs > {dk} else {dk}, store_ipa=_ipa))"
            )
        # OP_PAD: dispatches and retires, moves no data
        k += 1
    flush_regs()
    if k - flushed_itlb:
        emit(f"    state._bitlb += {k - flushed_itlb}")
    emit(f"    state.retired += {k - flushed_ret}")
    emit(f"    state.dispatch = d + {k}")
    emit(f"    state.index = {end}")
    namespace: dict = {}
    exec(
        compile("\n".join(lines), "<repro.cpu.compiler fused>", "exec"),
        {
            "_ITLB": _ITLB,
            "_ABSENT": _ABSENT,
            "_PERM_W": _PERM_W,
            "_Cow": CowFault,
            "_SegF": SegmentationFault,
            "_StoreEntry": StoreEntry,
        },
        namespace,
    )
    return k, stores, namespace["_fused"]


def _c_block(ops: tuple, fused: Callable, fused_j: Callable) -> Callable:
    """One fused superblock: plain straight-line code normally, the
    journaled variant while a rollback point is live, and the exact
    per-instruction closures when telemetry is watching."""

    def blk(state) -> None:
        if state.trace is not None:
            for op in ops:
                op(state)
            return
        if state._jlive:
            fused_j(state)
        else:
            fused(state)

    return blk


#: Fused chunk sizes generated per offset, tried largest-first at run
#: time.  A store-queue event (speculated-load resolution, window stop)
#: bounds how far a block may advance ``dispatch``; graded sizes let the
#: scheduler take the largest chunk that still fits before the next
#: event instead of falling all the way back to scalar dispatch.
FUSE_SIZES = (32, 16, 8, 4, 2)

#: Executions of one compiled program before fused codegen is worth it.
#: ``exec``-compiling the graded superblock bodies costs milliseconds per
#: program — a pure loss for the run-once programs attack search loops
#: mint by the thousand (collision probes, training gadgets).  Until a
#: program has run this many times every offset stays on the scalar
#: closure path (bit-identical by construction, just slower); from then
#: on offsets materialize lazily as before and the generated bodies are
#: shared through the compile cache with every later run.  The value is
#: the measured break-even: codegen and per-run savings both scale with
#: program length, so the run count where fusion pays is roughly
#: length-independent (~15 runs on this interpreter).
FUSE_AFTER_RUNS = 16


def _fuse_blocks(dec: DecodedProgram) -> "list[list | tuple | None]":
    """The superblock table: one entry per fusable offset, else ``None``.

    Control flow can land at *any* index (branch targets, post-squash
    resume points, the instruction after a load or store), so every
    offset whose run-tail is at least two instructions long gets an
    entry.  Entries start as lazy ``[start, run_end]`` markers — the
    fused bodies are generated on first execution by
    :meth:`CompiledProgram.materialize`, so cold paths never pay
    codegen — and are replaced in place by tuples of graded
    ``(steps, dispatches, stores, blk, fused, fused_j)`` options,
    warming the shared
    cached table for every later run of the same program content.
    """
    blocks: list = [None] * dec.n
    i = 0
    while i < dec.n:
        if not _fusable(dec, i):
            i += 1
            continue
        j = i
        while j < dec.n and _fusable(dec, j):
            j += 1
        for p in range(i, j - 1):
            blocks[p] = [p, j]
        i = j
    return blocks


class CompiledProgram:
    """A compiled program: the per-instruction closure table plus the
    superblock table indexed by block-entry instruction."""

    __slots__ = ("code", "blocks", "runs", "partial", "_dec", "_lat")

    def __init__(
        self, code: list, blocks: list, dec: DecodedProgram, lat: LatencyModel
    ) -> None:
        self.code = code
        self.blocks = blocks
        #: Executions so far; gates fused codegen (:data:`FUSE_AFTER_RUNS`).
        self.runs = 0
        #: Offsets whose option tuple holds only the largest grade so
        #: far, mapped to their ``(start, run_end)`` marker.  The
        #: smaller grades are generated by :meth:`densify` the first
        #: time the largest chunk does not fit a dispatch.
        self.partial: dict[int, tuple[int, int]] = {}
        self._dec = dec
        self._lat = lat

    def _gen_option(self, start: int, size: int) -> "tuple | None":
        """One graded ``(steps, dispatches, stores, blk, fused,
        fused_j)`` option, or ``None`` if the chunk dispatches nothing."""
        end = start + size
        dispatches, stores, fused = _gen_fused(
            self._dec, start, end, self._lat, journaled=False
        )
        if dispatches < 1:
            return None
        _, _, fused_j = _gen_fused(
            self._dec, start, end, self._lat, journaled=True
        )
        return (
            size,
            dispatches,
            stores,
            _c_block(tuple(self.code[start:end]), fused, fused_j),
            fused,
            fused_j,
        )

    def materialize(self, index: int) -> "tuple | None":
        """Generate the fused chunk options for a lazy marker at ``index``.

        Replaces the marker in :attr:`blocks` (shared through the
        compile cache, so one generation serves every subsequent run)
        with a tuple of ``(steps, dispatches, stores, blk, fused,
        fused_j)`` options, or ``None`` when the chunk would dispatch
        nothing (an all-label tail — and a shorter prefix of a no-op
        prefix is also a no-op, so no smaller grade can do better).
        Only the largest grade is generated here; the smaller fallback
        grades cost the same ``exec`` codegen each and are usually dead
        weight, so they wait in :attr:`partial` until :meth:`densify`
        proves a dispatch actually needs them.  The execute loop
        dispatches the bare ``fused``/``fused_j`` bodies directly (it
        already knows whether telemetry and a journal are live);
        ``blk`` re-derives the same choice per call for :meth:`step`
        and other callers.
        """
        marker = self.blocks[index]
        start, run_end = marker
        tail = run_end - start
        first = self._gen_option(start, min(FUSE_SIZES[0], tail))
        if first is None:
            self.blocks[index] = None
            return None
        blk = (first,)
        if first[0] > FUSE_SIZES[-1]:
            self.partial[index] = (start, run_end)
        self.blocks[index] = blk
        return blk

    def densify(self, index: int) -> "tuple":
        """Generate the smaller fallback grades for a partial offset.

        Called by the execute loop when the largest chunk at ``index``
        does not fit the current dispatch (window stop, record bound or
        store-queue room).  Extends the option tuple in descending
        size order — selection semantics are identical to eager
        generation, just paid for on first need — and drops the offset
        from :attr:`partial` so the check never fires twice.
        """
        blk = self.blocks[index]
        pending = self.partial.pop(index, None)
        if pending is None:
            return blk
        start, _ = pending
        first_size = blk[0][0]
        options = list(blk)
        for size in FUSE_SIZES:
            if size >= first_size:
                continue
            option = self._gen_option(start, size)
            if option is not None:
                options.append(option)
        blk = tuple(options)
        self.blocks[index] = blk
        return blk


def compile_decoded(dec: DecodedProgram, lat: LatencyModel) -> CompiledProgram:
    """Lower one decoded program into its closure table (uncached)."""
    lat_alu = lat.alu
    lat_imul = lat.imul
    code: list[Callable] = []
    for index in range(dec.n):
        op = dec.ops[index]
        args = dec.args[index]
        name = dec.names[index]
        if op == OP_ALU:
            dst, a, b, alu_code, opname = args
            fn = _OP_FN.get(alu_code)
            if fn is None:
                code.append(_c_raise(index, name, f"unknown ALU op {opname!r}"))
            else:
                code.append(_c_alu(index, name, dst, a, b, fn, lat_alu))
        elif op == OP_ALUIMM:
            dst, src, imm, alu_code, opname = args
            fn = _OP_FN.get(alu_code)
            if fn is None:
                code.append(_c_raise(index, name, f"unknown ALU op {opname!r}"))
            else:
                code.append(_c_aluimm(index, name, dst, src, imm, fn, lat_alu))
        elif op == OP_IMUL:
            code.append(_c_imul(index, name, *args, lat_imul))
        elif op == OP_IMULIMM:
            code.append(_c_imulimm(index, name, *args, lat_imul))
        elif op == OP_MOVIMM:
            code.append(_c_movimm(index, name, *args))
        elif op == OP_MOV:
            code.append(_c_mov(index, name, *args))
        elif op == OP_LOAD:
            code.append(_c_load(index, name, args, dec.ivas[index], lat))
        elif op == OP_STORE:
            code.append(_c_store(index, name, args, dec.ivas[index], lat_alu))
        elif op == OP_PAD:
            code.append(_c_pad(index, name))
        elif op == OP_JZ:
            code.append(_c_jz(index, name, args))
        elif op == OP_HALT:
            code.append(_c_halt(index, name))
        elif op == OP_MFENCE:
            code.append(_c_mfence(index, name))
        elif op == OP_RDPRU:
            code.append(_c_rdpru(index, name, *args))
        elif op == OP_CLFLUSH:
            code.append(_c_clflush(index, name, *args))
        elif op == OP_LABEL:
            code.append(_c_label(index))
        else:
            code.append(
                _c_raise(
                    index, name, f"unhandled instruction {dec.insts[index]!r}"
                )
            )
    return CompiledProgram(code, _fuse_blocks(dec), dec, lat)


# ----------------------------------------------------------------------
# Bounded content-keyed LRU over compiled tables
# ----------------------------------------------------------------------
_cache: "OrderedDict[tuple, list[Callable]]" = OrderedDict()
_cache_size = COMPILE_CACHE_SIZE
_stats = {"hits": 0, "misses": 0, "evictions": 0}


def compile_program(program: Program, lat: LatencyModel) -> CompiledProgram:
    """The compiled form of ``program``, via the bounded LRU.

    The key is the program content (instruction tuple + base IVA — the
    same identity :meth:`Program.decoded` caches on) extended with the
    latency constants baked into the closures, so two machines with
    different :class:`LatencyModel` values never share a table.  A
    program whose instructions do not hash (an exotic subclass) is
    compiled uncached.

    A per-:class:`Program` fast path fronts the LRU: ``decoded()``
    returns an identity-stable table while the content is unchanged, so
    ``(decoded identity, latency constants)`` proves the cached closure
    table is still valid without re-hashing the instruction tuple on
    every run.
    """
    dec = program.decoded()
    ckey = program._compiled_key
    if ckey is not None and ckey[0] is dec and ckey[1] == lat.alu and ckey[2] == lat.imul:
        _stats["hits"] += 1
        return program._compiled
    key = (program._decoded_src, program._decoded_base, lat.alu, lat.imul)
    try:
        code = _cache.get(key)
    except TypeError:
        _stats["misses"] += 1
        code = compile_decoded(dec, lat)
        program._compiled = code
        program._compiled_key = (dec, lat.alu, lat.imul)
        return code
    if code is not None:
        _cache.move_to_end(key)
        _stats["hits"] += 1
        program._compiled = code
        program._compiled_key = (dec, lat.alu, lat.imul)
        return code
    _stats["misses"] += 1
    code = compile_decoded(dec, lat)
    _cache[key] = code
    while len(_cache) > _cache_size:
        _cache.popitem(last=False)
        _stats["evictions"] += 1
    program._compiled = code
    program._compiled_key = (dec, lat.alu, lat.imul)
    return code


def compile_cache_info() -> dict[str, int]:
    """Current compile-cache occupancy and hit/miss/eviction counters."""
    return {"size": len(_cache), "max_size": _cache_size, **_stats}


def clear_compile_cache() -> None:
    """Drop every cached closure table and reset the counters."""
    _cache.clear()
    for name in _stats:
        _stats[name] = 0


def set_compile_cache_size(size: int) -> int:
    """Rebound the LRU (evicting down if needed); returns the old size."""
    global _cache_size
    previous = _cache_size
    _cache_size = max(1, int(size))
    while len(_cache) > _cache_size:
        _cache.popitem(last=False)
        _stats["evictions"] += 1
    return previous


class CompiledExecState(_ExecState):
    """An interpreter state whose dispatch runs the compiled table.

    Only the instruction-dispatch step differs from the base class; the
    scheduling loop (window closure, store resolution, end-of-program
    quiesce) is replicated verbatim from :meth:`_ExecState.step` with
    the ``_dispatch_one`` call replaced by the closure call.  Everything
    else — journaling, squash machinery, loads/stores/branches,
    finalize — is the inherited code, so the two engines cannot drift on
    the hard parts and the shadow-verifier property tests instrument
    both through the same base-class methods.
    """

    def __init__(self, pipeline, process, program, regs) -> None:
        super().__init__(pipeline, process, program, regs)
        self.compiled = compile_program(program, pipeline.lat)
        self.compiled.runs += 1
        self.code = self.compiled.code
        self.blocks = self.compiled.blocks
        # Batched PMC deltas (ITLB dispatch, load dispatch, forwards).
        # The closures accumulate plain ints; the deltas drain into the
        # shared Counter at every point control can leave the engine
        # (per run in execute, per step on the verifier path, finalize,
        # and on any raise via the execute finally) — so every outside
        # observer sees exactly the interpreter's counts.  Only events
        # whose sites always add a positive amount are batched: a
        # zero-amount add must still create the Counter key (the
        # interpreter's ``+= 0`` does), so ``SQ_STALL_TOKENS`` keeps
        # writing through directly.
        self._bitlb = 0
        self._bldd = 0
        self._bstlf = 0

    def _flush_pmc(self) -> None:
        pmcc = self._pmcc
        n = self._bitlb
        if n:
            pmcc[_ITLB] += n
            self._bitlb = 0
        n = self._bldd
        if n:
            pmcc[_LD_DISPATCH] += n
            self._bldd = 0
        n = self._bstlf
        if n:
            pmcc[_STLF] += n
            self._bstlf = 0

    def finalize(self) -> "RunResult":
        self._flush_pmc()
        return super().finalize()

    def execute(self, max_steps: int) -> "RunResult":
        try:
            return self._execute_loop(max_steps)
        finally:
            # Exception escapes (limit, fault) must leave the Counter
            # exact; the normal path already drained via finalize().
            self._flush_pmc()

    def _execute_loop(self, max_steps: int) -> "RunResult":
        """The base-class loop with :meth:`step` inlined and superblocks.

        Two compiled-only shortcuts, both no-op-elision rather than
        reordering, keep this bit-identical to :meth:`_ExecState.
        execute`:

        * A fused superblock at ``index`` is taken only when skipping
          the per-step checks is invisible for the block's whole
          dispatch range ``[d, d + D)``: the window (if open) cannot
          close before ``d + D``, no speculated-load record resolves
          before ``d + D`` (resolution trains predictors with the
          current cycle and can squash, so it must happen on the
          interpreter's exact step), and a store-bearing block must fit
          in the store queue even with every commit deferred — commits
          only shrink the queue, so if the whole block fits now the
          interpreter's pushes succeeded too, and when it doesn't fit
          the scalar fallback raises (or commits and proceeds) on the
          interpreter's exact step.  Store
          commits falling inside the range are *deferred*, not skipped:
          ``commit_ready`` records no cycle and pure register ops
          cannot observe memory or queue occupancy, so the next scalar
          resolve commits the same entries with identical effect.
          ``steps`` advances by the block's step count, and
          blocks that would cross ``max_steps`` fall back to the scalar
          path so :class:`SimulationLimitExceeded` fires on exactly the
          interpreter's step — "limit" statuses are part of the corpus
          digests, so the counting is load-bearing, not cosmetic.
        * ``_resolve_stores`` is called only when it can act.  The loop
          caches ``bound`` — the earliest cycle any speculated-load
          record resolves (min ``addr_ready`` over record-bearing store
          entries) — and skips the call while ``dispatch`` has not
          reached it, replicating only the call's commit tail (head
          store fully ready and under the window ceiling).  The skip is
          exact: before ``bound`` no record-bearing entry passes the
          resolve loop's readiness filter, and the committed head
          cannot carry records (its ``addr_ready`` is below ``bound``).
          ``bound`` depends only on the record-bearing entry set, and
          every record attach/consume moves ``self._nrec``, so an
          ``_nrec`` delta around each scalar dispatch — plus
          unconditional invalidation at the resolve/quiesce/
          window-close sites — is a sound recompute trigger.
        """
        steps = 0
        code = self.code
        blocks = self.blocks
        n = self.dec.n
        sq = self.sq
        cap = sq.capacity
        memory = self.memory
        # The store queue's live-entry list is identity-stable (squash
        # slice-assigns in place), so it can be hoisted out of the loop.
        entries = self.sq_entries
        # The tracer cannot attach mid-run, so the telemetry check hoists
        # out of the dispatch; the journal flag cannot (windows open and
        # close between block dispatches) and is read per dispatch.
        tracing = self.trace is not None
        # Fused codegen only pays off on repeat runs; cold programs keep
        # every lazy marker unmaterialized and dispatch scalar closures.
        hot = self.compiled.runs >= FUSE_AFTER_RUNS
        partial = self.compiled.partial
        bound = -1  # cached record-resolution bound; -1 = stale
        while not self.halted:
            window = self.window
            if window is None:
                index = self.index
                nrec = self._nrec
                if nrec and bound < 0:
                    bound = _NO_BOUND
                    for entry in entries:
                        if entry.speculated_loads:
                            ready_at = entry.addr_ready
                            if ready_at < bound:
                                bound = ready_at
                if index < n:
                    blk = blocks[index]
                    if blk is not None and type(blk) is not tuple:
                        blk = self.compiled.materialize(index) if hot else None
                    if blk is not None:
                        d = self.dispatch
                        while True:
                            chosen = None
                            if nrec:
                                for opt in blk:
                                    if (
                                        steps + opt[0] <= max_steps
                                        and d + opt[1] <= bound
                                        and (
                                            not opt[2]
                                            or len(entries) + opt[2] <= cap
                                        )
                                    ):
                                        chosen = opt
                                        break
                            else:
                                for opt in blk:
                                    if steps + opt[0] <= max_steps and (
                                        not opt[2]
                                        or len(entries) + opt[2] <= cap
                                    ):
                                        chosen = opt
                                        break
                            if chosen is None and index in partial:
                                blk = self.compiled.densify(index)
                                continue  # retry with the fallback grades
                            break
                        if chosen is not None:
                            steps += chosen[0]
                            if tracing:
                                chosen[3](self)
                            else:
                                chosen[5 if self._jlive else 4](self)
                            continue
                steps += 1
                if steps > max_steps:
                    raise SimulationLimitExceeded(
                        f"program {self.program.name!r} exceeded {max_steps} steps"
                    )
                if entries:
                    now = self.dispatch
                    if nrec:
                        if now >= bound:
                            bound = -1
                            if self._resolve_stores(now):
                                continue  # a squash rewound the state
                        else:
                            head = entries[0]
                            if head.addr_ready <= now and head.data_ready <= now:
                                sq.commit_ready(memory, now, None)
                    else:
                        head = entries[0]
                        if head.addr_ready <= now and head.data_ready <= now:
                            self._resolve_stores(now)
                if index >= n:
                    if not self._quiesce():
                        self.halted = True
                    bound = -1
                    continue
                code[index](self)
                if self._nrec != nrec:
                    bound = -1
                continue
            index = self.index
            nrec = self._nrec
            if nrec and bound < 0:
                bound = _NO_BOUND
                for entry in entries:
                    if entry.speculated_loads:
                        ready_at = entry.addr_ready
                        if ready_at < bound:
                            bound = ready_at
            if index < n and self.dispatch < window.stop:
                blk = blocks[index]
                if blk is not None and type(blk) is not tuple:
                    blk = self.compiled.materialize(index) if hot else None
                if blk is not None:
                    limit = window.stop
                    if nrec and bound < limit:
                        limit = bound
                    d = self.dispatch
                    while True:
                        chosen = None
                        for opt in blk:
                            if (
                                steps + opt[0] <= max_steps
                                and d + opt[1] <= limit
                                and (
                                    not opt[2] or len(entries) + opt[2] <= cap
                                )
                            ):
                                chosen = opt
                                break
                        if chosen is None and index in partial:
                            blk = self.compiled.densify(index)
                            continue  # retry with the fallback grades
                        break
                    if chosen is not None:
                        steps += chosen[0]
                        if tracing:
                            chosen[3](self)
                        else:
                            chosen[5 if self._jlive else 4](self)
                        continue
            steps += 1
            if steps > max_steps:
                raise SimulationLimitExceeded(
                    f"program {self.program.name!r} exceeded {max_steps} steps"
                )
            if self.dispatch >= window.stop or index >= n:
                self._close_window()
                bound = -1
                continue
            if entries:
                now = self.dispatch
                if nrec:
                    if now >= bound:
                        bound = -1
                        if self._resolve_stores(now):
                            continue
                    else:
                        head = entries[0]
                        if (
                            head.addr_ready <= now
                            and head.data_ready <= now
                            and head.seq <= window.base_seq
                        ):
                            sq.commit_ready(memory, now, window.base_seq)
                else:
                    head = entries[0]
                    if (
                        head.addr_ready <= now
                        and head.data_ready <= now
                        and head.seq <= window.base_seq
                    ):
                        sq.commit_ready(memory, now, window.base_seq)
            if index >= n:
                if not self._quiesce():
                    self.halted = True
                bound = -1
                continue
            code[index](self)
            if self._nrec != nrec:
                bound = -1
        return self.finalize()

    def step(self) -> bool:
        try:
            return self._step_inner()
        finally:
            self._flush_pmc()

    def _step_inner(self) -> bool:
        if self.halted:
            return False
        window = self.window
        if window is not None and (
            self.dispatch >= window.stop or self.index >= self.dec.n
        ):
            self._close_window()
            return not self.halted
        if self.sq_entries and self._resolve_stores(self.dispatch):
            return True  # a squash rewound the state
        index = self.index
        if index >= self.dec.n:
            if not self._quiesce():
                self.halted = True
            return not self.halted
        self.code[index](self)
        return not self.halted
