"""A non-speculative reference interpreter (differential-testing oracle).

Executes programs strictly in order with no store queue, no predictors,
no transient windows — the architectural semantics and nothing else.
The speculative pipeline must agree with this interpreter on every
architectural outcome (registers and memory) for every program: whatever
the predictors guessed, squashes must have repaired it.  The
property-based differential tests in ``tests/cpu/test_differential.py``
drive random programs through both.

Timing is deliberately absent: ``Rdpru`` writes 0 here; the shared state
comparator (:func:`repro.fuzz.compare.compare_architectural`) excludes
``Rdpru`` destination registers from every comparison, so no caller has
to remember the rule.
"""

from __future__ import annotations

from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    Halt,
    Imul,
    ImulImm,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Pad,
    Program,
    Rdpru,
    Store,
)
from repro.errors import InvalidInstruction, SegmentationFault, SimulationLimitExceeded
from repro.osm.address_space import Perm
from repro.osm.kernel import Kernel
from repro.osm.process import Process

__all__ = ["ReferenceInterpreter"]

_U64 = (1 << 64) - 1


class ReferenceInterpreter:
    """In-order, non-speculative execution of the micro-ISA."""

    def __init__(self, kernel: Kernel, process: Process) -> None:
        self.kernel = kernel
        self.process = process

    def run(
        self,
        program: Program,
        regs: dict[str, int] | None = None,
        max_steps: int = 200_000,
    ) -> dict[str, int]:
        """Execute to completion; returns the final register file.

        Faults behave architecturally: jump to ``fault_handler`` if the
        program defines it, raise otherwise.
        """
        registers = dict(regs or {})
        index = 0
        steps = 0
        while index < len(program):
            steps += 1
            if steps > max_steps:
                raise SimulationLimitExceeded(
                    f"reference run of {program.name!r} exceeded {max_steps} steps"
                )
            instruction = program.instructions[index]
            index += 1
            if isinstance(instruction, (Label, Pad, Mfence, Clflush)):
                continue
            if isinstance(instruction, Halt):
                break
            if isinstance(instruction, MovImm):
                registers[instruction.dst] = instruction.value & _U64
            elif isinstance(instruction, Mov):
                registers[instruction.dst] = registers.get(instruction.src, 0)
            elif isinstance(instruction, Alu):
                registers[instruction.dst] = self._alu(
                    instruction.op,
                    registers.get(instruction.a, 0),
                    registers.get(instruction.b, 0),
                )
            elif isinstance(instruction, AluImm):
                registers[instruction.dst] = self._alu(
                    instruction.op, registers.get(instruction.src, 0), instruction.imm
                )
            elif isinstance(instruction, Imul):
                registers[instruction.dst] = (
                    registers.get(instruction.a, 0) * registers.get(instruction.b, 0)
                ) & _U64
            elif isinstance(instruction, ImulImm):
                registers[instruction.dst] = (
                    registers.get(instruction.src, 0) * instruction.imm
                ) & _U64
            elif isinstance(instruction, Rdpru):
                registers[instruction.dst] = 0
            elif isinstance(instruction, Load):
                vaddr = (registers.get(instruction.base, 0) + instruction.offset) & _U64
                try:
                    paddr = self.kernel.translate(self.process, vaddr, Perm.R)
                except SegmentationFault:
                    handler = program._labels.get("fault_handler")
                    if handler is None:
                        raise
                    index = handler
                    continue
                data = self.kernel.memory.read(paddr, instruction.width)
                registers[instruction.dst] = int.from_bytes(data, "little")
            elif isinstance(instruction, Store):
                vaddr = (registers.get(instruction.base, 0) + instruction.offset) & _U64
                paddr = self.kernel.translate(self.process, vaddr, Perm.W)
                value = registers.get(instruction.src, 0)
                self.kernel.memory.write(
                    paddr, value.to_bytes(8, "little")[: instruction.width]
                )
            elif isinstance(instruction, Jz):
                if registers.get(instruction.cond, 0) == 0:
                    index = program.label_index(instruction.label)
            else:
                raise InvalidInstruction(f"unhandled instruction {instruction!r}")
        return registers

    @staticmethod
    def _alu(op: str, a: int, b: int) -> int:
        if op == "add":
            return (a + b) & _U64
        if op == "sub":
            return (a - b) & _U64
        if op == "xor":
            return (a ^ b) & _U64
        if op == "and":
            return (a & b) & _U64
        if op == "or":
            return (a | b) & _U64
        raise InvalidInstruction(f"unknown ALU op {op!r}")
