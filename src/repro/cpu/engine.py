"""Execution-engine selection for the simulated pipeline.

Two engines interpret the same :class:`~repro.cpu.isa.DecodedProgram`
and must be bit-identical in every observable (registers, timing, PMC
counts, predictor state, telemetry events):

* ``interpreter`` — the reference opcode-dispatch interpreter
  (:class:`repro.cpu.pipeline._ExecState`), the default;
* ``compiled`` — the closure-compilation engine
  (:mod:`repro.cpu.compiler`), which lowers each decoded instruction to
  a pre-specialized closure (threaded-code style) for throughput.

The engine is chosen per :class:`~repro.cpu.machine.Machine` (the
``engine=`` constructor argument) and defaults to the process-wide
setting resolved here.  The default can come from
:func:`set_default_engine` (what the shared ``--engine`` CLI flag calls)
or the ``REPRO_ENGINE`` environment variable — which is how the choice
propagates into supervised pool workers: :func:`set_default_engine`
writes the variable, and worker processes inherit the environment.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError

__all__ = [
    "ENGINES",
    "ENGINE_ENV_VAR",
    "default_engine",
    "set_default_engine",
    "resolve_engine",
]

#: The recognized engine names, reference interpreter first.
ENGINES = ("interpreter", "compiled")

#: Environment variable consulted when no explicit engine is set; also
#: written by :func:`set_default_engine` so pool workers inherit it.
ENGINE_ENV_VAR = "REPRO_ENGINE"

_default: str | None = None


def _validate(name: str, source: str) -> str:
    if name not in ENGINES:
        raise ConfigError(
            f"unknown engine {name!r} (from {source}); "
            f"known: {', '.join(ENGINES)}"
        )
    return name


def default_engine() -> str:
    """The process-wide engine: explicit setting, else env, else interpreter."""
    if _default is not None:
        return _default
    env = os.environ.get(ENGINE_ENV_VAR, "").strip()
    if env:
        return _validate(env, f"${ENGINE_ENV_VAR}")
    return ENGINES[0]


def set_default_engine(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default engine.

    The choice is mirrored into ``REPRO_ENGINE`` so worker processes
    spawned later — supervised pools, recorded-trace subprocesses —
    resolve the same engine without any per-call plumbing.
    """
    global _default
    if name is None:
        _default = None
        os.environ.pop(ENGINE_ENV_VAR, None)
        return
    _default = _validate(name, "set_default_engine")
    os.environ[ENGINE_ENV_VAR] = _default


def resolve_engine(explicit: str | None = None) -> str:
    """An explicit engine name validated, or the process default."""
    if explicit is not None:
        return _validate(explicit, "engine argument")
    return default_engine()
