"""CPU model: micro-ISA, speculative pipeline, SMT threads, PMCs."""

from repro.cpu.core import Core
from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    Halt,
    Imul,
    ImulImm,
    Instruction,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Pad,
    Program,
    Rdpru,
    Store,
)
from repro.cpu.machine import Machine
from repro.cpu.pipeline import FAULT_WINDOW, Pipeline, RunResult, StldEvent
from repro.cpu.pmc import Pmc, PmcEvent
from repro.cpu.thread import HardwareThread

__all__ = [
    "Alu",
    "AluImm",
    "Clflush",
    "Core",
    "FAULT_WINDOW",
    "Halt",
    "HardwareThread",
    "Imul",
    "ImulImm",
    "Instruction",
    "Jz",
    "Label",
    "Load",
    "Machine",
    "Mfence",
    "Mov",
    "MovImm",
    "Pad",
    "Pipeline",
    "Pmc",
    "PmcEvent",
    "Program",
    "Rdpru",
    "RunResult",
    "Store",
    "StldEvent",
]
