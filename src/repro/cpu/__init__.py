"""CPU model: micro-ISA, speculative pipeline, SMT threads, PMCs."""

from repro.cpu.compiler import CompiledExecState, compile_program
from repro.cpu.core import Core
from repro.cpu.engine import ENGINES, default_engine, resolve_engine, set_default_engine
from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    Halt,
    Imul,
    ImulImm,
    Instruction,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Pad,
    Program,
    Rdpru,
    Store,
)
from repro.cpu.machine import Machine
from repro.cpu.pipeline import FAULT_WINDOW, Pipeline, RunResult, StldEvent
from repro.cpu.pmc import Pmc, PmcEvent
from repro.cpu.thread import HardwareThread

__all__ = [
    "Alu",
    "AluImm",
    "Clflush",
    "CompiledExecState",
    "Core",
    "ENGINES",
    "FAULT_WINDOW",
    "compile_program",
    "default_engine",
    "resolve_engine",
    "set_default_engine",
    "Halt",
    "HardwareThread",
    "Imul",
    "ImulImm",
    "Instruction",
    "Jz",
    "Label",
    "Load",
    "Machine",
    "Mfence",
    "Mov",
    "MovImm",
    "Pad",
    "Pipeline",
    "Pmc",
    "PmcEvent",
    "Program",
    "Rdpru",
    "RunResult",
    "Store",
    "StldEvent",
]
