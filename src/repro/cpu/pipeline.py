"""The speculative execution pipeline.

An interpreter-level out-of-order core model: instructions execute in
program order, but every value carries a *ready cycle* (dataflow timing),
stores sit in the store queue until their address generation completes,
and loads that race an unresolved older store consult the predictor unit
— opening transient windows exactly the way the paper's Fig 8 describes:

* **predict aliasing + PSF armed** — the store's data is forwarded before
  its address exists; if the addresses turn out disjoint the window is
  squashed (type D);
* **predict aliasing, PSF off** — the load stalls until address
  generation (types A/B/E/F, no squash);
* **predict non-aliasing** — the load bypasses the store and reads the
  *stale* value from cache/memory; if the addresses collide the window is
  squashed (type G).

Architectural effects (registers, store-queue contents) are rolled back
on a squash; microarchitectural effects — cache fills and **predictor
updates** — persist, which is Vulnerability 4 and the foundation of the
Spectre-CTL covert channel.

Branch mispredictions and faulting loads open windows through the same
rollback machinery (used by the Section IV-D experiments).

Performance notes (docs/performance.md has the full story):

* Programs are interpreted from their pre-decoded dense form
  (:meth:`repro.cpu.isa.Program.decoded`) — integer opcode dispatch
  instead of an isinstance chain, built once and reused across the
  thousands of repeated runs every experiment performs.
* Rollback state is a **delta journal**, not a register-file copy: while
  any rollback point is live, every register write appends an undo
  record, and a squash replays the journal backwards to the rollback
  point's mark (see :class:`_Snapshot`).  Outside speculation the
  journal is empty and writes pay one integer check.
* The equivalence gate (:mod:`repro.bench.equivalence`) pins this
  machinery: any observable divergence from the pre-optimization
  interpreter — registers, memory, cycle counts, trace events — fails
  the gate byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.exec_types import ExecType
from repro.core.hashfn import ipa_hash
from repro.core.state_machine import Prediction
from repro.cpu.core import Core
from repro.cpu.isa import (
    OP_ALU,
    OP_ALUIMM,
    OP_CLFLUSH,
    OP_HALT,
    OP_IMUL,
    OP_IMULIMM,
    OP_JZ,
    OP_LABEL,
    OP_LOAD,
    OP_MFENCE,
    OP_MOV,
    OP_MOVIMM,
    OP_PAD,
    OP_RDPRU,
    OP_STORE,
    ALU_ADD,
    ALU_AND,
    ALU_OR,
    ALU_SUB,
    ALU_XOR,
    Program,
)
from repro.cpu.pmc import PmcEvent
from repro.cpu.thread import HardwareThread
from repro.errors import (
    InvalidInstruction,
    SegmentationFault,
    SimulationLimitExceeded,
)
from repro.mem.store_queue import StoreEntry
from repro.osm.address_space import Perm
from repro.osm.kernel import Kernel
from repro.osm.process import Process
from repro.telemetry import current_tracer, registry
from repro.telemetry.events import (
    BranchPredictEvent,
    BranchResolveEvent,
    CommitEvent,
    DispatchEvent,
    FaultEvent,
    RestoreEvent,
    SquashEvent,
    StldBypassEvent,
    StldForwardEvent,
    StldPredictEvent,
    StldStallEvent,
)

__all__ = ["StldEvent", "RunResult", "Pipeline", "FAULT_WINDOW", "CHAOS_HOOKS"]

_U64 = (1 << 64) - 1

#: Cycles between a faulting load's execution and fault delivery (retire).
FAULT_WINDOW = 30

#: Fault-injection hooks for the differential fuzzing harness
#: (:func:`repro.fuzz.harness.chaos`).  Adding a name here disables one
#: squash-repair step, deliberately breaking the architectural contract so
#: the harness can prove it would catch the corresponding bug class:
#:
#: * ``skip-register-repair`` — a squash stops restoring the register
#:   file, so wrong-path values survive rollback;
#: * ``skip-store-squash`` — a squash stops dropping younger store-queue
#:   entries, so wrong-path stores can commit to memory.
#:
#: Production code must never populate this set, and hooks must stay
#: armed for *whole runs* (the :func:`repro.fuzz.harness.chaos` context
#: manager wraps complete executions): with ``skip-register-repair``
#: armed, skipped rollbacks discard their undo records, so repair cannot
#: be meaningfully re-enabled midway through a run.
CHAOS_HOOKS: set[str] = set()

#: Journal sentinel: the register/ready slot did not exist before the
#: journaled write (undo = delete the key).
_ABSENT = object()


@dataclass(slots=True)
class _SpecLoad:
    """A load that executed against an unresolved store."""

    load_seq: int
    load_index: int
    load_ipa: int
    load_hash: int
    store_hash: int
    paddr: int
    width: int
    prediction: Prediction
    truth: bool
    covers: bool
    #: Rollback point to restore if this load's speculation squashes, or
    #: None when the speculation is known-benign (stall paths).  Shared
    #: with this load's guard records on other store entries — the object
    #: is refcounted (:attr:`_Snapshot.refs`), not copied.
    snapshot: "_Snapshot | None"
    #: An alias guard: the load read around this (non-nearest) unresolved
    #: store and the addresses overlap — a memory-ordering squash with no
    #: predictor involvement (the predictor pair is the *nearest* store).
    guard: bool = False


class _Snapshot:
    """A rollback point into the register delta journal.

    Semantics (the delta-journal invariants — enforced in
    :meth:`_ExecState._restore` and pinned by the property test in
    ``tests/cpu/test_journal_equivalence.py``):

    * ``mark`` is the journal length when the rollback point was taken.
      Restoring replays journal entries *newest-first* down to ``mark``
      (reinstating each register's and ready-cycle's prior value, or
      deleting slots that did not exist), then truncates the journal to
      ``mark``.  Because register slots are only ever added or
      overwritten between snapshot and restore — never deleted — this
      reproduces the old full-copy restore exactly, including dict
      insertion order.
    * Restores only ever travel *backwards*: whenever a restore to
      ``mark`` happens, every other live snapshot's mark is <= ``mark``
      (younger rollback points die in the same squash, via
      ``_train_squashed_records``), so truncation never strands a live
      mark.  The same snapshot object may be restored again later — the
      journal simply regrows from its mark.
    * ``refs`` counts the holders (the speculated-load record, its alias
      guards on other store entries, or a transient window).  The
      executor journals register writes only while at least one snapshot
      is live and clears the journal when the last one dies, so straight-
      line execution pays one integer check per write and no copies.
    """

    __slots__ = ("mark", "index", "retired", "refs")

    def __init__(self, mark: int, index: int, retired: int) -> None:
        self.mark = mark
        self.index = index
        self.retired = retired
        self.refs = 1


@dataclass(slots=True)
class _TransientWindow:
    """A branch-mispredict or pending-fault wrong-path context."""

    stop: int                 # cycle at which the window squashes
    snapshot: _Snapshot
    resume_index: int         # correct-path index after the squash
    base_seq: int             # memory-op seq at window entry
    fault: SegmentationFault | None = None


@dataclass(frozen=True, slots=True)
class StldEvent:
    """One resolved store-load interaction (for tests and experiments)."""

    exec_type: ExecType
    store_ipa: int
    load_ipa: int
    cycle: int

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form, shared by experiment drivers and telemetry
        export (the one serialization — drivers must not hand-roll it)."""
        return {
            "exec_type": self.exec_type.name,
            "store_ipa": self.store_ipa,
            "load_ipa": self.load_ipa,
            "cycle": self.cycle,
        }


@dataclass
class RunResult:
    """Outcome of one :meth:`Pipeline.run`."""

    regs: dict[str, int]
    cycles: int
    events: list[StldEvent] = field(default_factory=list)
    rollbacks: int = 0
    fault: SegmentationFault | None = None
    retired: int = 0

    def exec_types(self) -> list[ExecType]:
        """The A–H classification of each store-load event, in order."""
        return [event.exec_type for event in self.events]

    def has_exec_type(self, exec_type: ExecType) -> bool:
        """Whether any store-load event classified as ``exec_type``."""
        return any(event.exec_type is exec_type for event in self.events)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (registers, timing, events, fault)."""
        return {
            "regs": dict(self.regs),
            "cycles": self.cycles,
            "events": [event.to_dict() for event in self.events],
            "rollbacks": self.rollbacks,
            "fault": None
            if self.fault is None
            else {"address": self.fault.address, "access": self.fault.access},
            "retired": self.retired,
        }


class Pipeline:
    """Executes programs of one process on one hardware thread.

    ``engine`` selects how instructions dispatch: ``"interpreter"`` (the
    reference opcode-dispatch loop below) or ``"compiled"`` (the
    closure-compilation engine, :mod:`repro.cpu.compiler`); ``None``
    resolves the process-wide default (:mod:`repro.cpu.engine`).  The
    two are bit-identical in every observable — the equivalence gate
    and the engine property tests enforce it.
    """

    def __init__(
        self,
        core: Core,
        thread: HardwareThread,
        kernel: Kernel,
        engine: str | None = None,
    ) -> None:
        from repro.cpu.engine import resolve_engine

        self.core = core
        self.thread = thread
        self.kernel = kernel
        self.lat = core.model.latency
        self.engine = resolve_engine(engine)
        if self.engine == "compiled":
            # Imported lazily: the compiler module imports this one.
            from repro.cpu.compiler import CompiledExecState

            self._state_cls: type[_ExecState] = CompiledExecState
        else:
            self._state_cls = _ExecState
        #: 2-bit branch direction counters, keyed by branch IVA.
        self.branch_counters: dict[int, int] = {}
        #: Active tracer at construction time (None = telemetry off).  A
        #: later activation can be picked up via :meth:`attach_tracer`.
        self.trace = current_tracer()
        if self.trace is not None:
            self.attach_tracer(self.trace)
        # Run-level metrics: instruments are resolved once here so the
        # per-run cost is four integer adds and one histogram observe.
        metrics = registry()
        self._m_runs = metrics.counter("pipeline.runs")
        self._m_retired = metrics.counter("pipeline.retired")
        self._m_cycles = metrics.counter("pipeline.cycles")
        self._m_rollbacks = metrics.counter("pipeline.rollbacks")
        self._m_run_cycles = metrics.histogram("pipeline.run_cycles")

    def attach_tracer(self, tracer) -> None:
        """Route this pipeline's (and its predictor unit's) events to
        ``tracer``; ``None`` detaches.

        Takes effect for executions started *after* the call — an
        in-flight :class:`_ExecState` keeps the tracer it was built with,
        so a run's event stream is always all-or-nothing.
        """
        self.trace = tracer
        self.thread.unit.trace = tracer
        self.thread.unit.trace_thread = self.thread.thread_id

    def run(
        self,
        process: Process,
        program: Program,
        regs: dict[str, int] | None = None,
        max_steps: int = 200_000,
    ) -> RunResult:
        """Execute ``program`` to completion; returns the run result.

        The hardware thread's cycle counter advances by the program's
        execution time, so back-to-back runs model back-to-back calls of
        a measured routine while microarchitectural state (predictors,
        caches, branch counters) persists between them.  Repeated runs of
        the same ``program`` object reuse its cached decoded form
        (:meth:`repro.cpu.isa.Program.decoded`); ``regs`` is copied, so
        the caller's dict is never mutated.
        """
        state = self._state_cls(self, process, program, dict(regs or {}))
        result = state.execute(max_steps)
        self.thread.advance(result.cycles)
        self._m_runs.inc()
        self._m_retired.inc(result.retired)
        self._m_cycles.inc(result.cycles)
        self._m_rollbacks.inc(result.rollbacks)
        self._m_run_cycles.observe(result.cycles)
        return result

    def begin(
        self,
        process: Process,
        program: Program,
        regs: dict[str, int] | None = None,
    ) -> "_ExecState":
        """Start a steppable execution (see :meth:`_ExecState.step`).

        Unlike :meth:`run`, the caller drives the execution — one
        :meth:`_ExecState.step` per scheduling decision until it returns
        False — then collects :meth:`_ExecState.finalize` and accounts
        thread cycles from the result.  The SMT runner interleaves two
        hardware threads this way; each state owns its thread's store
        queue and rollback journal, so interleaved states never share
        mutable interpreter state.
        """
        return self._state_cls(self, process, program, dict(regs or {}))

    # Branch prediction: 2-bit saturating direction counters.
    def predict_branch(self, iva: int) -> bool:
        return self.branch_counters.get(iva, 1) >= 2

    def train_branch(self, iva: int, taken: bool) -> None:
        counter = self.branch_counters.get(iva, 1)
        self.branch_counters[iva] = min(counter + 1, 3) if taken else max(counter - 1, 0)


class _ExecState:
    """Mutable interpreter state for one program run.

    Collaborator attributes (store queue, memory, hierarchy, PMC,
    predictor unit, hash salt) are bound once at construction — they are
    stable for the lifetime of a run, and the per-step hot paths below
    read the locals instead of re-walking ``self.thread.…`` chains.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        process: Process,
        program: Program,
        regs: dict[str, int],
    ) -> None:
        self.pipe = pipeline
        self.core = pipeline.core
        self.thread = pipeline.thread
        self.kernel = pipeline.kernel
        self.lat = pipeline.lat
        self.process = process
        self.program = program
        self.dec = program.decoded()
        self.regs = regs
        self.ready: dict[str, int] = {}
        self.index = 0
        self.dispatch = 0
        self.seq = 0
        self.retired = 0
        self.result = RunResult(regs=self.regs, cycles=0)
        self.window: _TransientWindow | None = None
        self.halted = False
        self.trace = pipeline.trace
        self.tid = pipeline.thread.thread_id
        # Hot-path collaborator bindings (stable for the whole run).
        self.sq = pipeline.thread.store_queue
        self.sq_entries = self.sq.live_entries()  # identity-stable list
        self.memory = pipeline.core.memory
        self.hierarchy = pipeline.core.hierarchy
        self.pmc = pipeline.thread.pmc
        # Raw counter bank: the per-dispatch ITLB event is incremented
        # directly (equivalent to Pmc.add, minus the call overhead).
        self._pmcc = self.pmc.counts
        self.unit = pipeline.thread.unit
        self.salt = self.unit.hash_salt
        # Register delta journal (see _Snapshot): undo records appended
        # by _set_reg while any rollback point is live.
        self._journal: list[tuple] = []
        self._jlive = 0      # live _Snapshot objects
        self._nrec = 0       # _SpecLoad records attached to store entries

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _reg(self, name: str) -> int:
        return self.regs.get(name, 0)

    def _ready_of(self, *names: str) -> int:
        return max((self.ready.get(name, 0) for name in names), default=0)

    def _set_reg(self, name: str, value: int, ready: int) -> None:
        """The single register-write point: journals the previous slot
        values while any rollback point is live (delta journal)."""
        if self._jlive:
            self._journal.append(
                (name, self.regs.get(name, _ABSENT), self.ready.get(name, _ABSENT))
            )
        self.regs[name] = value & _U64
        self.ready[name] = ready

    def _snapshot(self) -> _Snapshot:
        """Open a rollback point at the current journal position."""
        self._jlive += 1
        return _Snapshot(len(self._journal), self.index, self.retired)

    def _deref(self, snap: _Snapshot) -> None:
        """Drop one holder of ``snap``; the journal is cleared when the
        last rollback point dies (non-speculative fast path resumes)."""
        snap.refs -= 1
        if snap.refs == 0:
            self._jlive -= 1
            if self._jlive == 0:
                self._journal.clear()

    def _restore(self, snap: _Snapshot) -> None:
        """Rewind registers to ``snap`` by undoing journal entries.

        Entries above the snapshot's mark are applied newest-first —
        reinstating overwritten values and deleting slots created after
        the snapshot — then discarded.  See :class:`_Snapshot` for why
        this is exactly equivalent to restoring a full register-file
        copy.  Under the ``skip-register-repair`` chaos hook the undo is
        skipped (wrong-path values survive) but the journal is still
        truncated, matching the old behaviour of discarding the copy.
        """
        journal = self._journal
        mark = snap.mark
        if "skip-register-repair" not in CHAOS_HOOKS:
            regs = self.regs
            ready = self.ready
            for pos in range(len(journal) - 1, mark - 1, -1):
                name, old_reg, old_ready = journal[pos]
                if old_reg is _ABSENT:
                    del regs[name]
                else:
                    regs[name] = old_reg
                if old_ready is _ABSENT:
                    del ready[name]
                else:
                    ready[name] = old_ready
        del journal[mark:]
        self.index = snap.index
        self.retired = snap.retired

    def _squash_stores(self, seq: int) -> None:
        if "skip-store-squash" not in CHAOS_HOOKS:
            self.sq.squash_younger(seq)

    def _translate(self, vaddr: int, access: Perm) -> int:
        return self.kernel.translate(self.process, vaddr, access, self.thread)

    def _ipa_of_instruction(self, index: int) -> int:
        iva = self.dec.ivas[index]
        paddr = self.process.address_space.translate_nofault(iva)
        if paddr is None:
            raise SegmentationFault(iva, access="execute")
        return paddr

    def _hash(self, ipa: int) -> int:
        return ipa_hash(ipa, self.salt)

    def _in_speculative_context(self) -> bool:
        # O(1): _jlive counts live rollback points, which exist exactly
        # while some speculated-load record or window could still squash.
        return self.window is not None or self._jlive > 0

    def _sq_horizon(self) -> int:
        horizon = self.dispatch
        for entry in self.sq_entries:
            if entry.addr_ready > horizon:
                horizon = entry.addr_ready
            if entry.data_ready > horizon:
                horizon = entry.data_ready
        return horizon

    def _noisy(self, cycles: int) -> int:
        noise = self.core.model.timer_noise
        if not noise:
            return cycles
        jitter = self.core.rng.uniform(-noise, noise)
        return max(0, round(cycles * (1.0 + jitter)))

    # ------------------------------------------------------------------
    # Memory views (store-queue overlay)
    # ------------------------------------------------------------------
    def _merged_read(
        self, seq: int, paddr: int, width: int, now: int, include_unresolved: bool
    ) -> int:
        """Memory bytes overlaid with older uncommitted stores.

        Unresolved stores (address not generated by ``now``) cannot
        forward; a bypassing load reads around them — the stale read that
        Spectre-CTL exploits.
        """
        data = None
        for entry in self.sq_entries:
            if entry.seq >= seq or entry.committed:
                continue
            if not include_unresolved and entry.addr_ready > now:
                continue
            if entry.overlaps(paddr, width):
                if data is None:
                    data = bytearray(self.memory.read(paddr, width))
                lo = max(paddr, entry.paddr)
                hi = min(paddr + width, entry.paddr + entry.size)
                data[lo - paddr : hi - paddr] = entry.data[
                    lo - entry.paddr : hi - entry.paddr
                ]
        if data is None:  # no overlapping store: plain memory read
            return int.from_bytes(self.memory.read(paddr, width), "little")
        return int.from_bytes(data, "little")

    @staticmethod
    def _forward_value(entry: StoreEntry, width: int) -> int:
        return int.from_bytes(entry.data[:width].ljust(width, b"\x00"), "little")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def execute(self, max_steps: int) -> RunResult:
        steps = 0
        step = self.step
        while not self.halted:
            steps += 1
            if steps > max_steps:
                raise SimulationLimitExceeded(
                    f"program {self.program.name!r} exceeded {max_steps} steps"
                )
            step()
        return self.finalize()

    def step(self) -> bool:
        """Advance by one scheduling decision; returns False once halted.

        Exposed so an SMT runner can interleave two hardware threads'
        executions instruction by instruction.
        """
        if self.halted:
            return False
        window = self.window
        if window is not None and (
            self.dispatch >= window.stop or self.index >= self.dec.n
        ):
            self._close_window()
            return not self.halted
        # With an empty store queue _resolve_stores is a no-op (nothing to
        # train, nothing to commit) — skip the call on the ALU-only fast
        # path.  sq_entries is the live list, so emptiness is current.
        if self.sq_entries and self._resolve_stores(self.dispatch):
            return True  # a squash rewound the state
        if self.index >= self.dec.n:
            if not self._quiesce():
                self.halted = True
            return not self.halted
        self._dispatch_one(self.index)
        return not self.halted

    def finalize(self) -> RunResult:
        frontier = max([self.dispatch] + list(self.ready.values()) + [self._sq_horizon()])
        self.sq.drain(self.memory)
        self.pmc.add(PmcEvent.RETIRED_OPS, self.retired)
        self.result.cycles = frontier
        self.result.retired = self.retired
        return self.result

    def _commit_ceiling(self) -> int | None:
        """Stores younger than an open window's base must never commit."""
        return self.window.base_seq if self.window is not None else None

    def _quiesce(self) -> bool:
        """Resolve every pending store at end of program/fence.

        Returns True when a squash rewound execution (caller re-loops).
        """
        horizon = self._sq_horizon()
        if self._resolve_stores(horizon):
            return True
        if horizon > self.dispatch:
            self.dispatch = horizon
        self.sq.commit_ready(self.memory, self.dispatch, self._commit_ceiling())
        return False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_one(self, index: int) -> None:
        dec = self.dec
        op = dec.ops[index]
        if op == OP_LABEL:
            self.index = index + 1
            return  # zero-size, zero-time
        self._pmcc[PmcEvent.ITLB_HIT_4K] += 1
        d = self.dispatch
        if self.trace is not None:
            self.trace.emit(
                DispatchEvent(
                    cycle=d,
                    thread=self.tid,
                    index=index,
                    op=dec.names[index],
                )
            )
        args = dec.args[index]
        # Opcode chain ordered roughly by dynamic frequency in the fuzz
        # and experiment workloads (ALU/IMUL address-generation chains
        # dominate, then memory ops).
        if op == OP_ALU:
            dst, a, b, code, opname = args
            regs = self.regs
            ready = self.ready
            av = regs.get(a, 0)
            bv = regs.get(b, 0)
            start = d
            ra = ready.get(a, 0)
            if ra > start:
                start = ra
            rb = ready.get(b, 0)
            if rb > start:
                start = rb
            if code == ALU_ADD:
                value = av + bv
            elif code == ALU_SUB:
                value = av - bv
            elif code == ALU_XOR:
                value = av ^ bv
            elif code == ALU_AND:
                value = av & bv
            elif code == ALU_OR:
                value = av | bv
            else:
                raise InvalidInstruction(f"unknown ALU op {opname!r}")
            self._set_reg(dst, value, start + self.lat.alu)
        elif op == OP_ALUIMM:
            dst, src, imm, code, opname = args
            av = self.regs.get(src, 0)
            start = d
            rs = self.ready.get(src, 0)
            if rs > start:
                start = rs
            if code == ALU_ADD:
                value = av + imm
            elif code == ALU_SUB:
                value = av - imm
            elif code == ALU_XOR:
                value = av ^ imm
            elif code == ALU_AND:
                value = av & imm
            elif code == ALU_OR:
                value = av | imm
            else:
                raise InvalidInstruction(f"unknown ALU op {opname!r}")
            self._set_reg(dst, value, start + self.lat.alu)
        elif op == OP_IMUL:
            dst, a, b = args
            value = self.regs.get(a, 0) * self.regs.get(b, 0)
            start = d
            ra = self.ready.get(a, 0)
            if ra > start:
                start = ra
            rb = self.ready.get(b, 0)
            if rb > start:
                start = rb
            self._set_reg(dst, value, start + self.lat.imul)
        elif op == OP_IMULIMM:
            dst, src, imm = args
            value = self.regs.get(src, 0) * imm
            start = d
            rs = self.ready.get(src, 0)
            if rs > start:
                start = rs
            self._set_reg(dst, value, start + self.lat.imul)
        elif op == OP_MOVIMM:
            self._set_reg(args[0], args[1], d)
        elif op == OP_MOV:
            dst, src = args
            rs = self.ready.get(src, 0)
            self._set_reg(dst, self.regs.get(src, 0), rs if rs > d else d)
        elif op == OP_LOAD:
            self._exec_load(index, args, d)
        elif op == OP_STORE:
            self._exec_store(index, args, d)
        elif op == OP_PAD:
            pass
        elif op == OP_JZ:
            self._exec_branch(index, args, d)
            return  # the branch manages index/dispatch itself
        elif op == OP_HALT:
            if self.window is not None:
                # A wrong path ran into Halt: fast-forward to the window's
                # resolve point; the main loop will squash it.
                if self.window.stop > self.dispatch:
                    self.dispatch = self.window.stop
                return
            self.retired += 1
            if self.trace is not None:
                self._trace_commit(index, dec.names[index], d)
            if not self._quiesce():
                self.halted = True
            return
        elif op == OP_MFENCE:
            before = self.index
            self._exec_mfence()
            if self.index != before:
                return  # a squash rewound us; the fence will re-execute
            self.retired += 1
            if self.trace is not None:
                self._trace_commit(index, dec.names[index], d)
            self.index = index + 1
            if d + 1 > self.dispatch:
                self.dispatch = d + 1
            return
        elif op == OP_RDPRU:
            frontier = max(self.ready.values(), default=0)
            if d > frontier:
                frontier = d
            self._set_reg(args[0], self.thread.cycles + self._noisy(frontier), d)
        elif op == OP_CLFLUSH:
            base, offset = args
            vaddr = (self.regs.get(base, 0) + offset) & _U64
            paddr = self._translate(vaddr, Perm.R)
            self.hierarchy.clflush(paddr)
        else:
            raise InvalidInstruction(f"unhandled instruction {dec.insts[index]!r}")
        self.retired += 1
        if self.trace is not None:
            self._trace_commit(index, dec.names[index], d)
        self.index = index + 1
        self.dispatch = d + 1

    def _trace_commit(self, index: int, opname: str, cycle: int) -> None:
        self.trace.emit(
            CommitEvent(
                cycle=cycle,
                thread=self.tid,
                index=index,
                op=opname,
                retired=self.retired,
            )
        )

    def _exec_mfence(self) -> None:
        ready = self.ready
        horizon = self._sq_horizon()
        if ready:
            frontier = max(ready.values())
            if frontier > horizon:
                horizon = frontier
        if self._resolve_stores(horizon):
            return
        if horizon > self.dispatch:
            self.dispatch = horizon
        self.sq.commit_ready(self.memory, self.dispatch, self._commit_ceiling())

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------
    def _exec_store(self, index: int, args: tuple, d: int) -> None:
        base, src, offset, width = args
        regs = self.regs
        ready = self.ready
        vaddr = (regs.get(base, 0) + offset) & _U64
        paddr = self._translate(vaddr, Perm.W)
        rb = ready.get(base, 0)
        addr_ready = (rb if rb > d else d) + self.lat.alu
        rs = ready.get(src, 0)
        data_ready = rs if rs > d else d
        value = regs.get(src, 0)
        self.seq += 1
        self.sq.push(
            StoreEntry(
                seq=self.seq,
                paddr=paddr,
                size=width,
                data=value.to_bytes(8, "little")[:width],
                addr_ready=addr_ready,
                data_ready=data_ready,
                store_ipa=self._ipa_of_instruction(index),
            )
        )

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def _exec_load(self, index: int, args: tuple, d: int) -> None:
        dst, base, offset, width = args
        self._pmcc[PmcEvent.LD_DISPATCH] += 1
        vaddr = (self.regs.get(base, 0) + offset) & _U64
        rb = self.ready.get(base, 0)
        addr_ready = (rb if rb > d else d) + self.lat.alu
        try:
            paddr = self._translate(vaddr, Perm.R)
        except SegmentationFault as fault:
            self._faulting_load(dst, addr_ready, fault)
            return

        self.seq += 1
        load_seq = self.seq
        pending = self.sq.nearest_unresolved(load_seq, addr_ready)

        if pending is None:
            self._plain_load(dst, width, load_seq, paddr, addr_ready)
            return

        load_ipa = self._ipa_of_instruction(index)

        # A load racing an unresolved older store: consult the predictors.
        store_hash = ipa_hash(pending.store_ipa, self.salt)
        load_hash = ipa_hash(load_ipa, self.salt)
        prediction = self.unit.predict(store_hash, load_hash)
        truth = pending.overlaps(paddr, width)
        covers = pending.covers(paddr, width)
        if self.trace is not None:
            self.trace.emit(
                StldPredictEvent(
                    cycle=addr_ready,
                    thread=self.tid,
                    index=index,
                    store_ipa=pending.store_ipa,
                    load_ipa=load_ipa,
                    aliasing=prediction.aliasing,
                    psf_forward=prediction.psf_forward,
                    sticky=prediction.sticky,
                    covers=covers,
                )
            )

        # Other unresolved older stores the load will read around: if any
        # aliases, the bypass/forward result is wrong no matter what the
        # (nearest-store) prediction said — a memory-ordering violation.
        unresolved = self.sq.unresolved_older(load_seq, addr_ready)
        aliasing_others = [
            entry
            for entry in unresolved
            if entry is not pending and entry.overlaps(paddr, width)
        ]

        will_squash = (
            (prediction.aliasing and prediction.psf_forward and not covers)
            or (not prediction.aliasing and truth)
            or (not (prediction.aliasing and not prediction.psf_forward)
                and bool(aliasing_others))
        )
        snapshot = self._snapshot() if will_squash else None

        if prediction.aliasing and prediction.psf_forward:
            # Predictive store forwarding (type C right / D wrong).
            value = self._forward_value(pending, width)
            complete = max(addr_ready, pending.data_ready) + self.lat.sq_forward
            self.pmc.add(PmcEvent.STLF)
            if self.trace is not None:
                self.trace.emit(
                    StldForwardEvent(
                        cycle=complete,
                        thread=self.tid,
                        index=index,
                        value=value,
                        correct=covers,
                    )
                )
        elif prediction.aliasing:
            # Stall until address generation of *every* older unresolved
            # store (A/B/E/F): with PSF off the load cannot disambiguate
            # until the addresses are known, and waiting only for the
            # nearest store would read around an older aliasing store
            # whose address resolves later — with no guard to repair it.
            # This wait-for-all is also exactly SSBD's guarantee.
            stall_until = max(
                [addr_ready] + [entry.addr_ready for entry in unresolved]
            )
            self.pmc.add(
                PmcEvent.SQ_STALL_TOKENS, max(0, stall_until - addr_ready)
            )
            aliasing = [
                entry
                for entry in unresolved
                if entry.overlaps(paddr, width)
            ]
            if aliasing:
                value = self._merged_read(
                    load_seq, paddr, width, stall_until, True
                )
                complete = (
                    max([stall_until] + [entry.data_ready for entry in aliasing])
                    + self.lat.sq_forward
                )
                self.pmc.add(PmcEvent.STLF)
            else:
                latency, _ = self.hierarchy.load(paddr)
                value = self._merged_read(
                    load_seq, paddr, width, stall_until, False
                )
                complete = stall_until + latency + self.lat.post_stall_replay
            if self.trace is not None:
                self.trace.emit(
                    StldStallEvent(
                        cycle=stall_until,
                        thread=self.tid,
                        index=index,
                        ready_cycle=complete,
                    )
                )
        else:
            # Speculative store bypass: stale read around the store (H/G).
            latency, _ = self.hierarchy.load(paddr)
            value = self._merged_read(
                load_seq, paddr, width, addr_ready, False
            )
            complete = addr_ready + latency
            if self.trace is not None:
                self.trace.emit(
                    StldBypassEvent(
                        cycle=complete,
                        thread=self.tid,
                        index=index,
                        value=value,
                        correct=not truth,
                    )
                )

        record = _SpecLoad(
            load_seq=load_seq,
            load_index=index,
            load_ipa=load_ipa,
            load_hash=load_hash,
            store_hash=store_hash,
            paddr=paddr,
            width=width,
            prediction=prediction,
            truth=truth,
            covers=covers,
            snapshot=snapshot,
        )
        pending.speculated_loads.append(record)
        self._nrec += 1
        if not (prediction.aliasing and not prediction.psf_forward):
            # Bypass and PSF paths read around *every* unresolved store;
            # attach a guard to each aliasing one so its resolution
            # squashes the load even though the nearest-store prediction
            # was "right".  (The stall path reads the final merged value,
            # so it needs no guards.)  Guards share the load's rollback
            # point — one more holder each, not one more copy.
            for entry in aliasing_others:
                snapshot.refs += 1
                entry.speculated_loads.append(
                    _SpecLoad(
                        load_seq=load_seq,
                        load_index=index,
                        load_ipa=load_ipa,
                        load_hash=load_hash,
                        store_hash=store_hash,
                        paddr=paddr,
                        width=width,
                        prediction=prediction,
                        truth=True,
                        covers=entry.covers(paddr, width),
                        snapshot=snapshot,
                        guard=True,
                    )
                )
                self._nrec += 1
        self._set_reg(dst, value, complete)

    def _plain_load(
        self, dst: str, width: int, load_seq: int, paddr: int, addr_ready: int
    ) -> None:
        forwarding = self.sq.forwarding_store(load_seq, paddr, width, addr_ready)
        value = self._merged_read(load_seq, paddr, width, addr_ready, False)
        if forwarding is not None and forwarding.covers(paddr, width):
            complete = max(addr_ready, forwarding.data_ready) + self.lat.sq_forward
            self.pmc.add(PmcEvent.STLF)
        else:
            latency, _ = self.hierarchy.load(paddr)
            complete = addr_ready + latency
        self._set_reg(dst, value, complete)

    def _faulting_load(
        self, dst: str, addr_ready: int, fault: SegmentationFault
    ) -> None:
        """A faulting load: younger work runs transiently until the fault
        delivers at retire.  AMD does not forward faulting-load data, so
        the destination reads as zero (never secret-bearing)."""
        if self._in_speculative_context():
            # Fault inside an existing window: suppressed entirely.
            self._set_reg(dst, 0, addr_ready + self.lat.l1_hit)
            return
        self.window = _TransientWindow(
            stop=addr_ready + FAULT_WINDOW,
            snapshot=self._snapshot(),
            resume_index=self.index,  # unused for faults
            base_seq=self.seq,
            fault=fault,
        )
        if self.trace is not None:
            self.trace.emit(
                FaultEvent(
                    cycle=addr_ready,
                    thread=self.tid,
                    index=self.index,
                    vaddr=fault.address,
                    window_stop=self.window.stop,
                )
            )
        self._set_reg(dst, 0, addr_ready + self.lat.l1_hit)

    # ------------------------------------------------------------------
    # Branches
    # ------------------------------------------------------------------
    def _exec_branch(self, index: int, args: tuple, d: int) -> None:
        cond, target, label = args
        iva = self.dec.ivas[index]
        taken = self.regs.get(cond, 0) == 0
        predicted = self.pipe.predict_branch(iva)
        rc = self.ready.get(cond, 0)
        resolve = (rc if rc > d else d) + self.lat.alu
        self.pipe.train_branch(iva, taken)
        if self.trace is not None:
            self.trace.emit(
                BranchPredictEvent(
                    cycle=d,
                    thread=self.tid,
                    index=index,
                    iva=iva,
                    predicted_taken=predicted,
                )
            )
            self.trace.emit(
                BranchResolveEvent(
                    cycle=resolve,
                    thread=self.tid,
                    index=index,
                    iva=iva,
                    taken=taken,
                    mispredicted=predicted != taken,
                )
            )
        if target is None:
            raise InvalidInstruction(f"unknown label {label!r}")
        fallthrough = index + 1
        self.retired += 1
        if self.trace is not None:
            self._trace_commit(index, self.dec.names[index], d)
        if predicted == taken or self.window is not None:
            # Correct prediction — or a nested mispredict inside an open
            # window (single-level wrong-path model): follow the truth.
            self.index = target if taken else fallthrough
            self.dispatch = d + 1
            return
        # Mispredicted: run the wrong path transiently until resolution.
        self.window = _TransientWindow(
            stop=resolve,
            snapshot=self._snapshot(),
            resume_index=target if taken else fallthrough,
            base_seq=self.seq,
        )
        self.index = target if predicted else fallthrough  # wrong path
        self.dispatch = d + 1

    # ------------------------------------------------------------------
    # Squash machinery
    # ------------------------------------------------------------------
    def _train_squashed_records(self, after_load_seq: int, now: int) -> None:
        """Vulnerability 4: predictor updates from executed-but-squashed
        store-load pairs are applied before the pairs die."""
        if not self._nrec:
            return
        for entry in self.sq_entries:
            records = entry.speculated_loads
            if not records:
                continue
            keep = []
            for record in records:
                if record.load_seq > after_load_seq:
                    if not record.guard:
                        self._apply_predictor_update(entry, record, now)
                    if record.snapshot is not None:
                        self._deref(record.snapshot)
                    self._nrec -= 1
                else:
                    keep.append(record)
            entry.speculated_loads = keep

    def _apply_predictor_update(
        self, entry: StoreEntry, record: _SpecLoad, now: int
    ) -> ExecType:
        if self.trace is not None:
            self.unit.trace_cycle = now
        result = self.unit.access(
            record.store_hash, record.load_hash, record.truth
        )
        self.result.events.append(
            StldEvent(
                exec_type=result.exec_type,
                store_ipa=entry.store_ipa,
                load_ipa=record.load_ipa,
                cycle=now,
            )
        )
        return result.exec_type

    def _close_window(self) -> None:
        """A branch/fault window reached its resolve point: squash it."""
        assert self.window is not None
        window, self.window = self.window, None
        self._train_squashed_records(window.base_seq, window.stop)
        self._squash_stores(window.base_seq)
        self._restore(window.snapshot)
        self._deref(window.snapshot)
        self.dispatch = window.stop + self.lat.rollback
        self.result.rollbacks += 1
        self.pmc.add(PmcEvent.ROLLBACK)
        if self.trace is not None:
            self.trace.emit(
                SquashEvent(
                    cycle=window.stop,
                    thread=self.tid,
                    reason="fault" if window.fault is not None else "branch",
                    from_index=window.snapshot.index,
                    penalty=self.lat.rollback,
                )
            )
        if window.fault is None:
            self.index = window.resume_index
            if self.trace is not None:
                self._trace_restore()
            return
        handler = window.fault and self.program._labels.get("fault_handler")
        if handler is None:
            self.result.fault = window.fault
            self.result.cycles = self.dispatch
            self.result.retired = self.retired
            self._squash_stores(window.base_seq)
            self.halted = True
            raise window.fault
        self.index = handler
        if self.trace is not None:
            self._trace_restore()

    def _resolve_stores(self, now: int) -> bool:
        """Process stores whose address generation completed by ``now``.

        Applies the TABLE I update for every speculated load of every
        resolved store (in program order), then squashes from the first
        load whose speculation turned out wrong.  Returns True when a
        squash rewound the pipeline.
        """
        if self._nrec:
            for entry in self.sq_entries:
                if entry.addr_ready > now:
                    continue
                records = entry.speculated_loads
                if not records:
                    continue
                entry.speculated_loads = []
                self._nrec -= len(records)
                squashing: _SpecLoad | None = None
                for record in records:
                    if record.guard:
                        wrong = True  # guards are only attached when aliasing
                    else:
                        exec_type = self._apply_predictor_update(entry, record, now)
                        wrong = exec_type.rollback or (
                            exec_type is ExecType.C and not record.covers
                        )
                    if squashing is None and wrong and record.snapshot is not None:
                        squashing = record
                if squashing is not None:
                    self._squash_from(squashing, entry, now)
                    # The rollback points of the records just consumed die
                    # only now, after the restore used the journal.
                    for record in records:
                        if record.snapshot is not None:
                            self._deref(record.snapshot)
                    return True
                for record in records:
                    if record.snapshot is not None:
                        self._deref(record.snapshot)
        # commit_ready commits nothing unless the head store is fully
        # ready and under the window ceiling — replicate its break
        # conditions here so the common not-yet case costs no call.
        entries = self.sq_entries
        if entries:
            head = entries[0]
            if head.addr_ready <= now and head.data_ready <= now:
                window = self.window
                ceiling = None if window is None else window.base_seq
                if ceiling is None or head.seq <= ceiling:
                    self.sq.commit_ready(self.memory, now, ceiling)
        return False

    def _squash_from(self, record: _SpecLoad, entry: StoreEntry, now: int) -> None:
        """Roll back to the mispredicted load and replay it correctly."""
        self._train_squashed_records(record.load_seq, now)
        self._squash_stores(record.load_seq)
        if self.window is not None and record.load_seq <= self.window.base_seq:
            # The branch (or faulting load) that opened the window sits
            # *after* the load we are rewinding to: its window context is
            # stale — the instruction will re-execute and re-open it.
            # Leaving it armed would later "close" onto wrong-path state.
            self._deref(self.window.snapshot)
            self.window = None
        assert record.snapshot is not None
        self._restore(record.snapshot)
        penalty = self.lat.rollback
        if record.prediction.psf_forward:
            penalty += self.lat.psf_rollback_extra
        self.dispatch = max(now, entry.addr_ready) + penalty
        self.result.rollbacks += 1
        self.pmc.add(PmcEvent.ROLLBACK)
        if self.trace is not None:
            self.trace.emit(
                SquashEvent(
                    cycle=now,
                    thread=self.tid,
                    reason="memory",
                    from_index=record.load_index,
                    penalty=penalty,
                )
            )
            self._trace_restore()
        # The store is resolved by now (addr_ready <= dispatch), so the
        # replayed load will not re-speculate against it.

    def _trace_restore(self) -> None:
        self.trace.emit(
            RestoreEvent(
                cycle=self.dispatch,
                thread=self.tid,
                index=self.index,
                retired=self.retired,
            )
        )
