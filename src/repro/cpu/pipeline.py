"""The speculative execution pipeline.

An interpreter-level out-of-order core model: instructions execute in
program order, but every value carries a *ready cycle* (dataflow timing),
stores sit in the store queue until their address generation completes,
and loads that race an unresolved older store consult the predictor unit
— opening transient windows exactly the way the paper's Fig 8 describes:

* **predict aliasing + PSF armed** — the store's data is forwarded before
  its address exists; if the addresses turn out disjoint the window is
  squashed (type D);
* **predict aliasing, PSF off** — the load stalls until address
  generation (types A/B/E/F, no squash);
* **predict non-aliasing** — the load bypasses the store and reads the
  *stale* value from cache/memory; if the addresses collide the window is
  squashed (type G).

Architectural effects (registers, store-queue contents) are rolled back
on a squash; microarchitectural effects — cache fills and **predictor
updates** — persist, which is Vulnerability 4 and the foundation of the
Spectre-CTL covert channel.

Branch mispredictions and faulting loads open windows through the same
rollback machinery (used by the Section IV-D experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.exec_types import ExecType
from repro.core.hashfn import ipa_hash
from repro.core.state_machine import Prediction
from repro.cpu.core import Core
from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    Halt,
    Imul,
    ImulImm,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Pad,
    Program,
    Rdpru,
    Store,
)
from repro.cpu.pmc import PmcEvent
from repro.cpu.thread import HardwareThread
from repro.errors import (
    InvalidInstruction,
    SegmentationFault,
    SimulationLimitExceeded,
)
from repro.mem.store_queue import StoreEntry
from repro.osm.address_space import Perm
from repro.osm.kernel import Kernel
from repro.osm.process import Process
from repro.telemetry import current_tracer, registry
from repro.telemetry.events import (
    BranchPredictEvent,
    BranchResolveEvent,
    CommitEvent,
    DispatchEvent,
    FaultEvent,
    RestoreEvent,
    SquashEvent,
    StldBypassEvent,
    StldForwardEvent,
    StldPredictEvent,
    StldStallEvent,
)

__all__ = ["StldEvent", "RunResult", "Pipeline", "FAULT_WINDOW", "CHAOS_HOOKS"]

_U64 = (1 << 64) - 1

#: Cycles between a faulting load's execution and fault delivery (retire).
FAULT_WINDOW = 30

#: Fault-injection hooks for the differential fuzzing harness
#: (:func:`repro.fuzz.harness.chaos`).  Adding a name here disables one
#: squash-repair step, deliberately breaking the architectural contract so
#: the harness can prove it would catch the corresponding bug class:
#:
#: * ``skip-register-repair`` — a squash stops restoring the register
#:   file, so wrong-path values survive rollback;
#: * ``skip-store-squash`` — a squash stops dropping younger store-queue
#:   entries, so wrong-path stores can commit to memory.
#:
#: Production code must never populate this set.
CHAOS_HOOKS: set[str] = set()


@dataclass
class _SpecLoad:
    """A load that executed against an unresolved store."""

    load_seq: int
    load_index: int
    load_ipa: int
    load_hash: int
    store_hash: int
    paddr: int
    width: int
    prediction: Prediction
    truth: bool
    covers: bool
    #: Snapshot to restore if this load's speculation squashes, or None
    #: when the speculation is known-benign (stall paths).
    snapshot: "_Snapshot | None"
    #: An alias guard: the load read around this (non-nearest) unresolved
    #: store and the addresses overlap — a memory-ordering squash with no
    #: predictor involvement (the predictor pair is the *nearest* store).
    guard: bool = False


@dataclass
class _Snapshot:
    regs: dict[str, int]
    ready: dict[str, int]
    index: int
    retired: int


@dataclass
class _TransientWindow:
    """A branch-mispredict or pending-fault wrong-path context."""

    stop: int                 # cycle at which the window squashes
    snapshot: _Snapshot
    resume_index: int         # correct-path index after the squash
    base_seq: int             # memory-op seq at window entry
    fault: SegmentationFault | None = None


@dataclass(frozen=True)
class StldEvent:
    """One resolved store-load interaction (for tests and experiments)."""

    exec_type: ExecType
    store_ipa: int
    load_ipa: int
    cycle: int

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form, shared by experiment drivers and telemetry
        export (the one serialization — drivers must not hand-roll it)."""
        return {
            "exec_type": self.exec_type.name,
            "store_ipa": self.store_ipa,
            "load_ipa": self.load_ipa,
            "cycle": self.cycle,
        }


@dataclass
class RunResult:
    """Outcome of one :meth:`Pipeline.run`."""

    regs: dict[str, int]
    cycles: int
    events: list[StldEvent] = field(default_factory=list)
    rollbacks: int = 0
    fault: SegmentationFault | None = None
    retired: int = 0

    def exec_types(self) -> list[ExecType]:
        """The A–H classification of each store-load event, in order."""
        return [event.exec_type for event in self.events]

    def has_exec_type(self, exec_type: ExecType) -> bool:
        """Whether any store-load event classified as ``exec_type``."""
        return any(event.exec_type is exec_type for event in self.events)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (registers, timing, events, fault)."""
        return {
            "regs": dict(self.regs),
            "cycles": self.cycles,
            "events": [event.to_dict() for event in self.events],
            "rollbacks": self.rollbacks,
            "fault": None
            if self.fault is None
            else {"address": self.fault.address, "access": self.fault.access},
            "retired": self.retired,
        }


class Pipeline:
    """Executes programs of one process on one hardware thread."""

    def __init__(self, core: Core, thread: HardwareThread, kernel: Kernel) -> None:
        self.core = core
        self.thread = thread
        self.kernel = kernel
        self.lat = core.model.latency
        #: 2-bit branch direction counters, keyed by branch IVA.
        self.branch_counters: dict[int, int] = {}
        #: Active tracer at construction time (None = telemetry off).  A
        #: later activation can be picked up via :meth:`attach_tracer`.
        self.trace = current_tracer()
        if self.trace is not None:
            self.attach_tracer(self.trace)
        # Run-level metrics: instruments are resolved once here so the
        # per-run cost is four integer adds and one histogram observe.
        metrics = registry()
        self._m_runs = metrics.counter("pipeline.runs")
        self._m_retired = metrics.counter("pipeline.retired")
        self._m_cycles = metrics.counter("pipeline.cycles")
        self._m_rollbacks = metrics.counter("pipeline.rollbacks")
        self._m_run_cycles = metrics.histogram("pipeline.run_cycles")

    def attach_tracer(self, tracer) -> None:
        """Route this pipeline's (and its predictor unit's) events to
        ``tracer``; ``None`` detaches."""
        self.trace = tracer
        self.thread.unit.trace = tracer
        self.thread.unit.trace_thread = self.thread.thread_id

    def run(
        self,
        process: Process,
        program: Program,
        regs: dict[str, int] | None = None,
        max_steps: int = 200_000,
    ) -> RunResult:
        """Execute ``program`` to completion; returns the run result.

        The hardware thread's cycle counter advances by the program's
        execution time, so back-to-back runs model back-to-back calls of
        a measured routine while microarchitectural state (predictors,
        caches, branch counters) persists between them.
        """
        state = _ExecState(self, process, program, dict(regs or {}))
        result = state.execute(max_steps)
        self.thread.advance(result.cycles)
        self._m_runs.inc()
        self._m_retired.inc(result.retired)
        self._m_cycles.inc(result.cycles)
        self._m_rollbacks.inc(result.rollbacks)
        self._m_run_cycles.observe(result.cycles)
        return result

    def begin(
        self,
        process: Process,
        program: Program,
        regs: dict[str, int] | None = None,
    ) -> "_ExecState":
        """Start a steppable execution (see :meth:`_ExecState.step`);
        callers drive it and account thread cycles from the final result."""
        return _ExecState(self, process, program, dict(regs or {}))

    # Branch prediction: 2-bit saturating direction counters.
    def predict_branch(self, iva: int) -> bool:
        return self.branch_counters.get(iva, 1) >= 2

    def train_branch(self, iva: int, taken: bool) -> None:
        counter = self.branch_counters.get(iva, 1)
        self.branch_counters[iva] = min(counter + 1, 3) if taken else max(counter - 1, 0)


class _ExecState:
    """Mutable interpreter state for one program run."""

    def __init__(
        self,
        pipeline: Pipeline,
        process: Process,
        program: Program,
        regs: dict[str, int],
    ) -> None:
        self.pipe = pipeline
        self.core = pipeline.core
        self.thread = pipeline.thread
        self.kernel = pipeline.kernel
        self.lat = pipeline.lat
        self.process = process
        self.program = program
        self.regs = regs
        self.ready: dict[str, int] = {}
        self.index = 0
        self.dispatch = 0
        self.seq = 0
        self.retired = 0
        self.result = RunResult(regs=self.regs, cycles=0)
        self.window: _TransientWindow | None = None
        self.halted = False
        self.trace = pipeline.trace
        self.tid = pipeline.thread.thread_id

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _reg(self, name: str) -> int:
        return self.regs.get(name, 0)

    def _ready_of(self, *names: str) -> int:
        return max((self.ready.get(name, 0) for name in names), default=0)

    def _set_reg(self, name: str, value: int, ready: int) -> None:
        self.regs[name] = value & _U64
        self.ready[name] = ready

    def _snapshot(self) -> _Snapshot:
        return _Snapshot(
            regs=dict(self.regs),
            ready=dict(self.ready),
            index=self.index,
            retired=self.retired,
        )

    def _restore(self, snap: _Snapshot) -> None:
        if "skip-register-repair" not in CHAOS_HOOKS:
            self.regs.clear()
            self.regs.update(snap.regs)
            self.ready = dict(snap.ready)
        self.index = snap.index
        self.retired = snap.retired

    def _squash_stores(self, seq: int) -> None:
        if "skip-store-squash" not in CHAOS_HOOKS:
            self.thread.store_queue.squash_younger(seq)

    def _translate(self, vaddr: int, access: Perm) -> int:
        return self.kernel.translate(self.process, vaddr, access, self.thread)

    def _ipa_of_instruction(self, index: int) -> int:
        iva = self.program.iva(index)
        paddr = self.process.address_space.translate_nofault(iva)
        if paddr is None:
            raise SegmentationFault(iva, access="execute")
        return paddr

    def _hash(self, ipa: int) -> int:
        return ipa_hash(ipa, self.thread.unit.hash_salt)

    def _in_speculative_context(self) -> bool:
        if self.window is not None:
            return True
        return any(
            record.snapshot is not None
            for entry in self.thread.store_queue.entries()
            for record in entry.speculated_loads
        )

    def _sq_horizon(self) -> int:
        entries = self.thread.store_queue.entries()
        return max(
            [self.dispatch]
            + [e.addr_ready for e in entries]
            + [e.data_ready for e in entries]
        )

    def _noisy(self, cycles: int) -> int:
        noise = self.core.model.timer_noise
        if not noise:
            return cycles
        jitter = self.core.rng.uniform(-noise, noise)
        return max(0, round(cycles * (1.0 + jitter)))

    # ------------------------------------------------------------------
    # Memory views (store-queue overlay)
    # ------------------------------------------------------------------
    def _merged_read(
        self, seq: int, paddr: int, width: int, now: int, include_unresolved: bool
    ) -> int:
        """Memory bytes overlaid with older uncommitted stores.

        Unresolved stores (address not generated by ``now``) cannot
        forward; a bypassing load reads around them — the stale read that
        Spectre-CTL exploits.
        """
        data = bytearray(self.core.memory.read(paddr, width))
        for entry in self.thread.store_queue.older_than(seq):
            if not include_unresolved and entry.addr_ready > now:
                continue
            if entry.overlaps(paddr, width):
                lo = max(paddr, entry.paddr)
                hi = min(paddr + width, entry.paddr + entry.size)
                data[lo - paddr : hi - paddr] = entry.data[
                    lo - entry.paddr : hi - entry.paddr
                ]
        return int.from_bytes(bytes(data), "little")

    @staticmethod
    def _forward_value(entry: StoreEntry, width: int) -> int:
        return int.from_bytes(entry.data[:width].ljust(width, b"\x00"), "little")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def execute(self, max_steps: int) -> RunResult:
        steps = 0
        while not self.halted:
            steps += 1
            if steps > max_steps:
                raise SimulationLimitExceeded(
                    f"program {self.program.name!r} exceeded {max_steps} steps"
                )
            self.step()
        return self.finalize()

    def step(self) -> bool:
        """Advance by one scheduling decision; returns False once halted.

        Exposed so an SMT runner can interleave two hardware threads'
        executions instruction by instruction.
        """
        if self.halted:
            return False
        if self.window is not None and (
            self.dispatch >= self.window.stop or self.index >= len(self.program)
        ):
            self._close_window()
            return not self.halted
        if self._resolve_stores(self.dispatch):
            return True  # a squash rewound the state
        if self.index >= len(self.program):
            if not self._quiesce():
                self.halted = True
            return not self.halted
        self._dispatch_one(self.program.instructions[self.index])
        return not self.halted

    def finalize(self) -> RunResult:
        frontier = max([self.dispatch] + list(self.ready.values()) + [self._sq_horizon()])
        self.thread.store_queue.drain(self.core.memory)
        self.thread.pmc.add(PmcEvent.RETIRED_OPS, self.retired)
        self.result.cycles = frontier
        self.result.retired = self.retired
        return self.result

    def _commit_ceiling(self) -> int | None:
        """Stores younger than an open window's base must never commit."""
        return self.window.base_seq if self.window is not None else None

    def _quiesce(self) -> bool:
        """Resolve every pending store at end of program/fence.

        Returns True when a squash rewound execution (caller re-loops).
        """
        horizon = self._sq_horizon()
        if self._resolve_stores(horizon):
            return True
        self.dispatch = max(self.dispatch, horizon)
        self.thread.store_queue.commit_ready(
            self.core.memory, self.dispatch, self._commit_ceiling()
        )
        return False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_one(self, instruction) -> None:
        if isinstance(instruction, Label):
            self.index += 1
            return  # zero-size, zero-time
        self.thread.pmc.add(PmcEvent.ITLB_HIT_4K)
        d = self.dispatch
        if self.trace is not None:
            self.trace.emit(
                DispatchEvent(
                    cycle=d,
                    thread=self.tid,
                    index=self.index,
                    op=type(instruction).__name__,
                )
            )
        if isinstance(instruction, Halt):
            if self.window is not None:
                # A wrong path ran into Halt: fast-forward to the window's
                # resolve point; the main loop will squash it.
                self.dispatch = max(self.dispatch, self.window.stop)
                return
            self.retired += 1
            if self.trace is not None:
                self._trace_commit(self.index, instruction, d)
            if not self._quiesce():
                self.halted = True
            return
        if isinstance(instruction, Jz):
            self._exec_branch(instruction, d)
            return  # the branch manages index/dispatch itself
        if isinstance(instruction, Mfence):
            before = self.index
            self._exec_mfence()
            if self.index != before:
                return  # a squash rewound us; the fence will re-execute
            self.retired += 1
            if self.trace is not None:
                self._trace_commit(self.index, instruction, d)
            self.index += 1
            self.dispatch = max(self.dispatch, d + 1)
            return
        if isinstance(instruction, Load):
            self._exec_load(instruction, d)
        elif isinstance(instruction, Store):
            self._exec_store(instruction, d)
        elif isinstance(instruction, Pad):
            pass
        elif isinstance(instruction, MovImm):
            self._set_reg(instruction.dst, instruction.value, d)
        elif isinstance(instruction, Mov):
            self._set_reg(
                instruction.dst,
                self._reg(instruction.src),
                max(d, self._ready_of(instruction.src)),
            )
        elif isinstance(instruction, (Alu, AluImm)):
            self._exec_alu(instruction, d)
        elif isinstance(instruction, (Imul, ImulImm)):
            self._exec_imul(instruction, d)
        elif isinstance(instruction, Rdpru):
            frontier = max([d] + list(self.ready.values()))
            self._set_reg(
                instruction.dst, self.thread.cycles + self._noisy(frontier), d
            )
        elif isinstance(instruction, Clflush):
            vaddr = (self._reg(instruction.base) + instruction.offset) & _U64
            paddr = self._translate(vaddr, Perm.R)
            self.core.hierarchy.clflush(paddr)
        else:
            raise InvalidInstruction(f"unhandled instruction {instruction!r}")
        self.retired += 1
        if self.trace is not None:
            self._trace_commit(self.index, instruction, d)
        self.index += 1
        self.dispatch = d + 1

    def _trace_commit(self, index: int, instruction, cycle: int) -> None:
        self.trace.emit(
            CommitEvent(
                cycle=cycle,
                thread=self.tid,
                index=index,
                op=type(instruction).__name__,
                retired=self.retired,
            )
        )

    def _exec_alu(self, instruction, d: int) -> None:
        if isinstance(instruction, Alu):
            a, b = self._reg(instruction.a), self._reg(instruction.b)
            start = max(d, self._ready_of(instruction.a, instruction.b))
        else:
            a, b = self._reg(instruction.src), instruction.imm
            start = max(d, self._ready_of(instruction.src))
        op = instruction.op
        if op == "add":
            value = a + b
        elif op == "sub":
            value = a - b
        elif op == "xor":
            value = a ^ b
        elif op == "and":
            value = a & b
        elif op == "or":
            value = a | b
        else:
            raise InvalidInstruction(f"unknown ALU op {op!r}")
        self._set_reg(instruction.dst, value, start + self.lat.alu)

    def _exec_imul(self, instruction, d: int) -> None:
        if isinstance(instruction, Imul):
            value = self._reg(instruction.a) * self._reg(instruction.b)
            start = max(d, self._ready_of(instruction.a, instruction.b))
        else:
            value = self._reg(instruction.src) * instruction.imm
            start = max(d, self._ready_of(instruction.src))
        self._set_reg(instruction.dst, value, start + self.lat.imul)

    def _exec_mfence(self) -> None:
        horizon = max(self._sq_horizon(), self._ready_of(*self.ready))
        if self._resolve_stores(horizon):
            return
        self.dispatch = max(self.dispatch, horizon)
        self.thread.store_queue.commit_ready(
            self.core.memory, self.dispatch, self._commit_ceiling()
        )

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------
    def _exec_store(self, instruction: Store, d: int) -> None:
        vaddr = (self._reg(instruction.base) + instruction.offset) & _U64
        paddr = self._translate(vaddr, Perm.W)
        addr_ready = max(d, self._ready_of(instruction.base)) + self.lat.alu
        data_ready = max(d, self._ready_of(instruction.src))
        value = self._reg(instruction.src)
        self.seq += 1
        self.thread.store_queue.push(
            StoreEntry(
                seq=self.seq,
                paddr=paddr,
                size=instruction.width,
                data=value.to_bytes(8, "little")[: instruction.width],
                addr_ready=addr_ready,
                data_ready=data_ready,
                store_ipa=self._ipa_of_instruction(self.index),
            )
        )

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def _exec_load(self, instruction: Load, d: int) -> None:
        self.thread.pmc.add(PmcEvent.LD_DISPATCH)
        vaddr = (self._reg(instruction.base) + instruction.offset) & _U64
        addr_ready = max(d, self._ready_of(instruction.base)) + self.lat.alu
        try:
            paddr = self._translate(vaddr, Perm.R)
        except SegmentationFault as fault:
            self._faulting_load(instruction, addr_ready, fault)
            return

        self.seq += 1
        load_seq = self.seq
        pending = self.thread.store_queue.nearest_unresolved(load_seq, addr_ready)
        load_ipa = self._ipa_of_instruction(self.index)

        if pending is None:
            self._plain_load(instruction, load_seq, paddr, addr_ready)
            return

        # A load racing an unresolved older store: consult the predictors.
        store_hash = self._hash(pending.store_ipa)
        load_hash = self._hash(load_ipa)
        prediction = self.thread.unit.predict(store_hash, load_hash)
        truth = pending.overlaps(paddr, instruction.width)
        covers = pending.covers(paddr, instruction.width)
        if self.trace is not None:
            self.trace.emit(
                StldPredictEvent(
                    cycle=addr_ready,
                    thread=self.tid,
                    index=self.index,
                    store_ipa=pending.store_ipa,
                    load_ipa=load_ipa,
                    aliasing=prediction.aliasing,
                    psf_forward=prediction.psf_forward,
                    sticky=prediction.sticky,
                    covers=covers,
                )
            )

        # Other unresolved older stores the load will read around: if any
        # aliases, the bypass/forward result is wrong no matter what the
        # (nearest-store) prediction said — a memory-ordering violation.
        aliasing_others = [
            entry
            for entry in self.thread.store_queue.unresolved_older(
                load_seq, addr_ready
            )
            if entry is not pending and entry.overlaps(paddr, instruction.width)
        ]

        will_squash = (
            (prediction.aliasing and prediction.psf_forward and not covers)
            or (not prediction.aliasing and truth)
            or (not (prediction.aliasing and not prediction.psf_forward)
                and bool(aliasing_others))
        )
        snapshot = self._snapshot() if will_squash else None

        if prediction.aliasing and prediction.psf_forward:
            # Predictive store forwarding (type C right / D wrong).
            value = self._forward_value(pending, instruction.width)
            complete = max(addr_ready, pending.data_ready) + self.lat.sq_forward
            self.thread.pmc.add(PmcEvent.STLF)
            if self.trace is not None:
                self.trace.emit(
                    StldForwardEvent(
                        cycle=complete,
                        thread=self.tid,
                        index=self.index,
                        value=value,
                        correct=covers,
                    )
                )
        elif prediction.aliasing:
            # Stall until address generation of *every* older unresolved
            # store (A/B/E/F): with PSF off the load cannot disambiguate
            # until the addresses are known, and waiting only for the
            # nearest store would read around an older aliasing store
            # whose address resolves later — with no guard to repair it.
            # This wait-for-all is also exactly SSBD's guarantee.
            unresolved = self.thread.store_queue.unresolved_older(
                load_seq, addr_ready
            )
            stall_until = max(
                [addr_ready] + [entry.addr_ready for entry in unresolved]
            )
            self.thread.pmc.add(
                PmcEvent.SQ_STALL_TOKENS, max(0, stall_until - addr_ready)
            )
            aliasing = [
                entry
                for entry in unresolved
                if entry.overlaps(paddr, instruction.width)
            ]
            if aliasing:
                value = self._merged_read(
                    load_seq, paddr, instruction.width, stall_until, True
                )
                complete = (
                    max([stall_until] + [entry.data_ready for entry in aliasing])
                    + self.lat.sq_forward
                )
                self.thread.pmc.add(PmcEvent.STLF)
            else:
                latency, _ = self.core.hierarchy.load(paddr)
                value = self._merged_read(
                    load_seq, paddr, instruction.width, stall_until, False
                )
                complete = stall_until + latency + self.lat.post_stall_replay
            if self.trace is not None:
                self.trace.emit(
                    StldStallEvent(
                        cycle=stall_until,
                        thread=self.tid,
                        index=self.index,
                        ready_cycle=complete,
                    )
                )
        else:
            # Speculative store bypass: stale read around the store (H/G).
            latency, _ = self.core.hierarchy.load(paddr)
            value = self._merged_read(
                load_seq, paddr, instruction.width, addr_ready, False
            )
            complete = addr_ready + latency
            if self.trace is not None:
                self.trace.emit(
                    StldBypassEvent(
                        cycle=complete,
                        thread=self.tid,
                        index=self.index,
                        value=value,
                        correct=not truth,
                    )
                )

        record = _SpecLoad(
            load_seq=load_seq,
            load_index=self.index,
            load_ipa=load_ipa,
            load_hash=load_hash,
            store_hash=store_hash,
            paddr=paddr,
            width=instruction.width,
            prediction=prediction,
            truth=truth,
            covers=covers,
            snapshot=snapshot,
        )
        pending.speculated_loads.append(record)
        if not (prediction.aliasing and not prediction.psf_forward):
            # Bypass and PSF paths read around *every* unresolved store;
            # attach a guard to each aliasing one so its resolution
            # squashes the load even though the nearest-store prediction
            # was "right".  (The stall path reads the final merged value,
            # so it needs no guards.)
            for entry in aliasing_others:
                entry.speculated_loads.append(
                    _SpecLoad(
                        load_seq=load_seq,
                        load_index=self.index,
                        load_ipa=load_ipa,
                        load_hash=load_hash,
                        store_hash=store_hash,
                        paddr=paddr,
                        width=instruction.width,
                        prediction=prediction,
                        truth=True,
                        covers=entry.covers(paddr, instruction.width),
                        snapshot=snapshot,
                        guard=True,
                    )
                )
        self._set_reg(instruction.dst, value, complete)

    def _plain_load(
        self, instruction: Load, load_seq: int, paddr: int, addr_ready: int
    ) -> None:
        forwarding = self.thread.store_queue.forwarding_store(
            load_seq, paddr, instruction.width, addr_ready
        )
        value = self._merged_read(load_seq, paddr, instruction.width, addr_ready, False)
        if forwarding is not None and forwarding.covers(paddr, instruction.width):
            complete = max(addr_ready, forwarding.data_ready) + self.lat.sq_forward
            self.thread.pmc.add(PmcEvent.STLF)
        else:
            latency, _ = self.core.hierarchy.load(paddr)
            complete = addr_ready + latency
        self._set_reg(instruction.dst, value, complete)

    def _faulting_load(
        self, instruction: Load, addr_ready: int, fault: SegmentationFault
    ) -> None:
        """A faulting load: younger work runs transiently until the fault
        delivers at retire.  AMD does not forward faulting-load data, so
        the destination reads as zero (never secret-bearing)."""
        if self._in_speculative_context():
            # Fault inside an existing window: suppressed entirely.
            self._set_reg(instruction.dst, 0, addr_ready + self.lat.l1_hit)
            return
        self.window = _TransientWindow(
            stop=addr_ready + FAULT_WINDOW,
            snapshot=self._snapshot(),
            resume_index=self.index,  # unused for faults
            base_seq=self.seq,
            fault=fault,
        )
        if self.trace is not None:
            self.trace.emit(
                FaultEvent(
                    cycle=addr_ready,
                    thread=self.tid,
                    index=self.index,
                    vaddr=fault.address,
                    window_stop=self.window.stop,
                )
            )
        self._set_reg(instruction.dst, 0, addr_ready + self.lat.l1_hit)

    # ------------------------------------------------------------------
    # Branches
    # ------------------------------------------------------------------
    def _exec_branch(self, instruction: Jz, d: int) -> None:
        iva = self.program.iva(self.index)
        taken = self._reg(instruction.cond) == 0
        predicted = self.pipe.predict_branch(iva)
        resolve = max(d, self._ready_of(instruction.cond)) + self.lat.alu
        self.pipe.train_branch(iva, taken)
        if self.trace is not None:
            self.trace.emit(
                BranchPredictEvent(
                    cycle=d,
                    thread=self.tid,
                    index=self.index,
                    iva=iva,
                    predicted_taken=predicted,
                )
            )
            self.trace.emit(
                BranchResolveEvent(
                    cycle=resolve,
                    thread=self.tid,
                    index=self.index,
                    iva=iva,
                    taken=taken,
                    mispredicted=predicted != taken,
                )
            )
        target = self.program.label_index(instruction.label)
        fallthrough = self.index + 1
        self.retired += 1
        if self.trace is not None:
            self._trace_commit(self.index, instruction, d)
        if predicted == taken or self.window is not None:
            # Correct prediction — or a nested mispredict inside an open
            # window (single-level wrong-path model): follow the truth.
            self.index = target if taken else fallthrough
            self.dispatch = d + 1
            return
        # Mispredicted: run the wrong path transiently until resolution.
        self.window = _TransientWindow(
            stop=resolve,
            snapshot=self._snapshot(),
            resume_index=target if taken else fallthrough,
            base_seq=self.seq,
        )
        self.index = target if predicted else fallthrough  # wrong path
        self.dispatch = d + 1

    # ------------------------------------------------------------------
    # Squash machinery
    # ------------------------------------------------------------------
    def _train_squashed_records(self, after_load_seq: int, now: int) -> None:
        """Vulnerability 4: predictor updates from executed-but-squashed
        store-load pairs are applied before the pairs die."""
        for entry in self.thread.store_queue.entries():
            keep = []
            for record in entry.speculated_loads:
                if record.load_seq > after_load_seq:
                    if not record.guard:
                        self._apply_predictor_update(entry, record, now)
                else:
                    keep.append(record)
            entry.speculated_loads = keep

    def _apply_predictor_update(
        self, entry: StoreEntry, record: _SpecLoad, now: int
    ) -> ExecType:
        if self.trace is not None:
            self.thread.unit.trace_cycle = now
        result = self.thread.unit.access(
            record.store_hash, record.load_hash, record.truth
        )
        self.result.events.append(
            StldEvent(
                exec_type=result.exec_type,
                store_ipa=entry.store_ipa,
                load_ipa=record.load_ipa,
                cycle=now,
            )
        )
        return result.exec_type

    def _close_window(self) -> None:
        """A branch/fault window reached its resolve point: squash it."""
        assert self.window is not None
        window, self.window = self.window, None
        self._train_squashed_records(window.base_seq, window.stop)
        self._squash_stores(window.base_seq)
        self._restore(window.snapshot)
        self.dispatch = window.stop + self.lat.rollback
        self.result.rollbacks += 1
        self.thread.pmc.add(PmcEvent.ROLLBACK)
        if self.trace is not None:
            self.trace.emit(
                SquashEvent(
                    cycle=window.stop,
                    thread=self.tid,
                    reason="fault" if window.fault is not None else "branch",
                    from_index=window.snapshot.index,
                    penalty=self.lat.rollback,
                )
            )
        if window.fault is None:
            self.index = window.resume_index
            if self.trace is not None:
                self._trace_restore()
            return
        handler = window.fault and self.program._labels.get("fault_handler")
        if handler is None:
            self.result.fault = window.fault
            self.result.cycles = self.dispatch
            self.result.retired = self.retired
            self._squash_stores(window.base_seq)
            self.halted = True
            raise window.fault
        self.index = handler
        if self.trace is not None:
            self._trace_restore()

    def _resolve_stores(self, now: int) -> bool:
        """Process stores whose address generation completed by ``now``.

        Applies the TABLE I update for every speculated load of every
        resolved store (in program order), then squashes from the first
        load whose speculation turned out wrong.  Returns True when a
        squash rewound the pipeline.
        """
        for entry in list(self.thread.store_queue.entries()):
            if entry.addr_ready > now or not entry.speculated_loads:
                continue
            records, entry.speculated_loads = entry.speculated_loads, []
            squashing: _SpecLoad | None = None
            for record in records:
                if record.guard:
                    wrong = True  # guards are only attached when aliasing
                else:
                    exec_type = self._apply_predictor_update(entry, record, now)
                    wrong = exec_type.rollback or (
                        exec_type is ExecType.C and not record.covers
                    )
                if squashing is None and wrong and record.snapshot is not None:
                    squashing = record
            if squashing is not None:
                self._squash_from(squashing, entry, now)
                return True
        self.thread.store_queue.commit_ready(
            self.core.memory, now, self._commit_ceiling()
        )
        return False

    def _squash_from(self, record: _SpecLoad, entry: StoreEntry, now: int) -> None:
        """Roll back to the mispredicted load and replay it correctly."""
        self._train_squashed_records(record.load_seq, now)
        self._squash_stores(record.load_seq)
        if self.window is not None and record.load_seq <= self.window.base_seq:
            # The branch (or faulting load) that opened the window sits
            # *after* the load we are rewinding to: its window context is
            # stale — the instruction will re-execute and re-open it.
            # Leaving it armed would later "close" onto wrong-path state.
            self.window = None
        assert record.snapshot is not None
        self._restore(record.snapshot)
        penalty = self.lat.rollback
        if record.prediction.psf_forward:
            penalty += self.lat.psf_rollback_extra
        self.dispatch = max(now, entry.addr_ready) + penalty
        self.result.rollbacks += 1
        self.thread.pmc.add(PmcEvent.ROLLBACK)
        if self.trace is not None:
            self.trace.emit(
                SquashEvent(
                    cycle=now,
                    thread=self.tid,
                    reason="memory",
                    from_index=record.load_index,
                    penalty=penalty,
                )
            )
            self._trace_restore()
        # The store is resolved by now (addr_ready <= dispatch), so the
        # replayed load will not re-speculate against it.

    def _trace_restore(self) -> None:
        self.trace.emit(
            RestoreEvent(
                cycle=self.dispatch,
                thread=self.tid,
                index=self.index,
                retired=self.retired,
            )
        )
