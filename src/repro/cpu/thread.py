"""A hardware (SMT) thread: the per-thread slice of a Zen 3 core.

Section IV-A finds that both PSFP and SSBP are *partitioned* between the
two SMT threads of a physical core (likely duplicated, since switching to
single-thread mode does not change the observed sizes).  We model that by
giving every hardware thread its own :class:`PredictorUnit`, store queue
and TLB; the cache hierarchy and physical memory are core-(and system-)
shared.
"""

from __future__ import annotations

from repro.core.config import CpuModel
from repro.core.predictor_unit import PredictorUnit
from repro.core.spec_ctrl import SpecCtrl
from repro.cpu.pmc import Pmc
from repro.mem.store_queue import StoreQueue
from repro.mem.tlb import Tlb

__all__ = ["HardwareThread"]


class HardwareThread:
    """One SMT thread: predictors, store queue, TLB, PMCs, current process."""

    def __init__(
        self,
        thread_id: int,
        model: CpuModel,
        spec_ctrl: SpecCtrl,
        hash_salt: int = 0,
    ) -> None:
        self.thread_id = thread_id
        self.model = model
        self.spec_ctrl = spec_ctrl
        self.unit = PredictorUnit(model, spec_ctrl, hash_salt=hash_salt)
        self.store_queue = StoreQueue(model.store_queue_entries)
        self.tlb = Tlb()
        self.pmc = Pmc()
        #: pid of the process currently scheduled here (None when idle).
        self.current_pid: int | None = None
        #: Monotonic cycle counter read by RDPRU.
        self.cycles = 0
        #: Involuntary context switches this thread has absorbed
        #: (bumped by :meth:`repro.osm.kernel.Kernel.preempt`).
        self.preemptions = 0

    def advance(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("time only moves forward")
        self.cycles += cycles

    def on_context_switch(self, next_pid: int | None, flush_ssbp: bool = False) -> None:
        """Kernel hook: flush PSFP (and optionally SSBP), swap the TLB."""
        self.unit.on_context_switch(flush_ssbp=flush_ssbp)
        self.tlb.flush()
        self.current_pid = next_pid

    def on_suspend(self) -> None:
        """Kernel hook for ``sleep``: both predictors are flushed."""
        self.unit.on_suspend()

    def __repr__(self) -> str:
        return (
            f"HardwareThread(id={self.thread_id}, pid={self.current_pid}, "
            f"cycles={self.cycles})"
        )
