"""Static speculative-leakage analysis (``repro-scan``).

Where :mod:`repro.fuzz` *executes* its way to leaks — dual execution plus
the two-fill oracle, one full pipeline simulation per verdict — this
package reasons about a program **without running it**: it lifts the
micro-ISA into a small dataflow IR (:mod:`.ir`), enumerates the
speculative windows the predictors can open (:mod:`.windows`),
propagates secret taint from the loads that can observe the initial
buffer fill (:mod:`.taint`) and reports transmitters — secret-dependent
load addresses and their kin — as structured gadget findings
(:mod:`.gadgets`).  A fence advisor (:mod:`.advisor`) proposes a minimal
:mod:`repro.mitigations.fences` placement and re-scans the patched
program to prove the bypass gadgets dead.

The scanner is deliberately **sound, not precise**: it over-approximates
(every unresolved older store may be bypassed, every wrong path may
execute), so a program it proves gadget-free cannot leak under the
dynamic oracle.  That invariant is not an aspiration — it is a tested
property: :mod:`.crossval` replays the persistent fuzz corpus through
both the scanner and :func:`repro.fuzz.oracle.leak_check` and fails on
any dynamically observed leak the scanner missed.  ``repro-fuzz
--static-prefilter`` rests on exactly this guarantee.

Not to be confused with :mod:`repro.attacks.victim_gadgets`, which
*builds* the paper's victim gadget programs; :mod:`repro.static.gadgets`
*detects* gadgets in arbitrary programs (and is cross-checked against
those builders in the test suite).
"""

from repro.static.advisor import FencePlan, advise
from repro.static.crossval import (
    AGREEMENT_CELLS,
    CrossValReport,
    agreement_matrix,
    build_cases,
    run_crossval,
)
from repro.static.gadgets import ScanReport, StaticGadget, scan_program
from repro.static.ir import IRNode, IRProgram, lift
from repro.static.taint import TaintResult, analyze_taint
from repro.static.windows import BranchWindow, BypassEdge, branch_windows, bypass_edges

__all__ = [
    "AGREEMENT_CELLS",
    "BranchWindow",
    "BypassEdge",
    "CrossValReport",
    "FencePlan",
    "IRNode",
    "IRProgram",
    "ScanReport",
    "StaticGadget",
    "TaintResult",
    "advise",
    "agreement_matrix",
    "analyze_taint",
    "branch_windows",
    "build_cases",
    "bypass_edges",
    "lift",
    "run_crossval",
    "scan_program",
]
