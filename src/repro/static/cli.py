"""The ``repro-scan`` CLI: static scans, fence advice, cross-validation.

Three subcommands over the same analyzer:

* ``scan`` — lift and scan programs (corpus entries, ``case:`` targets,
  generated batches) per mitigation, emitting a canonical findings JSONL
  in stable task order.  ``--jobs N`` fans programs out over worker
  processes; the artifact is byte-identical whatever ``N`` was, which
  ``make scan-smoke`` enforces with a literal ``cmp``.
* ``advise`` — compute, apply and verify a minimal fence placement for
  each target (:mod:`repro.static.advisor`).
* ``crossval`` — replay corpus/shrunk/generated cases through both the
  scanner and the dynamic two-fill oracle and print the agreement
  matrix (:mod:`repro.static.crossval`); exits 1 on any soundness
  violation, because a dynamic leak the scanner missed is a bug in the
  scanner, never in the program.

Exit codes follow the shared campaign contract
(:mod:`repro.runtime.exitcodes`): 0 clean, 1 failures/violations, 2 bad
usage, 3 interrupted.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.core.config import ZEN3_MODELS
from repro.errors import ArtifactError, ConfigError, ReproError
from repro.fuzz import corpus as corpus_mod
from repro.fuzz.cli import derive_case
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, Corpus
from repro.fuzz.gen import GENERATORS, build_program
from repro.fuzz.harness import MITIGATIONS
from repro.runtime import exitcodes
from repro.runtime.atomic import atomic_write_text
from repro.runtime.cliutil import apply_engine, build_parser
from repro.runtime.supervisor import DEFAULT_RETRIES, run_supervised
from repro.static import crossval as crossval_mod
from repro.static.advisor import advise
from repro.static.gadgets import scan_program
from repro.static.report import canonical, render_crossval, render_plan, render_scan

__all__ = ["main", "parse_target", "run_scan_batch"]

_EPILOG = """\
targets are `case:<generator>:<seed>:<blocks>` (the repro-trace syntax);
`scan` with no targets scans the persistent corpus replay set.
`crossval` exits 1 on any soundness violation: a dynamically observed
leak the scanner failed to flag"""


def parse_target(target: str) -> tuple[str, int, int]:
    """Parse a ``case:<generator>:<seed>:<blocks>`` program target."""
    parts = target.split(":")
    if len(parts) != 4 or parts[0] != "case":
        raise ConfigError(
            f"bad target {target!r}: expected case:<generator>:<seed>:<blocks>"
        )
    _, generator, seed, blocks = parts
    if generator not in GENERATORS:
        raise ConfigError(
            f"unknown generator {generator!r}; known: {', '.join(sorted(GENERATORS))}"
        )
    try:
        return generator, int(seed), int(blocks)
    except ValueError:
        raise ConfigError(
            f"bad target {target!r}: seed and blocks must be integers"
        ) from None


def _scan_tasks(
    targets: Sequence[str],
    *,
    corpus_dir: str | Path | None,
    budget: int,
    seed: int,
    mitigations: Sequence[str],
) -> list[dict]:
    """The scan task list: explicit targets, else corpus + generated."""
    cases: list[tuple[str, int, int, str]] = []
    if targets:
        for target in targets:
            generator, case_seed, blocks = parse_target(target)
            cases.append((generator, case_seed, blocks, target))
    else:
        corp = Corpus(corpus_dir) if corpus_dir is not None else None
        for entry in corpus_mod.replay_order(corp):
            cases.append((entry.generator, entry.seed, entry.blocks, entry.label))
    for index in range(budget):
        case_seed, blocks = derive_case(seed, index)
        for generator in ("fuzz-v1", "oracle-v1"):
            cases.append((generator, case_seed, blocks, f"gen-{index}"))
    tasks = []
    for generator, case_seed, blocks, label in cases:
        for mitigation in mitigations:
            tasks.append(
                {
                    "task": len(tasks),
                    "generator": generator,
                    "seed": case_seed,
                    "blocks": blocks,
                    "label": label,
                    "mitigation": mitigation,
                }
            )
    return tasks


def _scan_one(task: dict) -> dict:
    """Worker: scan one (program, mitigation); returns the JSONL record."""
    instructions = build_program(task["generator"], task["seed"], task["blocks"])
    report = scan_program(
        instructions,
        mitigation=task["mitigation"],
        name=f"{task['generator']}:{task['seed']}:{task['blocks']}",
    )
    from repro.static.report import SCAN_SCHEMA

    return {
        "schema": SCAN_SCHEMA,
        "generator": task["generator"],
        "seed": task["seed"],
        "blocks": task["blocks"],
        "label": task["label"],
        **report.to_dict(),
    }


def _validate_record(record: object) -> dict:
    if not isinstance(record, dict) or "gadgets" not in record:
        raise ArtifactError(f"malformed scan record: {record!r}")
    return record


def run_scan_batch(
    tasks: list[dict],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    progress: Callable[[str], None] | None = None,
):
    """Supervised fan-out of scan tasks; records in stable task order."""
    say = progress or (lambda line: None)
    results: dict[int, dict] = {}

    def on_result(task_id: int, record: dict) -> None:
        results[task_id] = record
        verdict = "clean" if record["clean"] else f"{len(record['gadgets'])} gadget(s)"
        say(
            f"task {task_id:3d} {record['name']:<24s} "
            f"[{record['mitigation']}]: {verdict}"
        )

    report = run_supervised(
        [(task["task"], task) for task in tasks],
        _scan_one,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        validate=_validate_record,
        on_result=on_result,
        progress=say,
    )
    return [results[task_id] for task_id in sorted(results)], report


def _mitigation_list(text: str) -> list[str]:
    mitigations = [part.strip() for part in text.split(",") if part.strip()]
    for mitigation in mitigations:
        if mitigation not in MITIGATIONS:
            raise ConfigError(
                f"unknown mitigation {mitigation!r}; "
                f"known: {', '.join(MITIGATIONS)}"
            )
    return mitigations


def _cmd_scan(args) -> int:
    say = (lambda line: print(f"  .. {line}", file=sys.stderr)) if args.progress \
        else (lambda line: None)
    tasks = _scan_tasks(
        args.targets,
        corpus_dir=None if args.no_corpus else args.corpus_dir,
        budget=max(0, args.budget),
        seed=args.seed,
        mitigations=_mitigation_list(args.mitigation),
    )
    records, report = run_scan_batch(
        tasks, jobs=max(1, args.jobs), timeout=args.timeout,
        retries=max(0, args.retries), progress=say,
    )
    if args.out:
        path = atomic_write_text(
            args.out, "".join(canonical(record) + "\n" for record in records)
        )
        print(f"scan findings written to {path}")
    flagged = sum(1 for record in records if not record["clean"])
    gadgets = sum(len(record["gadgets"]) for record in records)
    print(
        f"scanned {len(records)} (program, mitigation) case(s): "
        f"{flagged} flagged, {gadgets} gadget(s) total"
    )
    if args.verbose:
        for record in records:
            if not record["clean"]:
                print(f"  {record['name']} [{record['mitigation']}]: "
                      f"{record['kinds']}")
    for failure in report.failures:
        print(
            f"  FAILED task {failure.task}: {failure.kind} after "
            f"{failure.attempts} attempt(s) — {failure.message}"
        )
    return exitcodes.EXIT_FAILURES if report.failures else exitcodes.EXIT_OK


def _cmd_advise(args) -> int:
    status = exitcodes.EXIT_OK
    for target in args.targets:
        generator, seed, blocks = parse_target(target)
        instructions = build_program(generator, seed, blocks)
        plan = advise(instructions, name=target)
        print(render_plan(plan))
        if args.verbose:
            print(render_scan(plan.before, verbose=True))
        if not plan.bypass_clean:
            status = exitcodes.EXIT_FAILURES
    return status


def _cmd_crossval(args) -> int:
    say = (lambda line: print(f"  .. {line}", file=sys.stderr)) if args.progress \
        else (lambda line: None)
    report = crossval_mod.run_crossval(
        corpus_dir=None if args.no_corpus else args.corpus_dir,
        findings=args.findings,
        budget=max(0, args.budget),
        seed=args.seed,
        mitigations=_mitigation_list(args.mitigation),
        model_name=args.cpu_model,
        jobs=max(1, args.jobs),
        timeout=args.timeout,
        retries=max(0, args.retries),
        progress=say,
    )
    if args.out:
        path = atomic_write_text(args.out, canonical(report.to_dict()) + "\n")
        print(f"agreement report written to {path}")
    print(render_crossval(report))
    for failure in report.failures:
        print(
            f"  FAILED case {failure.task}: {failure.kind} after "
            f"{failure.attempts} attempt(s) — {failure.message}"
        )
    return exitcodes.EXIT_OK if report.sound else exitcodes.EXIT_FAILURES


def main(argv: list[str] | None = None) -> int:
    parser = build_parser(
        "repro-scan",
        "Static speculative-leakage scanner: taint-based gadget detection "
        "over the micro-ISA, cross-validated against the dynamic two-fill "
        "oracle.",
        epilog=_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, targets_help: str, nargs: str) -> None:
        p.add_argument("targets", nargs=nargs, help=targets_help)
        p.add_argument("--verbose", "-v", action="store_true",
                       help="print per-gadget spans and preconditions")

    scan = sub.add_parser("scan", help="scan programs for leakage gadgets")
    common(scan, "case:<generator>:<seed>:<blocks> targets "
                 "(default: the corpus replay set)", "*")
    scan.add_argument("--mitigation", default=",".join(MITIGATIONS), metavar="LIST",
                      help=f"comma-separated configs to scan under "
                           f"(default {','.join(MITIGATIONS)})")
    scan.add_argument("--budget", type=int, default=0, metavar="N",
                      help="additionally scan N generated cases "
                           "(fuzz-v1 + oracle-v1 each, default 0)")
    scan.add_argument("--seed", type=int, default=0,
                      help="master seed for --budget derivation (default 0)")
    scan.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                      help="worker processes (default 1; output is identical)")
    scan.add_argument("--out", default="scan-findings.jsonl", metavar="FILE",
                      help="findings JSONL path (default scan-findings.jsonl; "
                           "'' disables)")
    scan.add_argument("--corpus-dir", default=DEFAULT_CORPUS_DIR, metavar="DIR",
                      help=f"corpus location (default {DEFAULT_CORPUS_DIR})")
    scan.add_argument("--no-corpus", action="store_true",
                      help="skip on-disk corpus entries "
                           "(built-in regressions still scan)")
    scan.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                      help="per-task deadline; hung workers are retried")
    scan.add_argument("--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
                      help=f"retry budget per task (default {DEFAULT_RETRIES})")
    scan.add_argument("--progress", action="store_true",
                      help="stream per-task progress to stderr")
    scan.set_defaults(func=_cmd_scan)

    adv = sub.add_parser("advise", help="minimal fence placement per target")
    common(adv, "case:<generator>:<seed>:<blocks> targets", "+")
    adv.set_defaults(func=_cmd_advise)

    cross = sub.add_parser(
        "crossval", help="agreement matrix: scanner vs dynamic oracle"
    )
    cross.add_argument("--mitigation", default=",".join(MITIGATIONS), metavar="LIST",
                       help=f"comma-separated configs "
                            f"(default {','.join(MITIGATIONS)})")
    cross.add_argument("--budget", type=int, default=0, metavar="N",
                       help="generated cases on top of the corpus (default 0)")
    cross.add_argument("--seed", type=int, default=0,
                       help="master seed for --budget derivation (default 0)")
    cross.add_argument("--findings", action="append", default=[], metavar="FILE",
                       help="replay shrunk reproducers from this findings "
                            "JSONL (repeatable)")
    cross.add_argument("--cpu-model", default=None, choices=sorted(ZEN3_MODELS),
                       metavar="NAME", help="TABLE III platform "
                                            "(default: ryzen9-5900x)")
    cross.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                       help="worker processes (default 1; output is identical)")
    cross.add_argument("--out", default="", metavar="FILE",
                       help="also write the full agreement report as JSON")
    cross.add_argument("--corpus-dir", default=DEFAULT_CORPUS_DIR, metavar="DIR",
                       help=f"corpus location (default {DEFAULT_CORPUS_DIR})")
    cross.add_argument("--no-corpus", action="store_true",
                       help="skip on-disk corpus entries")
    cross.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-case deadline; hung workers are retried")
    cross.add_argument("--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
                       help=f"retry budget per case (default {DEFAULT_RETRIES})")
    cross.add_argument("--progress", action="store_true",
                       help="stream per-case progress to stderr")
    cross.set_defaults(func=_cmd_crossval)

    args = parser.parse_args(argv)
    apply_engine(args)
    try:
        return args.func(args)
    except (ConfigError, ArtifactError) as exc:
        print(f"repro-scan: {exc}", file=sys.stderr)
        return exitcodes.EXIT_USAGE
    except ReproError as exc:
        print(f"repro-scan: {exc}", file=sys.stderr)
        return exitcodes.EXIT_FAILURES


if __name__ == "__main__":
    sys.exit(main())
