"""Fence advisor: minimal ``Mfence`` placement that kills bypass gadgets.

The blanket ``fence`` mitigation (:func:`repro.mitigations.fences
.fence_after_stores`) serializes *every* store — correct but maximally
expensive.  The scanner knows better: it knows exactly which store→load
bypass edges feed gadgets, so it can compute a minimal set of fence
positions that severs all of them and leave every harmless store
unfenced.

The placement problem is interval point-cover: an edge ``(store,
load)`` is severed by a fence at any position ``p`` with ``store <= p <
load``, so each gadget-feeding load ``L`` needs one fence in
``[last_feeding_store(L), L)``.  The classic greedy — walk loads in
program order, place a fence immediately before a load only when no
already-placed fence covers it — is optimal for interval stabbing, so
the plan's fence count is provably minimal for the edge set the scanner
wants dead.

``advise`` does not stop at proposing: it applies the plan with
:func:`repro.mitigations.fences.fence_after` and **re-scans the patched
program**, so a plan carries proof that the bypass-fed gadgets are gone
(``bypass_clean``) plus the residual findings fences cannot fix —
architectural dependences and branch-condition transmitters, which need
program rewrites, not barriers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import DecodedProgram, Instruction, Program
from repro.mitigations.fences import fence_after
from repro.static.gadgets import ScanReport, StaticGadget, scan_program
from repro.telemetry.metrics import registry

__all__ = ["FencePlan", "advise"]


@dataclass
class FencePlan:
    """A minimal fence placement plus before/after proof scans."""

    name: str
    #: instruction indices (into the *original* program) to fence after.
    positions: tuple[int, ...]
    before: ScanReport
    after: ScanReport
    patched: list[Instruction]

    @property
    def bypass_clean(self) -> bool:
        """The patched program has no bypass-fed (spec-channel) gadget."""
        return not any(g.channel == "spec" for g in self.after.gadgets)

    @property
    def residual(self) -> list[StaticGadget]:
        """Gadgets fences cannot kill (architectural / branch-fed)."""
        return list(self.after.gadgets)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "positions": list(self.positions),
            "fences": len(self.positions),
            "bypass_clean": self.bypass_clean,
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
        }


def _instructions_of(
    program: Program | DecodedProgram | list[Instruction],
) -> list[Instruction]:
    if isinstance(program, Program):
        return list(program.instructions)
    if isinstance(program, DecodedProgram):
        return list(program.insts)
    return list(program)


def _guilty_loads(report: ScanReport) -> dict[int, int]:
    """Loads whose bypass edges must die -> last feeding store index.

    A load is guilty when it appears as a ``stale-bypass`` source in any
    gadget's source span (its transient stale read taints a transmitter)
    or anchors a ``stale-value-probe`` directly.
    """
    stale = {
        index for index, kind in report.sources.items() if kind == "stale-bypass"
    }
    guilty: set[int] = set()
    for gadget in report.gadgets:
        if gadget.kind == "stale-value-probe":
            guilty.add(gadget.node)
        guilty.update(index for index in gadget.sources if index in stale)
    last_store: dict[int, int] = {}
    for edge in report.edges:
        if edge.load in guilty:
            last_store[edge.load] = max(last_store.get(edge.load, -1), edge.store)
    return last_store


def advise(
    program: Program | DecodedProgram | list[Instruction],
    *,
    tracked: tuple[str, ...] | list[str] | None = None,
    name: str | None = None,
) -> FencePlan:
    """Compute, apply and verify a minimal fence plan for one program."""
    instructions = _instructions_of(program)
    before = scan_program(instructions, mitigation="none", tracked=tracked, name=name)

    # Greedy interval point-cover, optimal because intervals are visited
    # by right endpoint: each guilty load L needs a fence in
    # [last_feeding_store(L), L); placing it at L-1 covers as many later
    # intervals as any choice can.
    positions: list[int] = []
    for load, last_store in sorted(_guilty_loads(before).items()):
        if positions and positions[-1] >= last_store:
            continue  # the previous fence already severs every edge into L
        positions.append(load - 1)

    patched = fence_after(instructions, positions)
    after = scan_program(
        patched, mitigation="none", tracked=tracked,
        name=f"{before.name}+fences",
    )
    registry().counter("scan.advised_fences").inc(len(positions))
    return FencePlan(
        name=before.name,
        positions=tuple(positions),
        before=before,
        after=after,
        patched=patched,
    )
