"""Lifting the micro-ISA into a small dataflow IR.

The scanner does not interpret :class:`~repro.cpu.isa.Instruction`
objects directly; it lifts a program once into a list of
:class:`IRNode` facts — what each instruction *defines*, *uses* and
*touches* — and every later pass (window enumeration, taint
propagation, gadget classification) works over those nodes by index.
The lift accepts the same inputs the rest of the repo passes around: a
plain instruction list, a :class:`~repro.cpu.isa.Program`, or a
:class:`~repro.cpu.isa.DecodedProgram` via its ``insts``.

The IR is purely syntactic — no execution, no machine — which is what
makes a scan thousands of times cheaper than a pipeline run.  Branch
targets are resolved through the program's labels; a ``Jz`` naming an
unknown label keeps ``target=None`` and the window pass treats its
transient span as reaching the end of the program (the conservative
choice, mirroring the interpreter's lazy label lookup).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    DecodedProgram,
    Imul,
    ImulImm,
    Instruction,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Program,
    Rdpru,
    Store,
)

__all__ = ["KINDS", "IRNode", "IRProgram", "lift"]

#: Node kinds, in no particular order.  ``alu`` covers every pure
#: register computation (Mov/MovImm/Alu/AluImm/Imul/ImulImm); ``timer``
#: is ``Rdpru`` (reads the clock, never the secret); ``nop`` covers
#: ``Label``/``Pad``/unknown instructions.
KINDS = ("alu", "load", "store", "flush", "fence", "branch", "timer", "halt", "nop")


@dataclass(frozen=True)
class IRNode:
    """Dataflow facts for one instruction."""

    index: int
    op: str                       # instruction class name
    kind: str                     # one of KINDS
    defs: tuple[str, ...]         # registers written
    uses: tuple[str, ...]         # registers read
    base: str | None = None      # address base register (load/store/flush)
    offset: int = 0              # constant address offset
    width: int = 0               # access width in bytes
    target: int | None = None    # branch target node index (Jz, resolved)
    source: str = ""             # the instruction's dataclass repr
    alu_op: str = ""             # ALU operator string (Alu/AluImm)
    imm: int | None = None       # immediate operand (MovImm/AluImm/ImulImm)

    def __str__(self) -> str:
        return f"[{self.index:3d}] {self.source}"


class IRProgram:
    """A lifted program: the node list plus derived lookup tables."""

    def __init__(self, nodes: list[IRNode]) -> None:
        self.nodes = nodes
        self.loads = tuple(n.index for n in nodes if n.kind == "load")
        self.stores = tuple(n.index for n in nodes if n.kind == "store")
        self.branches = tuple(n.index for n in nodes if n.kind == "branch")
        self.fences = tuple(n.index for n in nodes if n.kind == "fence")

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index: int) -> IRNode:
        return self.nodes[index]

    def reprs(self, indices: tuple[int, ...] | list[int]) -> tuple[str, ...]:
        """Instruction reprs for a set of node indices (finding spans)."""
        return tuple(self.nodes[i].source for i in sorted(indices))


def _lift_one(index: int, instruction: Instruction, labels: dict[str, int]) -> IRNode:
    cls = type(instruction)
    text = repr(instruction)
    if cls is MovImm:
        return IRNode(index, "MovImm", "alu", (instruction.dst,), (),
                      source=text, imm=instruction.value)
    if cls is Mov:
        return IRNode(index, "Mov", "alu", (instruction.dst,), (instruction.src,),
                      source=text)
    if cls is Alu:
        return IRNode(index, "Alu", "alu", (instruction.dst,),
                      (instruction.a, instruction.b), source=text,
                      alu_op=instruction.op)
    if cls is AluImm:
        return IRNode(index, "AluImm", "alu", (instruction.dst,),
                      (instruction.src,), source=text,
                      alu_op=instruction.op, imm=instruction.imm)
    if cls is Imul:
        return IRNode(index, "Imul", "alu", (instruction.dst,),
                      (instruction.a, instruction.b), source=text)
    if cls is ImulImm:
        return IRNode(index, "ImulImm", "alu", (instruction.dst,),
                      (instruction.src,), source=text, imm=instruction.imm)
    if cls is Load:
        return IRNode(index, "Load", "load", (instruction.dst,),
                      (instruction.base,), base=instruction.base,
                      offset=instruction.offset, width=instruction.width,
                      source=text)
    if cls is Store:
        return IRNode(index, "Store", "store", (),
                      (instruction.base, instruction.src), base=instruction.base,
                      offset=instruction.offset, width=instruction.width,
                      source=text)
    if cls is Clflush:
        return IRNode(index, "Clflush", "flush", (), (instruction.base,),
                      base=instruction.base, offset=instruction.offset,
                      source=text)
    if cls is Mfence:
        return IRNode(index, "Mfence", "fence", (), (), source=text)
    if cls is Rdpru:
        return IRNode(index, "Rdpru", "timer", (instruction.dst,), (), source=text)
    if cls is Jz:
        return IRNode(index, "Jz", "branch", (), (instruction.cond,),
                      target=labels.get(instruction.label), source=text)
    if cls.__name__ == "Halt":
        return IRNode(index, "Halt", "halt", (), (), source=text)
    # Label, Pad, bare Instruction, anything unknown: no dataflow.
    return IRNode(index, cls.__name__, "nop", (), (), source=text)


def lift(program: Program | DecodedProgram | list[Instruction]) -> IRProgram:
    """Lift a program (in any of its repo-wide forms) into an IR."""
    if isinstance(program, Program):
        instructions = list(program.instructions)
    elif isinstance(program, DecodedProgram):
        instructions = list(program.insts)
    else:
        instructions = list(program)
    labels = {
        instruction.name: index
        for index, instruction in enumerate(instructions)
        if isinstance(instruction, Label)
    }
    return IRProgram(
        [_lift_one(i, ins, labels) for i, ins in enumerate(instructions)]
    )
