"""Gadget classification: turning taint facts into findings.

A *gadget* is an instruction (plus the secret sources feeding it) whose
execution makes one of the two-fill oracle's observation channels
secret-dependent.  The kinds map one-to-one onto those channels:

``transmit-load`` / ``transmit-store`` / ``transmit-flush``
    A memory operation whose **address** carries taint.  Addresses
    select cache lines, so a tainted address is the classic cache
    transmitter (``cached_lines`` / PMC / cycle differences) — this is
    the Spectre disclosure-gadget shape, and it fires whether the taint
    is architectural or only reachable transiently.

``transmit-branch``
    A ``Jz`` whose condition carries taint: the executed (or
    transiently executed) path shape becomes secret-dependent, which
    shows up in rollback counts, cycles and execution-type traces.

``stale-value-probe``
    A store→load bypass edge whose endpoints may alias.  Even with a
    clean address, the bypassing load transiently reads stale (secret)
    memory and the pipeline *validates* that value when the store
    resolves — whether it squashes depends on whether the secret equals
    the stored value, so rollback/cycle counts become secret-dependent.

``architectural-secret-value``
    A tracked result register still architecturally tainted at program
    end.  This is the scanner's image of the oracle's
    ``architectural-secret-dependence`` invariant violation.

Every gadget carries its source span (instruction indices + reprs), the
predictor preconditions required to realize it (TABLE I phrasing, from
:mod:`repro.static.windows`) and the mitigations that kill it.
Soundness note: the mapping is over-approximate by construction — each
kind is derived from taint facts that are themselves conservative — and
the cross-validation layer (:mod:`repro.static.crossval`) tests the
resulting invariant against the dynamic oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import DecodedProgram, Instruction, Program
from repro.fuzz.gen import BUF_BYTES, REGS
from repro.static.ir import IRProgram, lift
from repro.static.taint import TaintResult, analyze_taint
from repro.static.windows import (
    BranchWindow,
    BypassEdge,
    branch_windows,
    bypass_edges,
    bypass_preconditions,
    psf_preconditions,
)
from repro.telemetry.metrics import registry

__all__ = ["GADGET_KINDS", "StaticGadget", "ScanReport", "scan_program"]

GADGET_KINDS = (
    "transmit-load",
    "transmit-store",
    "transmit-flush",
    "transmit-branch",
    "stale-value-probe",
    "architectural-secret-value",
)

#: Precondition line attached to gadgets that need a transient wrong path.
_BRANCH_PRECONDITION = (
    "branch-mispredict: the flagged span executes transiently on the "
    "wrong path of an unresolved Jz"
)


@dataclass(frozen=True)
class StaticGadget:
    """One finding: a transmitting instruction plus its secret sources."""

    kind: str                      # one of GADGET_KINDS
    node: int                      # index of the transmitting instruction
    channel: str                   # "arch" | "spec"
    sources: tuple[int, ...]       # secret-source node indices (sorted)
    span: tuple[str, ...]          # reprs of sources + transmitter, in order
    preconditions: tuple[str, ...]
    killed_by: tuple[str, ...]     # mitigations that remove this gadget
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "node": self.node,
            "channel": self.channel,
            "sources": list(self.sources),
            "span": list(self.span),
            "preconditions": list(self.preconditions),
            "killed_by": list(self.killed_by),
            "detail": self.detail,
        }


@dataclass
class ScanReport:
    """Everything one static scan of one program produced."""

    name: str
    mitigation: str
    instructions: int
    gadgets: list[StaticGadget]
    edges: list[BypassEdge]
    windows: list[BranchWindow]
    sources: dict[int, str]        # node index -> secret-source kind

    @property
    def clean(self) -> bool:
        """No gadget of any kind — the program cannot leak (soundness)."""
        return not self.gadgets

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gadget in self.gadgets:
            counts[gadget.kind] = counts.get(gadget.kind, 0) + 1
        return {kind: counts[kind] for kind in sorted(counts)}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "mitigation": self.mitigation,
            "instructions": self.instructions,
            "clean": self.clean,
            "kinds": self.kinds(),
            "gadgets": [gadget.to_dict() for gadget in self.gadgets],
            "edges": [edge.to_dict() for edge in self.edges],
            "windows": [window.to_dict() for window in self.windows],
            "sources": {
                str(index): kind for index, kind in sorted(self.sources.items())
            },
        }


def _gadget_order(gadget: StaticGadget) -> tuple:
    return (gadget.node, GADGET_KINDS.index(gadget.kind), gadget.sources)


def _preconditions_for(
    taint: TaintResult,
    sources: frozenset[int],
    node: int,
    maybe: list[bool],
) -> tuple[str, ...]:
    lines: list[str] = []
    if any(taint.sources.get(index) == "stale-bypass" for index in sources):
        lines.extend(bypass_preconditions() + psf_preconditions())
    if maybe[node] or any(index < len(maybe) and maybe[index] for index in sources):
        lines.append(_BRANCH_PRECONDITION)
    return tuple(lines)


def _killed_by(taint: TaintResult, channel: str, sources: frozenset[int]) -> tuple[str, ...]:
    if channel == "spec" and all(
        taint.sources.get(index) == "stale-bypass" for index in sources
    ):
        # Purely bypass-fed: both the chicken bit and the fence transform
        # remove every edge, so the taint never arises.
        return ("ssbd", "fence")
    return ()


def _may_alias(ir: IRProgram, taint: TaintResult, store: int, load: int) -> bool:
    """Whether a store/load pair may touch overlapping buffer bytes.

    Known, disjoint ``buf+const`` ranges provably cannot interact; any
    unknown or tainted address may alias (conservative).
    """
    ranges = []
    for index in (store, load):
        node = ir[index]
        value = taint.values.get(index)
        if value is None or value[0] != "buf":
            return True
        lo = value[1] + node.offset
        hi = lo + max(1, node.width)
        if lo < 0 or hi > BUF_BYTES:
            return True
        ranges.append((lo, hi))
    (store_lo, store_hi), (load_lo, load_hi) = ranges
    return store_lo < load_hi and load_lo < store_hi


def scan_program(
    program: Program | DecodedProgram | list[Instruction],
    *,
    mitigation: str = "none",
    tracked: tuple[str, ...] | list[str] | None = None,
    name: str | None = None,
) -> ScanReport:
    """Statically scan one program for speculative-leakage gadgets.

    Pure and deterministic: the report is a function of the instruction
    list, the mitigation and the tracked-register set alone (default:
    the fuzz result registers ``r0..r3``).
    """
    if name is None:
        name = program.name if isinstance(program, (Program, DecodedProgram)) else "program"
    tracked_regs = tuple(tracked) if tracked is not None else tuple(REGS)

    ir = lift(program)
    edges = bypass_edges(ir, mitigation)
    windows = branch_windows(ir)
    taint = analyze_taint(ir, edges, windows)
    maybe = [False] * len(ir)
    for window in windows:
        for index in range(window.start, min(window.end, len(ir))):
            maybe[index] = True

    gadgets: list[StaticGadget] = []

    def add(kind: str, node: int, arch: frozenset[int], spec: frozenset[int],
            detail: str = "") -> None:
        channel = "arch" if arch else "spec"
        sources = arch or spec
        if not sources:
            return
        span_nodes = sorted(set(sources) | {node} if node >= 0 else set(sources))
        gadgets.append(
            StaticGadget(
                kind=kind,
                node=node,
                channel=channel,
                sources=tuple(sorted(sources)),
                span=ir.reprs(span_nodes),
                preconditions=_preconditions_for(
                    taint, sources, max(node, 0), maybe
                ),
                killed_by=_killed_by(taint, channel, sources),
                detail=detail,
            )
        )

    transmit_kind = {"load": "transmit-load", "store": "transmit-store",
                     "flush": "transmit-flush"}
    for index, (arch, spec) in sorted(taint.address.items()):
        kind = transmit_kind[ir[index].kind]
        add(kind, index, arch, spec, detail=f"tainted address in {ir[index].op}")
    for index, (arch, spec) in sorted(taint.condition.items()):
        add("transmit-branch", index, arch, spec,
            detail="secret-dependent branch condition")
    for edge in edges:
        if _may_alias(ir, taint, edge.store, edge.load):
            add(
                "stale-value-probe",
                edge.load,
                frozenset(),
                frozenset({edge.load}),
                detail=(
                    f"bypass of store@{edge.store} makes squash-on-"
                    "mismatch depend on stale (secret) data"
                ),
            )
    halt = len(ir) - 1
    for reg in tracked_regs:
        value = taint.regs.get(reg)
        if value is not None and value.arch:
            add(
                "architectural-secret-value",
                halt,
                value.arch,
                value.spec,
                detail=f"tracked register {reg} holds secret-derived data at halt",
            )

    gadgets.sort(key=_gadget_order)
    metrics = registry()
    metrics.counter("scan.programs").inc()
    metrics.counter("scan.gadgets").inc(len(gadgets))
    metrics.counter("scan.edges").inc(len(edges))
    metrics.counter("scan.windows").inc(len(windows))
    if not gadgets:
        metrics.counter("scan.clean").inc()
    return ScanReport(
        name=name,
        mitigation=mitigation,
        instructions=len(ir),
        gadgets=gadgets,
        edges=edges,
        windows=windows,
        sources=dict(taint.sources),
    )
