"""Speculative-window enumeration over the IR.

Two window families, matching the two transient mechanisms the dynamic
stack models:

* **store-bypass edges** — for every load, every older store whose
  address may still be unresolved when the load dispatches and with no
  serializing ``Mfence`` in between.  Each edge carries the predictor
  preconditions required to realize it, phrased in terms of the TABLE I
  counter state machine (:mod:`repro.core.state_machine`): a *bypass*
  (the load reads stale memory around the store) needs the SSBP to
  predict non-aliasing, a *PSF forward* (the load receives the store's
  data before the store's address exists) needs the PSFP armed.
* **branch transient windows** — for every ``Jz``, the forward span the
  pipeline can execute on the wrong path before the branch resolves.

Statically every older unfenced store counts as "may be unresolved":
the pipeline delays address generation behind arbitrary ``Imul`` chains
and cache misses, so no syntactic test can bound resolution time from
below.  Over-approximating here is what keeps the scanner sound with
respect to the dynamic two-fill oracle (see :mod:`repro.static.crossval`).

Mitigations kill edges the same way they do dynamically: under ``ssbd``
loads wait for every older store address (no bypass, no PSF — the
machine-level chicken bit), and under ``fence`` the
:func:`repro.mitigations.fences.fence_after_stores` transform has
already placed an ``Mfence`` after every store, which the fence scan
below observes directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.counters import CounterState
from repro.core.state_machine import (
    PSF_C1_THRESHOLD,
    StateName,
    classify_state,
    predict,
)
from repro.static.ir import IRProgram

__all__ = [
    "BypassEdge",
    "BranchWindow",
    "bypass_edges",
    "branch_windows",
    "bypass_preconditions",
    "psf_preconditions",
]


def _nonalias_example() -> CounterState:
    """A counter state whose prediction realizes a bypass (sanity-checked)."""
    state = CounterState(c0=0, c1=0, c2=1, c3=0, c4=0)  # Load-From-Cache
    assert not predict(state).aliasing
    return state


def _psf_example() -> CounterState:
    """A counter state whose prediction realizes a PSF forward."""
    state = CounterState(c0=4, c1=8, c2=2, c3=0, c4=0)  # S1, PSF enabled
    assert predict(state).psf_forward
    return state


@lru_cache(maxsize=None)
def bypass_preconditions() -> tuple[str, ...]:
    """TABLE I preconditions for a store-bypass (stale-load) edge."""
    name = classify_state(_nonalias_example())
    return (
        "ssbp-predicts-nonalias: C0=0 and C3=0 "
        f"(e.g. TABLE I state '{name.value}'); reachable by training the "
        "entry with non-aliasing pairs or via a cold/evicted entry",
    )


@lru_cache(maxsize=None)
def psf_preconditions() -> tuple[str, ...]:
    """TABLE I preconditions for a predictive-store-forward edge."""
    name = classify_state(_psf_example())
    return (
        f"psfp-armed: C0>0, C1<={PSF_C1_THRESHOLD}, C2>0 "
        f"(TABLE I states '{StateName.S1_PSF_ENABLED.value}' or "
        f"'{StateName.S2_PSF_ENABLED.value}'; e.g. '{name.value}'); "
        "reached after a G event trains the entry",
    )


@dataclass(frozen=True)
class BypassEdge:
    """One potential store→load transient interaction."""

    store: int                     # node index of the older store
    load: int                      # node index of the younger load
    kinds: tuple[str, ...]         # ("stl-bypass", "psf-forward")
    preconditions: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "store": self.store,
            "load": self.load,
            "kinds": list(self.kinds),
            "preconditions": list(self.preconditions),
        }


@dataclass(frozen=True)
class BranchWindow:
    """The transient span a mispredicted ``Jz`` can execute."""

    branch: int                    # node index of the Jz
    start: int                     # first transient node (branch + 1)
    end: int                       # exclusive end (resolved target or len)

    def contains(self, index: int) -> bool:
        return self.start <= index < self.end

    def to_dict(self) -> dict:
        return {"branch": self.branch, "start": self.start, "end": self.end}


def bypass_edges(ir: IRProgram, mitigation: str = "none") -> list[BypassEdge]:
    """Every (older store, younger load) pair not separated by a fence.

    Under ``ssbd`` and ``fence`` the result is empty by construction:
    SSBD pins every load behind all older store addresses at the machine
    level, and the fence mitigation's program transform serializes each
    store before any younger load can dispatch.  (A *manually* fenced
    program under ``none`` is handled by the fence scan itself.)
    """
    if mitigation in ("ssbd", "fence"):
        return []
    # fence_before[i] = index of the nearest Mfence at or before node i
    # (-1 if none) — lets the store/load pairing run in O(pairs).
    fence_before: list[int] = []
    last = -1
    for node in ir.nodes:
        if node.kind == "fence":
            last = node.index
        fence_before.append(last)
    stl = bypass_preconditions()
    psf = psf_preconditions()
    edges: list[BypassEdge] = []
    for load in ir.loads:
        barrier = fence_before[load]
        for store in ir.stores:
            if store >= load:
                break
            if store > barrier:
                edges.append(
                    BypassEdge(
                        store=store,
                        load=load,
                        kinds=("stl-bypass", "psf-forward"),
                        preconditions=stl + psf,
                    )
                )
    return edges


def branch_windows(ir: IRProgram) -> list[BranchWindow]:
    """The transient span of every branch.

    ``Jz`` only jumps forward in this ISA, so the wrong path of a
    predicted-not-taken branch is exactly ``(branch, target)``; an
    unresolved label (lazy lookup failure at runtime) conservatively
    opens the window to the end of the program.
    """
    windows = []
    for branch in ir.branches:
        target = ir[branch].target
        end = len(ir) if target is None else target
        if end > branch + 1:
            windows.append(BranchWindow(branch=branch, start=branch + 1, end=end))
    return windows
