"""Scan artifacts: canonical JSONL serialization and text rendering.

Scan findings follow the same artifact discipline as fuzz findings
(:mod:`repro.fuzz.findings`): schema-versioned JSON objects, one per
line, serialized canonically (sorted keys, fixed separators) and written
atomically — so a scan over N programs is byte-identical however many
worker processes produced it, which is exactly what ``make scan-smoke``
diffs.  The renderers here are presentation only; nothing downstream
parses their output.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.runtime.atomic import atomic_write_text
from repro.static.gadgets import ScanReport

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.static.advisor import FencePlan
    from repro.static.crossval import CrossValReport

__all__ = [
    "SCAN_SCHEMA",
    "canonical",
    "scan_line",
    "write_scan_jsonl",
    "render_scan",
    "render_plan",
    "render_crossval",
]

SCAN_SCHEMA = 1


def canonical(data: dict) -> str:
    """The one canonical JSON serialization used by every scan artifact."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def scan_line(report: ScanReport, **extra) -> str:
    """One findings-JSONL line for one scanned program (no newline)."""
    data = {"schema": SCAN_SCHEMA, **report.to_dict(), **extra}
    return canonical(data)


def write_scan_jsonl(
    path: str | Path, reports: Iterable[ScanReport | str]
) -> Path:
    """Write scan reports (or pre-rendered lines) atomically as JSONL."""
    lines = [
        line if isinstance(line, str) else scan_line(line) for line in reports
    ]
    return atomic_write_text(path, "".join(line + "\n" for line in lines))


def render_scan(report: ScanReport, *, verbose: bool = False) -> str:
    """Human-readable summary of one scan."""
    lines = [
        f"scan of {report.name} ({report.instructions} instructions, "
        f"mitigation={report.mitigation}): "
        + ("CLEAN" if report.clean else f"{len(report.gadgets)} gadget(s)")
    ]
    if report.edges or report.windows:
        lines.append(
            f"  speculative surface: {len(report.edges)} bypass edge(s), "
            f"{len(report.windows)} branch window(s), "
            f"{len(report.sources)} secret source(s)"
        )
    for kind, count in report.kinds().items():
        lines.append(f"  {kind}: {count}")
    if verbose:
        for gadget in report.gadgets:
            lines.append(
                f"  [{gadget.node:3d}] {gadget.kind} ({gadget.channel}) "
                f"sources={list(gadget.sources)}"
                + (f" — {gadget.detail}" if gadget.detail else "")
            )
            for text in gadget.span:
                lines.append(f"        | {text}")
            for precondition in gadget.preconditions:
                lines.append(f"        needs: {precondition}")
            if gadget.killed_by:
                lines.append(f"        killed by: {', '.join(gadget.killed_by)}")
    return "\n".join(lines)


def render_plan(plan: "FencePlan") -> str:
    """Human-readable summary of a fence-advisor plan."""
    lines = [
        f"fence plan for {plan.name}: {len(plan.positions)} fence(s) "
        f"at positions {list(plan.positions)}",
        f"  before: {len(plan.before.gadgets)} gadget(s); "
        f"after: {len(plan.after.gadgets)} gadget(s)",
        "  bypass gadgets: "
        + ("eliminated (re-scan proves no spec-channel gadget remains)"
           if plan.bypass_clean else "NOT eliminated"),
    ]
    for gadget in plan.residual:
        lines.append(
            f"  residual [{gadget.node:3d}] {gadget.kind} ({gadget.channel})"
            " — fences cannot remove this; rewrite the program"
        )
    return "\n".join(lines)


def render_crossval(report: "CrossValReport") -> str:
    """Human-readable agreement matrix and verdict."""
    matrix = report.matrix()
    lines = [
        f"cross-validation over {len(report.rows)} case(s) "
        f"({report.described_sources()}):",
        "                      dynamic+   dynamic-",
        f"  static+   {matrix['both-positive']:10d} {matrix['static-only']:10d}",
        f"  static-   {matrix['dynamic-only']:10d} {matrix['both-negative']:10d}",
    ]
    if report.sound:
        lines.append(
            "  SOUND: every dynamically observed leak is statically flagged"
        )
    else:
        lines.append(
            f"  SOUNDNESS VIOLATIONS: {len(report.violations)} dynamic "
            "finding(s) the scanner missed"
        )
        for row in report.violations:
            lines.append(
                f"    case {row['case']}: {row['generator']} "
                f"seed={row['seed']} blocks={row['blocks']} "
                f"mitigation={row['mitigation']} -> {row['dynamic_kind']}"
            )
    return "\n".join(lines)
