"""Static-vs-dynamic cross-validation: the scanner's soundness proof.

The scanner's whole value rests on one claim: *a program it proves
gadget-free cannot leak under the dynamic two-fill oracle*.  This module
turns that claim into a tested, reproducible property.  It replays a
case set — the persistent fuzz corpus (built-in regression entries plus
any on-disk campaign additions), the shrunk reproducers from findings
files, and optionally a deterministic batch of freshly generated
programs — through **both** detectors per mitigation:

* static: :func:`repro.static.gadgets.scan_program` (no execution);
* dynamic: :func:`repro.fuzz.oracle.leak_check_instructions` (two full
  pipeline runs with different secret fills).

Each case lands in one cell of the 2×2 agreement matrix:

===================  ==========================================
``both-positive``    scanner flagged it, oracle observed a leak
``static-only``      flagged but no dynamic leak — the *precision
                     gap*, expected for an over-approximate scanner
                     (the predictor preconditions simply did not
                     fire this run)
``dynamic-only``     **soundness violation** — a dynamic leak the
                     scanner missed; always a bug, fails the run
``both-negative``    clean by both
===================  ==========================================

Determinism: cases are a pure function of the inputs, workers are pure
functions of their case dict, and rows are assembled in case order —
so the matrix and the report JSON are byte-identical across reruns and
``--jobs`` settings, the property ``make scan-smoke`` and the
``scan-crossval`` experiment both gate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.cpu.isa import instructions_from_reprs
from repro.errors import ArtifactError
from repro.fuzz import corpus as corpus_mod
from repro.fuzz.corpus import Corpus
from repro.fuzz.cli import derive_case
from repro.fuzz.findings import read_findings
from repro.fuzz.gen import build_program
from repro.fuzz.harness import MITIGATIONS
from repro.fuzz.oracle import leak_check_instructions
from repro.runtime.supervisor import DEFAULT_RETRIES, TaskFailure, run_supervised
from repro.static.gadgets import scan_program
from repro.telemetry.metrics import registry

__all__ = [
    "AGREEMENT_CELLS",
    "CROSSVAL_SCHEMA",
    "CrossValReport",
    "agreement_matrix",
    "build_cases",
    "run_case",
    "run_crossval",
]

CROSSVAL_SCHEMA = 1

#: The four agreement-matrix cells, in presentation order.
AGREEMENT_CELLS = ("both-positive", "static-only", "dynamic-only", "both-negative")

#: Default mitigation sweep: every configuration the harness knows.
DEFAULT_MITIGATIONS = MITIGATIONS


def build_cases(
    *,
    corpus_dir: str | Path | None = None,
    findings: Sequence[str | Path] = (),
    budget: int = 0,
    seed: int = 0,
    mitigations: Sequence[str] = DEFAULT_MITIGATIONS,
    model_name: str | None = None,
) -> list[dict]:
    """The full cross-validation case list, one dict per (program, mitigation).

    Corpus entries come first (built-in regressions, then on-disk cases,
    via :func:`repro.fuzz.corpus.replay_order`), then every shrunk
    reproducer found in ``findings`` files (replayed under the finding's
    own mitigation), then ``budget`` freshly derived generated programs
    (same derivation as the fuzz campaign, so the two tools stress the
    same distribution).
    """
    for mitigation in mitigations:
        if mitigation not in MITIGATIONS:
            raise ArtifactError(
                f"unknown mitigation {mitigation!r}; known: {', '.join(MITIGATIONS)}"
            )
    common = {"cpu_model": model_name or ""}
    cases: list[dict] = []

    def add(source: str, generator: str, case_seed: int, blocks: int,
            label: str, mitigation: str, instructions: list[str] | None) -> None:
        cases.append(
            {
                "case": len(cases),
                "source": source,
                "generator": generator,
                "seed": case_seed,
                "blocks": blocks,
                "label": label,
                "mitigation": mitigation,
                "instructions": instructions,
                **common,
            }
        )

    corp = Corpus(corpus_dir) if corpus_dir is not None else None
    for entry in corpus_mod.replay_order(corp):
        for mitigation in mitigations:
            add("corpus", entry.generator, entry.seed, entry.blocks,
                entry.label, mitigation, None)
    for path in findings:
        for finding in read_findings(path):
            if finding.shrunk is None:
                continue
            add(
                "shrunk", finding.generator, finding.seed, finding.blocks,
                f"shrunk:{finding.label or finding.task}", finding.mitigation,
                list(finding.shrunk["instructions"]),
            )
    for index in range(budget):
        program_seed, blocks = derive_case(seed, index)
        for generator in ("fuzz-v1", "oracle-v1"):
            for mitigation in mitigations:
                add("generated", generator, program_seed, blocks,
                    f"gen-{index}", mitigation, None)
    return cases


def run_case(case: dict) -> dict:
    """Worker: one program through both detectors; the agreement row.

    Pure function of the case dict (fresh machines inside the oracle),
    so it runs identically inline and in a pool process.
    """
    if case["instructions"] is not None:
        instructions = instructions_from_reprs(case["instructions"])
    else:
        instructions = build_program(case["generator"], case["seed"], case["blocks"])
    static = scan_program(
        instructions,
        mitigation=case["mitigation"],
        name=f"{case['generator']}:{case['seed']}",
    )
    dynamic = leak_check_instructions(
        instructions,
        seed=case["seed"],
        model=case["cpu_model"] or None,
        mitigation=case["mitigation"],
        generator=case["generator"],
        blocks=case["blocks"],
    )
    static_positive = not static.clean
    dynamic_positive = dynamic.finding_kind is not None
    if static_positive and dynamic_positive:
        cell = "both-positive"
    elif static_positive:
        cell = "static-only"
    elif dynamic_positive:
        cell = "dynamic-only"
    else:
        cell = "both-negative"
    return {
        "case": case["case"],
        "source": case["source"],
        "generator": case["generator"],
        "seed": case["seed"],
        "blocks": case["blocks"],
        "label": case["label"],
        "mitigation": case["mitigation"],
        "static_positive": static_positive,
        "static_gadgets": len(static.gadgets),
        "static_kinds": static.kinds(),
        "dynamic_positive": dynamic_positive,
        "dynamic_kind": dynamic.finding_kind,
        "cell": cell,
    }


def _validate_row(row: object) -> dict:
    if not isinstance(row, dict) or row.get("cell") not in AGREEMENT_CELLS:
        raise ArtifactError(f"malformed cross-validation row: {row!r}")
    return row


def agreement_matrix(rows: Sequence[dict]) -> dict[str, int]:
    """Cell -> count, every cell present, in :data:`AGREEMENT_CELLS` order."""
    matrix = {cell: 0 for cell in AGREEMENT_CELLS}
    for row in rows:
        matrix[row["cell"]] += 1
    return matrix


@dataclass
class CrossValReport:
    """The full cross-validation outcome, canonically serializable."""

    rows: list[dict]
    failures: list[TaskFailure] = field(default_factory=list)

    def matrix(self) -> dict[str, int]:
        return agreement_matrix(self.rows)

    @property
    def violations(self) -> list[dict]:
        """Dynamic leaks the scanner missed — each one a soundness bug."""
        return [row for row in self.rows if row["cell"] == "dynamic-only"]

    @property
    def sound(self) -> bool:
        return not self.violations and not self.failures

    def described_sources(self) -> str:
        counts: dict[str, int] = {}
        for row in self.rows:
            counts[row["source"]] = counts.get(row["source"], 0) + 1
        return ", ".join(f"{counts[s]} {s}" for s in sorted(counts))

    def to_dict(self) -> dict:
        return {
            "schema": CROSSVAL_SCHEMA,
            "cases": len(self.rows),
            "matrix": self.matrix(),
            "sound": self.sound,
            "violations": self.violations,
            "rows": self.rows,
        }


def run_crossval(
    *,
    corpus_dir: str | Path | None = None,
    findings: Sequence[str | Path] = (),
    budget: int = 0,
    seed: int = 0,
    mitigations: Sequence[str] = DEFAULT_MITIGATIONS,
    model_name: str | None = None,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    progress: Callable[[str], None] | None = None,
) -> CrossValReport:
    """Run the full cross-validation; rows come back in stable case order."""
    say = progress or (lambda line: None)
    cases = build_cases(
        corpus_dir=corpus_dir, findings=findings, budget=budget, seed=seed,
        mitigations=mitigations, model_name=model_name,
    )
    results: dict[int, dict] = {}

    def on_result(case_id: int, row: dict) -> None:
        results[case_id] = row
        say(
            f"case {case_id:3d} {row['generator']:<10s} seed={row['seed']} "
            f"[{row['mitigation']}]: {row['cell']}"
        )

    report = run_supervised(
        [(case["case"], case) for case in cases],
        run_case,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        batch="adaptive",  # homogeneous small cases: batch onto warm workers
        validate=_validate_row,
        on_result=on_result,
        progress=say,
    )
    rows = [results[case_id] for case_id in sorted(results)]
    out = CrossValReport(rows, failures=list(report.failures))
    registry().counter("scan.crossval_cases").inc(len(rows))
    registry().counter("scan.crossval_violations").inc(len(out.violations))
    return out
