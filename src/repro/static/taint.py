"""Secret-taint propagation over the lifted IR.

The threat model is the two-fill oracle's (:mod:`repro.fuzz.oracle`):
the program operates on one anonymous data buffer whose *initial*
contents are the secret.  A register becomes tainted when its value may
derive from those initial bytes, either

* **architecturally** — a load reads buffer bytes the program has not
  definitely overwritten (an *uncovered* load), or reads through a
  pointer the analysis cannot place inside the buffer at all (a
  *foreign* load — e.g. the victim-gadget ``array1``/``array2``
  pointers, whose memory the attacker treats as secret); or
* **speculatively** — a load that an older unresolved store should have
  fed is bypassed (SSBP predicts non-aliasing) or predictively forwarded
  (PSFP), so the load transiently observes *stale* memory: the initial
  fill.  These edges come from :func:`repro.static.windows.bypass_edges`
  and vanish under the ``ssbd``/``fence`` mitigations.

Taint is a pair of source sets per value — ``arch`` (architecturally
reachable secret) and ``spec`` (reachable on some transient path;
always a superset) — so the gadget layer can distinguish a hard
architectural dependence from a Spectre-style transient one.  Sources
are IR node indices, which is what lets findings carry exact
instruction spans.

Soundness over precision, throughout:

* every instruction is walked in program order, branch bodies included
  (transient execution runs wrong paths, so their taint must flow);
* a register defined inside a branch window *merges* with its prior
  value instead of replacing it (architecturally the def may be
  skipped);
* only definitely-executed stores at analyzable ``buf+const`` addresses
  add coverage; stores the analysis cannot place keep their data's
  taint by merging it into every covered byte they might hit;
* unknown values never launder taint (``and``/``xor`` of a tainted
  pointer stays tainted).

The known imprecision sources are catalogued in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fuzz.gen import BUF_BYTES
from repro.static.ir import IRProgram
from repro.static.windows import BranchWindow, BypassEdge

__all__ = ["EMPTY", "RegVal", "TaintResult", "analyze_taint"]

#: The empty source set (untainted).
EMPTY: frozenset[int] = frozenset()

#: Abstract value regions.
_CONST, _BUF, _UNKNOWN = "const", "buf", "unknown"


@dataclass(frozen=True)
class RegVal:
    """Abstract register value: a region/offset plus taint source sets."""

    region: str = _UNKNOWN          # "const" | "buf" | "unknown"
    offset: int = 0                  # meaningful for const/buf
    arch: frozenset[int] = EMPTY     # architectural secret sources
    spec: frozenset[int] = EMPTY     # transient-path secret sources (⊇ arch)

    @property
    def tainted(self) -> bool:
        return bool(self.spec)

    def merged(self, other: "RegVal") -> "RegVal":
        """Join with another possible value (branch-window def merge)."""
        same = self.region == other.region and self.offset == other.offset
        return RegVal(
            region=self.region if same else _UNKNOWN,
            offset=self.offset if same else 0,
            arch=self.arch | other.arch,
            spec=self.spec | other.spec,
        )


_UNKNOWN_VAL = RegVal()


@dataclass
class TaintResult:
    """Per-node taint facts the gadget layer consumes."""

    #: memory-op node index -> (arch, spec) source sets of its *address*.
    address: dict[int, tuple[frozenset[int], frozenset[int]]] = field(
        default_factory=dict
    )
    #: memory-op node index -> abstract base-register value
    #: ("const"|"buf"|"unknown", offset) — alias reasoning and the advisor.
    values: dict[int, tuple[str, int]] = field(default_factory=dict)
    #: branch node index -> (arch, spec) source sets of its condition.
    condition: dict[int, tuple[frozenset[int], frozenset[int]]] = field(
        default_factory=dict
    )
    #: final register environment (taint of architectural results).
    regs: dict[str, RegVal] = field(default_factory=dict)
    #: secret-source node index -> kind
    #: ("uncovered-load" | "foreign-load" | "stale-bypass").
    sources: dict[int, str] = field(default_factory=dict)


def _alu_value(op_name: str, node_op: str, a: RegVal, b: RegVal | None,
               imm: int | None) -> tuple[str, int]:
    """Constant/offset folding for the ALU family (value part only)."""
    if node_op in ("Mov",):
        return a.region, a.offset
    if node_op == "AluImm":
        if op_name == "add" and a.region in (_CONST, _BUF):
            return a.region, a.offset + imm
        if op_name == "sub" and a.region in (_CONST, _BUF):
            return a.region, a.offset - imm
        if a.region == _CONST and op_name in ("xor", "and", "or"):
            fn = {"xor": int.__xor__, "and": int.__and__, "or": int.__or__}[op_name]
            return _CONST, fn(a.offset, imm)
        return _UNKNOWN, 0
    if node_op == "Alu":
        if op_name == "add":
            if a.region == _CONST and b.region in (_CONST, _BUF):
                return b.region, a.offset + b.offset
            if b.region == _CONST and a.region in (_CONST, _BUF):
                return a.region, a.offset + b.offset
        if op_name == "sub":
            if a.region in (_CONST, _BUF) and b.region == _CONST:
                return a.region, a.offset - b.offset
            if a.region == _CONST and b.region == _CONST:
                return _CONST, a.offset - b.offset
        if a.region == _CONST and b.region == _CONST and op_name in (
            "xor", "and", "or"
        ):
            fn = {"xor": int.__xor__, "and": int.__and__, "or": int.__or__}[op_name]
            return _CONST, fn(a.offset, b.offset)
        return _UNKNOWN, 0
    if node_op == "ImulImm":
        if imm == 1:
            return a.region, a.offset
        if a.region == _CONST:
            return _CONST, a.offset * imm
        return _UNKNOWN, 0
    if node_op == "Imul":
        if a.region == _CONST and b.region == _CONST:
            return _CONST, a.offset * b.offset
        if a.region == _CONST and a.offset == 1:
            return b.region, b.offset
        if b.region == _CONST and b.offset == 1:
            return a.region, a.offset
        return _UNKNOWN, 0
    return _UNKNOWN, 0


def analyze_taint(
    ir: IRProgram,
    edges: list[BypassEdge],
    windows: list[BranchWindow],
    *,
    buffer_reg: str = "buf",
    buffer_bytes: int = BUF_BYTES,
) -> TaintResult:
    """One forward pass: abstract values, coverage and taint sources."""
    result = TaintResult()
    regs: dict[str, RegVal] = {buffer_reg: RegVal(region=_BUF, offset=0)}
    #: definitely-overwritten buffer byte -> (arch, spec) taint of its data.
    coverage: dict[int, tuple[frozenset[int], frozenset[int]]] = {}
    bypassed = {edge.load for edge in edges}
    maybe = [False] * len(ir)
    for window in windows:
        for index in range(window.start, min(window.end, len(ir))):
            maybe[index] = True

    def read(name: str) -> RegVal:
        return regs.get(name, _UNKNOWN_VAL)

    def write(index: int, name: str, value: RegVal) -> None:
        if maybe[index] and name in regs:
            regs[name] = regs[name].merged(value)
        else:
            regs[name] = value

    for node in ir.nodes:
        kind = node.kind
        if kind == "alu":
            uses = [read(name) for name in node.uses]
            a = uses[0] if uses else _UNKNOWN_VAL
            b = uses[1] if len(uses) > 1 else None
            arch = frozenset().union(*(u.arch for u in uses)) if uses else EMPTY
            spec = frozenset().union(*(u.spec for u in uses)) if uses else EMPTY
            if node.op == "MovImm":
                value = RegVal(region=_CONST, offset=node.imm or 0)
            else:
                region, offset = _alu_value(
                    node.alu_op or "add", node.op, a, b, node.imm
                )
                value = RegVal(region=region, offset=offset, arch=arch, spec=spec)
            for name in node.defs:
                write(node.index, name, value)
        elif kind == "timer":
            for name in node.defs:
                write(node.index, name, RegVal())
        elif kind == "load":
            base = read(node.base)
            result.address[node.index] = (base.arch, base.spec)
            result.values[node.index] = (base.region, base.offset)
            arch: frozenset[int]
            spec: frozenset[int]
            lo = base.offset + node.offset
            hi = lo + max(1, node.width)
            if base.region == _BUF and 0 <= lo and hi <= buffer_bytes and all(
                off in coverage for off in range(lo, hi)
            ):
                arch = frozenset().union(*(coverage[o][0] for o in range(lo, hi)))
                spec = frozenset().union(*(coverage[o][1] for o in range(lo, hi)))
            elif base.region == _BUF:
                result.sources[node.index] = "uncovered-load"
                arch = spec = frozenset({node.index})
            else:
                result.sources[node.index] = "foreign-load"
                arch = spec = frozenset({node.index})
            if node.index in bypassed:
                # A bypass/PSF edge lets this load transiently observe
                # stale memory — the initial (secret) fill — even when
                # it is architecturally covered.
                result.sources.setdefault(node.index, "stale-bypass")
                spec = spec | frozenset({node.index})
            # The address itself being tainted also taints the value
            # (the load reads an attacker-unintended, secret-named slot).
            arch = arch | base.arch
            spec = spec | base.spec
            write(node.index, node.defs[0], RegVal(arch=arch, spec=spec))
        elif kind == "store":
            base = read(node.base)
            data = read(node.uses[1])
            result.address[node.index] = (base.arch, base.spec)
            result.values[node.index] = (base.region, base.offset)
            lo = base.offset + node.offset
            hi = lo + max(1, node.width)
            placeable = (
                base.region == _BUF and not base.tainted
                and 0 <= lo and hi <= buffer_bytes
            )
            if placeable and not maybe[node.index]:
                for off in range(lo, hi):
                    coverage[off] = (data.arch, data.spec)
            elif placeable:
                # Maybe-executed store at a known offset: it cannot add
                # coverage, but tainted data may land on covered bytes.
                for off in range(lo, hi):
                    if off in coverage:
                        coverage[off] = (
                            coverage[off][0] | data.arch,
                            coverage[off][1] | data.spec,
                        )
            elif data.arch or data.spec:
                # Unplaceable store with tainted data: it may overwrite
                # any covered byte, so every entry inherits the taint.
                for off, (arch_d, spec_d) in coverage.items():
                    coverage[off] = (arch_d | data.arch, spec_d | data.spec)
        elif kind == "flush":
            base = read(node.base)
            result.address[node.index] = (base.arch, base.spec)
            result.values[node.index] = (base.region, base.offset)
        elif kind == "branch":
            cond = read(node.uses[0])
            result.condition[node.index] = (cond.arch, cond.spec)
        # fence / halt / nop: no dataflow.

    result.regs = dict(regs)
    return result
