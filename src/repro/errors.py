"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A simulation component was configured with inconsistent parameters."""


class SegmentationFault(ReproError):
    """A simulated access touched an unmapped or forbidden virtual address.

    Mirrors a SIGSEGV delivered by the simulated kernel.  The faulting
    address and the access kind are preserved for fault-injection tests.
    """

    def __init__(self, address: int, access: str = "load") -> None:
        super().__init__(f"segmentation fault: {access} at {address:#x}")
        self.address = address
        self.access = access


class ProtectionFault(SegmentationFault):
    """A simulated access violated page permissions (mapped but forbidden)."""


class InvalidInstruction(ReproError):
    """The simulated core decoded an instruction it does not implement."""


class SimulationLimitExceeded(ReproError):
    """A simulated program ran past its instruction or cycle budget."""


class AttackError(ReproError):
    """An attack primitive could not complete (e.g. no collision found)."""


class CollisionNotFound(AttackError):
    """Code sliding exhausted its search space without finding a collision."""
