"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A simulation component was configured with inconsistent parameters."""


class SegmentationFault(ReproError):
    """A simulated access touched an unmapped or forbidden virtual address.

    Mirrors a SIGSEGV delivered by the simulated kernel.  The faulting
    address and the access kind are preserved for fault-injection tests.
    """

    def __init__(self, address: int, access: str = "load") -> None:
        super().__init__(f"segmentation fault: {access} at {address:#x}")
        self.address = address
        self.access = access


class ProtectionFault(SegmentationFault):
    """A simulated access violated page permissions (mapped but forbidden)."""


class InvalidInstruction(ReproError):
    """The simulated core decoded an instruction it does not implement."""


class SimulationLimitExceeded(ReproError):
    """A simulated program ran past its instruction or cycle budget."""


class UnknownExperimentError(ReproError):
    """An experiment name was not found in the campaign registry.

    Raised by :func:`repro.experiments.runner.run_experiment` (and the
    campaign scheduler) instead of ``SystemExit`` so that library callers
    can recover; the CLI translates it to exit code 2.
    """

    def __init__(self, name: str, known: "list[str] | None" = None) -> None:
        self.name = name
        self.known = list(known or [])
        hint = f"; known: {', '.join(self.known)}" if self.known else ""
        super().__init__(f"unknown experiment {name!r}{hint}")


class ArtifactError(ReproError):
    """A result artifact or cache entry could not be read or validated."""


class CampaignInterrupted(ReproError):
    """A campaign was interrupted (SIGINT/SIGTERM) after checkpointing.

    Raised by :func:`repro.experiments.runner.run_campaign` and
    :func:`repro.fuzz.cli.run_fuzz_campaign` once in-flight work has been
    drained and the resumable checkpoint written.  ``partial`` carries
    whatever completed before the interrupt; ``checkpoint`` is the state
    the next ``--resume`` run continues from.  The CLIs translate this to
    exit code 3 (:data:`repro.runtime.exitcodes.EXIT_INTERRUPTED`).
    """

    def __init__(
        self,
        message: str,
        *,
        partial: "object | None" = None,
        checkpoint: "object | None" = None,
    ) -> None:
        super().__init__(message)
        self.partial = partial
        self.checkpoint = checkpoint


class AttackError(ReproError):
    """An attack primitive could not complete (e.g. no collision found)."""


class CollisionNotFound(AttackError):
    """Code sliding exhausted its search space without finding a collision."""
