"""The store queue (store buffer) of one hardware thread.

Holds stores that have been dispatched but not yet committed to memory.
A store's *data address* may become known cycles after dispatch (address
generation fed by a multiply chain or a cache-missing load — exactly the
delays the paper uses to open transient windows).  Until then the store
is *unresolved* and younger loads must either wait, bypass it (SSB) or
receive its data predictively (PSF) — decisions taken by the predictors,
not by this queue.

The queue itself provides only architectural mechanics: ordering,
overlap/forwarding lookups, and commit to physical memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationLimitExceeded
from repro.mem.physical import PhysicalMemory

__all__ = ["StoreEntry", "StoreQueue"]


@dataclass(slots=True)
class StoreEntry:
    """One in-flight store."""

    seq: int                 # program-order sequence number
    paddr: int               # actual physical data address (simulator-known)
    size: int                # bytes
    data: bytes              # store payload
    addr_ready: int          # cycle when address generation completes
    data_ready: int          # cycle when the payload is available
    store_ipa: int           # instruction physical address of the store
    committed: bool = False
    #: Loads that executed against this store while it was unresolved;
    #: resolved by the pipeline when the address becomes ready.
    speculated_loads: list = field(default_factory=list)

    def overlaps(self, paddr: int, size: int) -> bool:
        return self.paddr < paddr + size and paddr < self.paddr + self.size

    def covers(self, paddr: int, size: int) -> bool:
        return self.paddr <= paddr and paddr + size <= self.paddr + self.size

    def forward_bytes(self, paddr: int, size: int) -> bytes:
        start = paddr - self.paddr
        return self.data[start : start + size]


class StoreQueue:
    """Bounded, program-ordered queue of :class:`StoreEntry`."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._entries: list[StoreEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, entry: StoreEntry) -> None:
        if len(self._entries) >= self.capacity:
            raise SimulationLimitExceeded(
                f"store queue full ({self.capacity} entries); "
                "commit older stores before dispatching more"
            )
        if self._entries and entry.seq <= self._entries[-1].seq:
            raise ValueError("stores must be pushed in program order")
        self._entries.append(entry)

    # ------------------------------------------------------------------
    # Lookups used by the load pipeline
    # ------------------------------------------------------------------
    def older_than(self, seq: int) -> list[StoreEntry]:
        """In-flight stores older than the given load, oldest first."""
        return [e for e in self._entries if e.seq < seq and not e.committed]

    def unresolved_older(self, seq: int, now: int) -> list[StoreEntry]:
        """Older stores whose address is not yet generated at cycle ``now``."""
        return [
            e
            for e in self._entries
            if e.seq < seq and not e.committed and e.addr_ready > now
        ]

    def nearest_unresolved(self, seq: int, now: int) -> StoreEntry | None:
        """The youngest older unresolved store (the one the paper's stld
        microbenchmark races against)."""
        for entry in reversed(self._entries):
            if entry.seq < seq and not entry.committed and entry.addr_ready > now:
                return entry
        return None

    def forwarding_store(
        self, seq: int, paddr: int, size: int, now: int
    ) -> StoreEntry | None:
        """Youngest older *resolved* store whose data covers the load."""
        for entry in reversed(self.older_than(seq)):
            if entry.addr_ready <= now and entry.covers(paddr, size):
                return entry
            if entry.addr_ready <= now and entry.overlaps(paddr, size):
                # Partial overlap cannot forward; the load must wait for
                # commit.  We model it as a forward from the entry anyway
                # after commit; callers treat None as "read memory".
                return entry
        return None

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit_ready(
        self, memory: PhysicalMemory, now: int, max_seq: int | None = None
    ) -> list[StoreEntry]:
        """Commit (in order) every store whose address and data are ready.

        ``max_seq`` bounds commitment to stores at or before that program
        position — the pipeline passes an open transient window's base so
        wrong-path stores can never reach memory.
        """
        committed: list[StoreEntry] = []
        while self._entries:
            head = self._entries[0]
            if head.addr_ready > now or head.data_ready > now:
                break
            if max_seq is not None and head.seq > max_seq:
                break
            memory.write(head.paddr, head.data)
            head.committed = True
            committed.append(self._entries.pop(0))
        return committed

    def drain(self, memory: PhysicalMemory) -> list[StoreEntry]:
        """Commit everything regardless of readiness (pipeline quiesce)."""
        drained = []
        for entry in self._entries:
            memory.write(entry.paddr, entry.data)
            entry.committed = True
            drained.append(entry)
        self._entries.clear()
        return drained

    def squash_younger(self, seq: int) -> list[StoreEntry]:
        """Drop uncommitted stores younger than ``seq`` (rollback).

        Slice-assignment keeps the internal list's identity stable so
        :meth:`live_entries` references held across a squash stay valid.
        """
        squashed = [e for e in self._entries if e.seq > seq]
        self._entries[:] = [e for e in self._entries if e.seq <= seq]
        return squashed

    def entries(self) -> list[StoreEntry]:
        return list(self._entries)

    def live_entries(self) -> list[StoreEntry]:
        """The internal entry list itself — NOT a copy.

        The pipeline reads this once per scheduling step, so the defensive
        copy in :meth:`entries` was the single largest allocation site in
        a run.  Callers must treat the list as read-only; it stays
        identity-stable across pushes, commits and squashes.
        """
        return self._entries

    def __repr__(self) -> str:
        return f"StoreQueue({len(self._entries)}/{self.capacity})"
