"""Simulated physical memory: a sparse, frame-granular byte store.

Physical memory is addressed by 48-bit physical addresses and allocated in
4 KiB frames.  Frames are created lazily (zero-filled) the first time they
are touched, so experiments can use sparse layouts without cost.

Data correctness lives here; the cache hierarchy (:mod:`repro.mem.cache`)
only models *presence and timing*.  This mirrors how the attacks work: a
load that speculatively bypasses a pending store simply reads the old
bytes from memory, because the store's data is still sitting in the store
queue (:mod:`repro.mem.store_queue`).
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["PAGE_SHIFT", "PAGE_SIZE", "PhysicalMemory"]

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
_PHYS_BITS = 48
_PHYS_LIMIT = 1 << _PHYS_BITS


class PhysicalMemory:
    """Sparse physical memory with byte and little-endian word access."""

    def __init__(self, size: int = _PHYS_LIMIT) -> None:
        if not 0 < size <= _PHYS_LIMIT:
            raise ConfigError(f"physical memory size out of range: {size}")
        self.size = size
        self._frames: dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    # Frame helpers
    # ------------------------------------------------------------------
    def _frame(self, paddr: int) -> tuple[bytearray, int]:
        if not 0 <= paddr < self.size:
            raise ValueError(f"physical address out of range: {paddr:#x}")
        number = paddr >> PAGE_SHIFT
        frame = self._frames.get(number)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[number] = frame
        return frame, paddr & (PAGE_SIZE - 1)

    @property
    def resident_frames(self) -> int:
        """Number of frames that have been touched."""
        return len(self._frames)

    # ------------------------------------------------------------------
    # Byte access
    # ------------------------------------------------------------------
    def read(self, paddr: int, length: int) -> bytes:
        """Read ``length`` bytes, possibly crossing frame boundaries."""
        if length < 0:
            raise ValueError("negative read length")
        if 0 < length <= PAGE_SIZE - (paddr & (PAGE_SIZE - 1)):
            # Common case: the access fits inside one frame.
            frame, offset = self._frame(paddr)
            return bytes(frame[offset : offset + length])
        out = bytearray()
        while length:
            frame, offset = self._frame(paddr)
            chunk = min(length, PAGE_SIZE - offset)
            out += frame[offset : offset + chunk]
            paddr += chunk
            length -= chunk
        return bytes(out)

    def write(self, paddr: int, data: bytes) -> None:
        """Write bytes, possibly crossing frame boundaries."""
        length = len(data)
        if 0 < length <= PAGE_SIZE - (paddr & (PAGE_SIZE - 1)):
            # Common case: the access fits inside one frame.
            frame, offset = self._frame(paddr)
            frame[offset : offset + length] = data
            return
        view = memoryview(data)
        while view:
            frame, offset = self._frame(paddr)
            chunk = min(len(view), PAGE_SIZE - offset)
            frame[offset : offset + chunk] = view[:chunk]
            paddr += chunk
            view = view[chunk:]

    # ------------------------------------------------------------------
    # Word access (little-endian, like amd64)
    # ------------------------------------------------------------------
    def read_u8(self, paddr: int) -> int:
        return self.read(paddr, 1)[0]

    def write_u8(self, paddr: int, value: int) -> None:
        self.write(paddr, bytes([value & 0xFF]))

    def read_u64(self, paddr: int) -> int:
        return int.from_bytes(self.read(paddr, 8), "little")

    def write_u64(self, paddr: int, value: int) -> None:
        self.write(paddr, (value & (1 << 64) - 1).to_bytes(8, "little"))

    def copy_frame(self, src_frame: int, dst_frame: int) -> None:
        """Copy one whole frame (used by the kernel's copy-on-write)."""
        source = self._frames.get(src_frame)
        frame, _ = self._frame(dst_frame << PAGE_SHIFT)
        if source is None:
            frame[:] = bytes(PAGE_SIZE)
        else:
            frame[:] = source

    def __repr__(self) -> str:
        return f"PhysicalMemory(resident_frames={self.resident_frames})"
