"""A set-associative cache model (presence and timing, not data).

The attacks only need the cache to answer "would this load hit, and at
which level?" and to support ``clflush`` — the Flush+Reload covert channel
(:mod:`repro.attacks.flush_reload`) is built from exactly those two
operations.  Data correctness is the job of
:class:`repro.mem.physical.PhysicalMemory`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigError

__all__ = ["Cache", "CacheStats"]


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("hits", "misses", "evictions", "flushes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.flushes = 0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


class Cache:
    """Set-associative, LRU-replaced cache keyed by physical line address."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_size: int = 64,
    ) -> None:
        if line_size & (line_size - 1):
            raise ConfigError(f"line size must be a power of two: {line_size}")
        if size_bytes % (ways * line_size):
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible by ways*line_size"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.sets = size_bytes // (ways * line_size)
        if self.sets & (self.sets - 1):
            raise ConfigError(f"{name}: set count must be a power of two")
        self._lines: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _index(self, paddr: int) -> tuple[int, int]:
        line = paddr // self.line_size
        return line % self.sets, line

    def access(self, paddr: int) -> bool:
        """Touch the line holding ``paddr``; returns True on hit.

        A miss fills the line (evicting LRU if the set is full).
        """
        set_index, line = self._index(paddr)
        bucket = self._lines[set_index]
        if line in bucket:
            bucket.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(bucket) >= self.ways:
            bucket.popitem(last=False)
            self.stats.evictions += 1
        bucket[line] = None
        return False

    def contains(self, paddr: int) -> bool:
        """Presence probe that does not disturb recency or stats."""
        set_index, line = self._index(paddr)
        return line in self._lines[set_index]

    def flush_line(self, paddr: int) -> bool:
        """``clflush``: drop the line if present; returns whether it was."""
        set_index, line = self._index(paddr)
        bucket = self._lines[set_index]
        self.stats.flushes += 1
        if line in bucket:
            del bucket[line]
            return True
        return False

    def flush_all(self) -> None:
        for bucket in self._lines:
            bucket.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._lines)

    def __repr__(self) -> str:
        return (
            f"Cache({self.name!r}, {self.size_bytes >> 10} KiB, "
            f"{self.ways}-way, occupancy={self.occupancy})"
        )
