"""A small data TLB model (translation timing, LRU replacement).

Only timing flows from here: translations themselves are always answered
by the OS page tables (:mod:`repro.osm.address_space`), and a TLB miss
adds a page-walk penalty.  The kernel shoots down entries on unmap or
remap so that the mprotect experiment of Section III-C.1 behaves: after
the kernel moves a COW page, the *new* frame is what gets fetched.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["Tlb"]


class Tlb:
    """Fully associative VA-page -> PA-frame cache with LRU replacement."""

    def __init__(self, entries: int = 64) -> None:
        self.capacity = entries
        self._map: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, va_page: int) -> int | None:
        """Return the cached frame for the page, or None on miss."""
        frame = self._map.get(va_page)
        if frame is None:
            self.misses += 1
            return None
        self._map.move_to_end(va_page)
        self.hits += 1
        return frame

    def fill(self, va_page: int, frame: int) -> None:
        if va_page in self._map:
            self._map.move_to_end(va_page)
        elif len(self._map) >= self.capacity:
            self._map.popitem(last=False)
        self._map[va_page] = frame

    def invalidate(self, va_page: int) -> None:
        self._map.pop(va_page, None)

    def flush(self) -> None:
        """Full shootdown (address-space switch)."""
        self._map.clear()

    @property
    def occupancy(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        return f"Tlb(occupancy={self.occupancy}/{self.capacity})"
