"""The three-level data-cache hierarchy of a Zen 3 core.

Zen 3 geometry: 32 KiB 8-way L1D, 512 KiB 8-way private L2, and a 32 MiB
16-way L3 slice shared per CCX.  Loads probe L1 -> L2 -> L3 -> memory and
fill all levels on the way back (inclusive-enough for our purposes);
``clflush`` removes the line from every level, which is all Flush+Reload
needs.
"""

from __future__ import annotations

import enum

from repro.core.config import LatencyModel
from repro.mem.cache import Cache

__all__ = ["CacheLevel", "MemoryHierarchy"]


class CacheLevel(enum.Enum):
    """Where a load was served from."""

    L1 = "L1"
    L2 = "L2"
    L3 = "L3"
    MEMORY = "memory"


class MemoryHierarchy:
    """L1D/L2/L3 presence model with per-level latencies."""

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self.latency = latency or LatencyModel()
        self.l1 = Cache("L1D", size_bytes=32 << 10, ways=8)
        self.l2 = Cache("L2", size_bytes=512 << 10, ways=8)
        self.l3 = Cache("L3", size_bytes=32 << 20, ways=16)

    def load(self, paddr: int) -> tuple[int, CacheLevel]:
        """Access ``paddr``; returns (latency_cycles, serving level)."""
        if self.l1.access(paddr):
            return self.latency.l1_hit, CacheLevel.L1
        if self.l2.access(paddr):
            return self.latency.l2_hit, CacheLevel.L2
        if self.l3.access(paddr):
            return self.latency.l3_hit, CacheLevel.L3
        return self.latency.memory, CacheLevel.MEMORY

    def store(self, paddr: int) -> int:
        """A committed store allocates the line (write-allocate)."""
        latency, _ = self.load(paddr)
        return latency

    def probe_level(self, paddr: int) -> CacheLevel:
        """Non-destructive: where would a load be served from right now?"""
        if self.l1.contains(paddr):
            return CacheLevel.L1
        if self.l2.contains(paddr):
            return CacheLevel.L2
        if self.l3.contains(paddr):
            return CacheLevel.L3
        return CacheLevel.MEMORY

    def probe_latency(self, paddr: int) -> int:
        """Latency a load would see right now, without touching state."""
        return {
            CacheLevel.L1: self.latency.l1_hit,
            CacheLevel.L2: self.latency.l2_hit,
            CacheLevel.L3: self.latency.l3_hit,
            CacheLevel.MEMORY: self.latency.memory,
        }[self.probe_level(paddr)]

    def clflush(self, paddr: int) -> None:
        """Flush the line from every level (the user-mode clflush)."""
        self.l1.flush_line(paddr)
        self.l2.flush_line(paddr)
        self.l3.flush_line(paddr)

    def flush_all(self) -> None:
        self.l1.flush_all()
        self.l2.flush_all()
        self.l3.flush_all()

    def __repr__(self) -> str:
        return (
            f"MemoryHierarchy(l1={self.l1.occupancy}, l2={self.l2.occupancy}, "
            f"l3={self.l3.occupancy})"
        )
