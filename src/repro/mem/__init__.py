"""Memory substrate: physical memory, caches, TLB and the store queue."""

from repro.mem.cache import Cache, CacheStats
from repro.mem.hierarchy import CacheLevel, MemoryHierarchy
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.mem.store_queue import StoreEntry, StoreQueue
from repro.mem.tlb import Tlb

__all__ = [
    "Cache",
    "CacheLevel",
    "CacheStats",
    "MemoryHierarchy",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PhysicalMemory",
    "StoreEntry",
    "StoreQueue",
    "Tlb",
]
