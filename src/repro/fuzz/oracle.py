"""The differential leakage oracle (AMuLeT-style two-fill testing).

An oracle program (:func:`repro.fuzz.gen.oracle_program`) is built so its
*architectural* results never depend on the initial data-buffer contents
— every tracked-register load is covered by a program-written store.  The
buffer fill is therefore a pure **secret**: the only way its bytes can
influence anything is through transient execution (a bypassing load
reading stale data, a wrong-path gadget).

The oracle runs each program twice on identical fresh machines with two
different secret fills and compares:

* the architectural results (tracked registers) — these MUST be equal;
  a difference is an oracle-invariant violation reported loudly as
  ``architectural-secret-dependence``;
* the microarchitectural observations — cache-line residency over the
  data buffer, PMC deltas, rollback counts, execution-type traces and
  total cycles.  A difference means the secret left a trace an attacker
  could read: a ``leak`` finding.

Run per mitigation, the oracle doubles as a countermeasure tester: leaks
are *expected* under ``none`` (that is the paper's attack), and any leak
under ``ssbd`` or ``fence`` is a mitigation regression — the condition
``make fuzz-smoke`` gates on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import CpuModel
from repro.fuzz.compare import Divergence, compare_architectural
from repro.fuzz.gen import BUF_BYTES, REGS, build_program
from repro.fuzz.harness import DEFAULT_FILL, Execution, execute_program, resolve_model
from repro.mem.hierarchy import CacheLevel
from repro.osm.address_space import Perm

__all__ = [
    "CACHE_LINE",
    "Observation",
    "OracleReport",
    "secret_fills",
    "observe_program",
    "observation_diff",
    "leak_check",
    "leak_check_instructions",
]

CACHE_LINE = 64

#: At most this many differing cache-line offsets are recorded per diff.
_MAX_LINE_DIFFS = 24


def secret_fills(seed: int) -> tuple[bytes, bytes]:
    """Two deterministic, distinct secret fills for one oracle case."""
    fill_a = random.Random(f"repro-fuzz-secret-{seed}-a").randbytes(BUF_BYTES)
    fill_b = random.Random(f"repro-fuzz-secret-{seed}-b").randbytes(BUF_BYTES)
    return fill_a, fill_b


@dataclass(frozen=True)
class Observation:
    """Everything an attacker could observe about one run."""

    status: str
    cycles: int
    rollbacks: int
    retired: int
    pmc: dict[str, int]
    #: One token per resolved store-load interaction, in order.
    exec_types: tuple[str, ...]
    #: data-buffer byte offset -> cache level holding that line.
    cached_lines: dict[int, str]


def observe_program(
    instructions: list,
    *,
    seed: int,
    model: CpuModel | str | None = None,
    mitigation: str = "none",
    fill: bytes = DEFAULT_FILL,
) -> tuple[dict[str, int], Observation]:
    """Run a program on the pipeline and collect (arch regs, observation)."""
    execution = execute_program(
        instructions, seed=seed, model=model, mitigation=mitigation,
        fill=fill, use_pipeline=True,
    )
    return execution.regs, _observation_of(execution)


def _observation_of(execution: Execution) -> Observation:
    machine = execution.machine
    hierarchy = machine.core.hierarchy
    cached: dict[int, str] = {}
    for offset in range(0, BUF_BYTES, CACHE_LINE):
        paddr = machine.kernel.translate(
            execution.process, execution.buf + offset, Perm.R
        )
        level = hierarchy.probe_level(paddr)
        if level is not CacheLevel.MEMORY:
            cached[offset] = level.value
    result = execution.result
    return Observation(
        status=execution.status,
        cycles=result.cycles if result is not None else -1,
        rollbacks=result.rollbacks if result is not None else -1,
        retired=result.retired if result is not None else -1,
        pmc=machine.core.thread(0).pmc.snapshot(),
        exec_types=tuple(
            f"{event.exec_type.name}:{event.store_ipa:#x}>{event.load_ipa:#x}"
            for event in (result.events if result is not None else [])
        ),
        cached_lines=cached,
    )


def observation_diff(a: Observation, b: Observation) -> dict:
    """JSON-ready summary of how two observations differ (empty = equal)."""
    diff: dict = {}
    if a.status != b.status:
        diff["status"] = [a.status, b.status]
    for name in ("cycles", "rollbacks", "retired"):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            diff[name] = [va, vb]
    pmc = {
        event: [a.pmc.get(event, 0), b.pmc.get(event, 0)]
        for event in sorted(set(a.pmc) | set(b.pmc))
        if a.pmc.get(event, 0) != b.pmc.get(event, 0)
    }
    if pmc:
        diff["pmc"] = pmc
    if a.exec_types != b.exec_types:
        first = next(
            (
                index
                for index, (ta, tb) in enumerate(zip(a.exec_types, b.exec_types))
                if ta != tb
            ),
            min(len(a.exec_types), len(b.exec_types)),
        )
        diff["exec_types"] = {
            "lengths": [len(a.exec_types), len(b.exec_types)],
            "first_difference": first,
        }
    if a.cached_lines != b.cached_lines:
        offsets = sorted(
            offset
            for offset in set(a.cached_lines) | set(b.cached_lines)
            if a.cached_lines.get(offset) != b.cached_lines.get(offset)
        )
        diff["cached_lines"] = {
            "differing": len(offsets),
            "offsets": offsets[:_MAX_LINE_DIFFS],
        }
    return diff


@dataclass
class OracleReport:
    """Outcome of one two-fill oracle check."""

    generator: str
    seed: int
    blocks: int
    mitigation: str
    model_name: str
    arch_divergence: Divergence | None = None
    observation: dict = field(default_factory=dict)

    @property
    def finding_kind(self) -> str | None:
        """The findings-JSONL kind this report maps to (None = clean)."""
        if self.arch_divergence is not None:
            return "architectural-secret-dependence"
        if self.observation:
            return "leak"
        return None

    def to_detail(self) -> dict:
        detail: dict = {}
        if self.arch_divergence is not None:
            detail["architectural"] = self.arch_divergence.to_detail()
        if self.observation:
            detail["observation"] = self.observation
        return detail


def leak_check(
    generator: str,
    seed: int,
    blocks: int,
    *,
    model: CpuModel | str | None = None,
    mitigation: str = "none",
) -> OracleReport:
    """Run one oracle case: same program, two secrets, compare everything."""
    return leak_check_instructions(
        build_program(generator, seed, blocks),
        seed=seed,
        model=model,
        mitigation=mitigation,
        generator=generator,
        blocks=blocks,
    )


def leak_check_instructions(
    instructions: list,
    *,
    seed: int,
    model: CpuModel | str | None = None,
    mitigation: str = "none",
    generator: str = "custom",
    blocks: int = 0,
) -> OracleReport:
    """Two-fill oracle over an explicit instruction list.

    The generator-based :func:`leak_check` is a thin wrapper over this;
    the raw entry point exists so shrunk findings and hand-built
    programs (static cross-validation, tests) can face the same oracle
    as generated cases.
    """
    resolved = resolve_model(model)
    fill_a, fill_b = secret_fills(seed)
    regs_a, obs_a = observe_program(
        instructions, seed=seed, model=resolved, mitigation=mitigation, fill=fill_a
    )
    regs_b, obs_b = observe_program(
        instructions, seed=seed, model=resolved, mitigation=mitigation, fill=fill_b
    )
    arch = compare_architectural(
        instructions,
        regs_a,
        regs_b,
        tracked=REGS,
        outcome_a=obs_a.status,
        outcome_b=obs_b.status,
    )
    return OracleReport(
        generator=generator,
        seed=seed,
        blocks=blocks,
        mitigation=mitigation,
        model_name=resolved.name,
        arch_divergence=arch,
        observation=observation_diff(obs_a, obs_b),
    )
