"""The ``repro-fuzz`` campaign engine and CLI.

A campaign is a deterministic function of ``(--seed, --budget,
--cpu-model, --mitigation)``:

1. the persistent corpus is replayed first — built-in regression entries,
   then any on-disk cases from previous campaigns;
2. ``--budget`` fresh program seeds are derived from the master seed; each
   drives one dual-execution (``fuzz-v1``) task and one leakage-oracle
   (``oracle-v1``) task, every task evaluated under every requested
   mitigation;
3. architectural divergences are minimized by the shrinker and appended
   to the corpus; everything lands in a schema-versioned findings JSONL.

``--jobs N`` fans tasks out over a :class:`ProcessPoolExecutor`; findings
are emitted in task order whatever the completion order, so ``--jobs 8``
and ``--jobs 1`` write **byte-identical** findings files — the same
determinism contract the experiment campaign runner keeps.

Campaigns run under the shared resilient runtime (docs/resilience.md):
``--timeout`` kills and retries hung workers, worker crashes cost one
attempt instead of the whole run, and completed tasks stream into an
atomic checkpoint (``<out>.checkpoint.json``) that ``--resume`` replays
after a crash or Ctrl-C — converging to the same findings file an
uninterrupted run would have written.

Exit status follows the shared campaign contract
(:mod:`repro.runtime.exitcodes`): 0 clean, 1 when the run found a
*regression* — any architectural divergence, any oracle-invariant
violation, a leak under an active mitigation (``ssbd``/``fence``) — or
any task exhausted its retries; 2 on bad usage; 3 when interrupted with
a checkpoint written.  Leaks under ``none`` are the paper's attacks
working as intended and do not fail the run.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.core.config import ZEN3_MODELS
from repro.cpu.isa import instructions_from_reprs
from repro.errors import ArtifactError, CampaignInterrupted, ConfigError, ReproError
from repro.experiments.cache import content_key
from repro.fuzz import corpus as corpus_mod
from repro.fuzz import harness, oracle
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, Corpus, CorpusEntry
from repro.fuzz.findings import Finding, write_findings
from repro.fuzz.shrink import shrink_report
from repro.runtime import exitcodes
from repro.runtime.atomic import atomic_write_json
from repro.runtime.chaos import CHAOS_ENV_VAR, ChaosPlan
from repro.runtime.cliutil import apply_engine, build_parser
from repro.runtime.quarantine import quarantine
from repro.runtime.supervisor import (
    DEFAULT_GRACE_S,
    DEFAULT_RETRIES,
    TaskFailure,
    run_supervised,
)
from repro.telemetry import recording
from repro.telemetry.metrics import merge_snapshots, registry
from repro.telemetry.sinks import JsonlSink, trace_header

__all__ = [
    "DEFAULT_BUDGET",
    "DEFAULT_MITIGATIONS",
    "CHECKPOINT_SCHEMA",
    "FuzzCampaignResult",
    "checkpoint_path",
    "derive_case",
    "build_tasks",
    "prefilter_tasks",
    "run_fuzz_campaign",
    "trace_shrunk_findings",
    "regressions",
    "main",
]

CHECKPOINT_SCHEMA = 1

DEFAULT_BUDGET = 100
DEFAULT_MITIGATIONS = ("none", "ssbd")

#: Block-count range for generated programs (inclusive-exclusive).
_BLOCK_RANGE = (10, 44)


def derive_case(master_seed: int, index: int) -> tuple[int, int]:
    """The ``(program seed, blocks)`` of generated case ``index``.

    Independent of job count and process: seeded string RNG, no global
    state — the determinism the byte-identical-JSONL contract rests on.
    """
    rng = random.Random(f"repro-fuzz-case-{master_seed}-{index}")
    return rng.randrange(1, 1 << 30), rng.randrange(*_BLOCK_RANGE)


def build_tasks(
    *,
    budget: int,
    seed: int,
    mitigations: Sequence[str],
    model_name: str | None,
    replay: Sequence[CorpusEntry],
    inject: str | None = None,
    shrink: bool = True,
    metrics: bool = False,
) -> list[dict]:
    """The campaign's full task list: corpus replays first, then fresh
    programs (each as a differential task plus an oracle task)."""
    common = {
        "mitigations": list(mitigations),
        "cpu_model": model_name or "",
        "inject": inject or "",
        "shrink": shrink,
        "metrics": metrics,
    }
    tasks: list[dict] = []
    for entry in replay:
        tasks.append(
            {
                "task": len(tasks),
                "check": "differential",
                "generator": entry.generator,
                "seed": entry.seed,
                "blocks": entry.blocks,
                "origin": "corpus",
                "label": entry.label,
                **common,
            }
        )
    for index in range(budget):
        program_seed, blocks = derive_case(seed, index)
        for check, generator in (("differential", "fuzz-v1"), ("oracle", "oracle-v1")):
            tasks.append(
                {
                    "task": len(tasks),
                    "check": check,
                    "generator": generator,
                    "seed": program_seed,
                    "blocks": blocks,
                    "origin": "generated",
                    "label": f"gen-{index}",
                    **common,
                }
            )
    return tasks


def _run_task(task: dict) -> list[dict]:
    """Worker entry point: one task, all its mitigations; finding dicts.

    Pure function of the task description (fresh machines inside), so it
    runs identically inline and in a pool process.  Dict results cross
    the process boundary, exactly like the experiment runner's workers.
    """
    hooks = [task["inject"]] if task["inject"] else []
    model = task["cpu_model"] or None
    # Per-task metrics are a registry *delta*, so they come out identical
    # whether the worker process is fresh (--jobs N) or reused (inline).
    before = registry().snapshot(timers=False) if task.get("metrics") else None
    found: list[dict] = []
    with harness.chaos(*hooks):
        for mitigation in task["mitigations"]:
            if task["check"] == "differential":
                found.extend(_differential_findings(task, model, mitigation))
            else:
                found.extend(_oracle_findings(task, model, mitigation))
    if before is not None and found:
        delta = registry().delta_since(before, timers=False)
        for data in found:
            data["metrics"] = delta
    return found


def _differential_findings(task: dict, model: str | None, mitigation: str) -> list[dict]:
    report = harness.check_case(
        task["generator"], task["seed"], task["blocks"],
        model=model, mitigation=mitigation,
    )
    if report.divergence is None:
        return []
    shrunk = None
    if task["shrink"]:

        def reproduces(candidate: list) -> bool:
            trial = harness.run_dual(
                candidate, seed=task["seed"], model=model, mitigation=mitigation
            )
            return trial.divergence is not None

        shrunk = shrink_report(report.instructions, reproduces)
    finding = Finding(
        kind="architectural-divergence",
        generator=task["generator"],
        seed=task["seed"],
        blocks=task["blocks"],
        cpu_model=report.model_name,
        mitigation=mitigation,
        task=task["task"],
        origin=task["origin"],
        label=task["label"],
        detail=report.divergence.to_detail(),
        shrunk=shrunk,
    )
    return [finding.to_dict()]


def _oracle_findings(task: dict, model: str | None, mitigation: str) -> list[dict]:
    report = oracle.leak_check(
        task["generator"], task["seed"], task["blocks"],
        model=model, mitigation=mitigation,
    )
    kind = report.finding_kind
    if kind is None:
        return []
    finding = Finding(
        kind=kind,
        generator=task["generator"],
        seed=task["seed"],
        blocks=task["blocks"],
        cpu_model=report.model_name,
        mitigation=mitigation,
        task=task["task"],
        origin=task["origin"],
        label=task["label"],
        detail=report.to_detail(),
    )
    return [finding.to_dict()]


def _validate_findings(found: object) -> list[dict]:
    """Supervised-pool result validation: every finding must round-trip."""
    if not isinstance(found, list):
        raise ArtifactError(
            f"worker returned {type(found).__name__}, expected a findings list"
        )
    for data in found:
        Finding.from_dict(data)
    return found


class FuzzCampaignResult(list):
    """Findings in stable task order, plus campaign telemetry."""

    def __init__(
        self,
        findings: Sequence[Finding] = (),
        *,
        failures: Sequence[TaskFailure] = (),
        quarantined: int = 0,
        resumed: int = 0,
        retried: int = 0,
        prefilter_scanned: int = 0,
        prefilter_skipped: int = 0,
    ) -> None:
        super().__init__(findings)
        self.failures = list(failures)
        self.quarantined = quarantined
        self.resumed = resumed
        self.retried = retried
        self.prefilter_scanned = prefilter_scanned
        self.prefilter_skipped = prefilter_skipped


def prefilter_tasks(tasks: list[dict]) -> tuple[list[dict], int, int]:
    """Drop generated oracle tasks the static scanner proves gadget-free.

    A program the scanner declares clean under every mitigation the task
    would test *cannot* produce an oracle finding (the tested soundness
    invariant, :mod:`repro.static.crossval`), so dynamically executing it
    is pure cost.  The decision is a deterministic function of the
    program alone — corpus replays and differential tasks are never
    skipped (they test the simulator, not the program), so the filter
    cannot mask a pipeline bug.  Returns ``(kept, scanned, skipped)``.
    """
    # Imported here, not at module level: repro.static.crossval imports
    # this module for derive_case, so a top-level import would be a cycle.
    from repro.fuzz.gen import build_program
    from repro.static.gadgets import scan_program

    kept: list[dict] = []
    scanned = skipped = 0
    for task in tasks:
        if task["origin"] == "generated" and task["check"] == "oracle":
            scanned += 1
            instructions = build_program(
                task["generator"], task["seed"], task["blocks"]
            )
            if all(
                scan_program(instructions, mitigation=mitigation).clean
                for mitigation in task["mitigations"]
            ):
                skipped += 1
                registry().counter("scan.prefilter_skipped").inc()
                continue
        kept.append(task)
    return kept, scanned, skipped


def checkpoint_path(out: str | Path) -> Path:
    """Where the resumable checkpoint for findings file ``out`` lives."""
    out = Path(out)
    return out.with_name(out.name + ".checkpoint.json")


def _campaign_fingerprint(tasks: list[dict]) -> str:
    """Content address binding a checkpoint to one exact task list.

    Any change to the campaign parameters, the corpus replay set or the
    task derivation produces different task dicts and therefore a
    different fingerprint — a stale checkpoint is then ignored rather
    than splicing mismatched results into the findings.
    """
    return content_key({"schema": CHECKPOINT_SCHEMA, "tasks": tasks})


def _recover_fuzz_checkpoint(
    path: Path, fingerprint: str, say: Callable[[str], None]
) -> tuple[dict[int, list[dict]], int]:
    """Completed task results from a previous run's checkpoint, validated."""
    if not path.exists():
        return {}, 0
    try:
        data = json.loads(path.read_bytes().decode("utf-8"))
        if data["schema"] != CHECKPOINT_SCHEMA:
            raise ArtifactError(f"checkpoint schema {data['schema']} unsupported")
        stored_fingerprint = data["fingerprint"]
        completed = {
            int(task_id): _validate_findings(found)
            for task_id, found in data["completed"].items()
        }
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError,
            ValueError, ArtifactError) as exc:
        quarantined = 0
        if quarantine(path.parent, path, f"unreadable fuzz checkpoint: {exc!r}"):
            quarantined = 1
        say(f"checkpoint {path} unreadable; quarantined and starting fresh")
        return {}, quarantined
    if stored_fingerprint != fingerprint:
        say(f"checkpoint {path} belongs to a different campaign; ignoring")
        return {}, 0
    return completed, 0


def run_fuzz_campaign(
    *,
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    jobs: int = 1,
    model_name: str | None = None,
    mitigations: Sequence[str] = DEFAULT_MITIGATIONS,
    corpus_dir: str | Path | None = DEFAULT_CORPUS_DIR,
    shrink: bool = True,
    metrics: bool = False,
    inject: str | None = None,
    progress: Callable[[str], None] | None = None,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    chaos: str | None = None,
    grace_s: float = DEFAULT_GRACE_S,
    static_prefilter: bool = False,
) -> FuzzCampaignResult:
    """Run one campaign; returns findings in stable task order.

    ``corpus_dir=None`` disables the on-disk corpus (built-in regression
    entries are still replayed); otherwise new architectural findings are
    persisted there for future campaigns to replay first.

    Execution is supervised (:mod:`repro.runtime.supervisor`): hung
    workers are killed at ``timeout`` and retried, crashes cost one
    attempt, and tasks that exhaust ``retries`` become failure entries on
    the returned :class:`FuzzCampaignResult`.  With ``checkpoint`` set,
    completed tasks are persisted atomically as they land; ``resume``
    replays them (the checkpoint is deleted on clean completion).  On
    SIGINT/SIGTERM the in-flight tasks are drained, the checkpoint is
    written, and :class:`repro.errors.CampaignInterrupted` is raised.
    """
    for mitigation in mitigations:
        if mitigation not in harness.MITIGATIONS:
            raise ConfigError(
                f"unknown mitigation {mitigation!r}; "
                f"known: {', '.join(harness.MITIGATIONS)}"
            )
    say = progress or (lambda line: None)
    corp = Corpus(corpus_dir) if corpus_dir is not None else None
    replay = corpus_mod.replay_order(corp)
    tasks = build_tasks(
        budget=budget, seed=seed, mitigations=mitigations,
        model_name=model_name, replay=replay, inject=inject, shrink=shrink,
        metrics=metrics,
    )
    scanned = skipped = 0
    if static_prefilter:
        tasks, scanned, skipped = prefilter_tasks(tasks)
        if skipped:
            say(f"static prefilter: skipped {skipped}/{scanned} generated "
                f"oracle case(s) proven gadget-free")
    by_id = {task["task"]: task for task in tasks}
    fingerprint = _campaign_fingerprint(tasks)
    checkpoint = Path(checkpoint) if checkpoint is not None else None

    results: dict[int, list[dict]] = {}
    quarantined = 0
    resumed = 0
    if resume and checkpoint is not None:
        results, quarantined = _recover_fuzz_checkpoint(checkpoint, fingerprint, say)
        resumed = len(results)
        if resumed:
            say(f"resumed {resumed} completed task(s) from {checkpoint}")

    def write_checkpoint() -> None:
        if checkpoint is not None:
            atomic_write_json(
                checkpoint,
                {
                    "schema": CHECKPOINT_SCHEMA,
                    "fingerprint": fingerprint,
                    "completed": {
                        str(task_id): results[task_id]
                        for task_id in sorted(results)
                    },
                },
            )

    def on_result(task_id: int, found: list[dict]) -> None:
        results[task_id] = found
        write_checkpoint()
        task = by_id[task_id]
        verdict = f"{len(found)} finding(s)" if found else "clean"
        say(
            f"task {task['task']:3d} {task['check']:<12s} "
            f"{task['generator']} seed={task['seed']}: {verdict}"
        )

    pending = [task for task in tasks if task["task"] not in results]
    chaos_plan = ChaosPlan.from_spec(chaos) if chaos else None
    try:
        report = run_supervised(
            [(task["task"], task) for task in pending],
            _run_task,
            jobs=jobs,
            timeout=timeout,
            retries=retries,
            # Oracle tasks are small and homogeneous: batch them onto
            # warm workers so decode/compile caches stay hot and the
            # per-task pipe round-trip amortizes away.
            batch="adaptive",
            chaos=chaos_plan,
            validate=_validate_findings,
            on_result=on_result,
            progress=say,
            grace_s=grace_s,
        )
    finally:
        if chaos_plan is not None:
            chaos_plan.cleanup()

    findings = [
        Finding.from_dict(data)
        for task_id in sorted(results)
        for data in results[task_id]
    ]
    campaign = FuzzCampaignResult(
        findings,
        failures=report.failures,
        quarantined=quarantined + (corp.quarantined if corp is not None else 0),
        resumed=resumed,
        retried=report.retried,
        prefilter_scanned=scanned,
        prefilter_skipped=skipped,
    )
    if report.interrupted:
        write_checkpoint()
        raise CampaignInterrupted(
            f"fuzz campaign interrupted with {len(results)}/{len(tasks)} "
            f"task(s) checkpointed",
            partial=campaign,
            checkpoint=checkpoint,
        )
    if corp is not None:
        for finding in findings:
            if finding.kind != "leak" and finding.origin == "generated":
                corp.add(
                    CorpusEntry(
                        finding.generator,
                        finding.seed,
                        finding.blocks,
                        label=f"campaign:{finding.label}",
                        origin="campaign",
                    )
                )
    if checkpoint is not None:
        checkpoint.unlink(missing_ok=True)
    return campaign


def trace_shrunk_findings(
    findings: Sequence[Finding],
    out: str | Path,
    progress: Callable[[str], None] | None = None,
) -> int:
    """Record a pipeline trace of every minimized reproducer.

    For each finding that carries a ``shrunk`` program, the minimized
    instructions are rebuilt from their reprs and replayed once under the
    finding's own seed/model/mitigation with tracing on.  Traces land in
    a ``traces/`` directory next to the findings file and each finding's
    ``trace`` field records the relative path — a triager can go straight
    from the JSONL line to ``repro-trace summarize``/``export``.

    Replay happens serially in the parent process after the campaign, so
    it changes neither the task fingerprints nor the checkpoint format,
    and the traces are deterministic whatever ``--jobs`` was.
    """
    say = progress or (lambda line: None)
    traces_dir = Path(out).parent / "traces"
    traced = 0
    for finding in findings:
        if finding.shrunk is None:
            continue
        name = f"task{finding.task:04d}-{finding.mitigation}.trace.jsonl"
        sink = JsonlSink(
            traces_dir / name,
            header=trace_header(
                target=f"finding:task{finding.task}",
                generator=finding.generator,
                seed=finding.seed,
                blocks=finding.blocks,
                mitigation=finding.mitigation,
                cpu_model=finding.cpu_model,
                shrunk_count=finding.shrunk["count"],
            ),
        )
        instructions = instructions_from_reprs(finding.shrunk["instructions"])
        with recording(sink):
            try:
                harness.execute_program(
                    instructions,
                    seed=finding.seed,
                    model=finding.cpu_model,
                    mitigation=finding.mitigation,
                )
            except ReproError as exc:
                # The trace up to the failure is still written and still
                # useful; faults inside the window are normal here.
                say(f"trace {name}: replay stopped early ({exc})")
        finding.trace = f"traces/{name}"
        traced += 1
        say(f"traced minimized repro of task {finding.task} -> traces/{name}")
    return traced


def regressions(findings: Sequence[Finding]) -> list[Finding]:
    """The findings that should fail a campaign: every architectural
    problem, plus leaks that survived an active mitigation."""
    return [
        finding
        for finding in findings
        if finding.kind != "leak" or finding.mitigation != "none"
    ]


_EPILOG = """\
a "regression" (exit 1) is any architectural divergence, any
oracle-invariant violation, or a leak under an active mitigation
(ssbd/fence); leaks under `none` are the paper's attacks working as
intended and do not fail the run"""


def main(argv: list[str] | None = None) -> int:
    parser = build_parser(
        "repro-fuzz",
        "Differential speculation fuzzing: dual-execution correctness "
        "checks plus a two-fill leakage oracle, per mitigation.",
        epilog=_EPILOG,
    )
    parser.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET, metavar="N",
        help=f"generated programs per campaign (default {DEFAULT_BUDGET})",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master campaign seed (default 0)"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    parser.add_argument(
        "--cpu-model", default=None, choices=sorted(ZEN3_MODELS), metavar="NAME",
        help="TABLE III platform to fuzz (default: ryzen9-5900x)",
    )
    parser.add_argument(
        "--mitigation", default=",".join(DEFAULT_MITIGATIONS), metavar="LIST",
        help=(
            "comma-separated mitigation configs to evaluate "
            f"(from: {', '.join(harness.MITIGATIONS)}; "
            f"default {','.join(DEFAULT_MITIGATIONS)})"
        ),
    )
    parser.add_argument(
        "--out", default="fuzz-findings.jsonl", metavar="FILE",
        help="findings JSONL path (default fuzz-findings.jsonl)",
    )
    parser.add_argument(
        "--corpus-dir", default=DEFAULT_CORPUS_DIR, metavar="DIR",
        help=f"persistent corpus location (default {DEFAULT_CORPUS_DIR})",
    )
    parser.add_argument(
        "--no-corpus", action="store_true",
        help="do not read or write the on-disk corpus "
             "(built-in regressions still replay)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip counterexample minimization",
    )
    parser.add_argument(
        "--trace-findings", action="store_true",
        help="replay each minimized reproducer with pipeline tracing on; "
             "traces land under traces/ next to --out and each finding "
             "gains a 'trace' field (see docs/observability.md)",
    )
    parser.add_argument(
        "--static-prefilter", action="store_true",
        help="skip dynamically executing generated oracle programs the "
             "static scanner (repro-scan) proves gadget-free; the skip "
             "decision is a pure function of the program, so findings "
             "stay deterministic (see docs/static-analysis.md)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="attach each finding task's deterministic telemetry-counter "
             "delta as a 'metrics' field and print the campaign rollup",
    )
    parser.add_argument(
        "--inject", default=None, choices=harness.CHAOS_HOOK_NAMES, metavar="HOOK",
        help="self-test: arm a pipeline fault-injection hook; the campaign "
             "must then report (and shrink) architectural divergences",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task deadline; a hung worker is killed and retried",
    )
    parser.add_argument(
        "--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
        help=f"retry budget per task after a crash/timeout/error "
             f"(default {DEFAULT_RETRIES}, deterministic backoff)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay tasks already completed in the checkpoint next to --out "
             "(after a crash or Ctrl-C)",
    )
    parser.add_argument(
        "--chaos", default=os.environ.get(CHAOS_ENV_VAR), metavar="SPEC",
        help="self-test: inject runtime faults, e.g. "
             "'crash@3,hang@5,corrupt@7,interrupt@9' "
             f"(default from ${CHAOS_ENV_VAR})",
    )
    args = parser.parse_args(argv)
    apply_engine(args)

    mitigations = [part.strip() for part in args.mitigation.split(",") if part.strip()]
    corpus_dir = None if args.no_corpus else args.corpus_dir
    replayed = len(
        corpus_mod.replay_order(Corpus(corpus_dir) if corpus_dir else None)
    )
    started = time.perf_counter()
    try:
        findings = run_fuzz_campaign(
            budget=max(0, args.budget),
            seed=args.seed,
            jobs=max(1, args.jobs),
            model_name=args.cpu_model,
            mitigations=mitigations,
            corpus_dir=corpus_dir,
            shrink=not args.no_shrink,
            metrics=args.metrics,
            inject=args.inject,
            progress=lambda line: print(f"  .. {line}", file=sys.stderr),
            timeout=args.timeout,
            retries=max(0, args.retries),
            checkpoint=checkpoint_path(args.out),
            resume=args.resume,
            chaos=args.chaos,
            static_prefilter=args.static_prefilter,
        )
    except ConfigError as exc:
        print(f"repro-fuzz: {exc}", file=sys.stderr)
        return exitcodes.EXIT_USAGE
    except CampaignInterrupted as exc:
        print(f"repro-fuzz: {exc}", file=sys.stderr)
        print(
            f"repro-fuzz: checkpoint written to {exc.checkpoint}; "
            f"re-run with --resume to continue",
            file=sys.stderr,
        )
        return exitcodes.EXIT_INTERRUPTED

    traced = 0
    if args.trace_findings:
        traced = trace_shrunk_findings(
            findings, args.out,
            progress=lambda line: print(f"  .. {line}", file=sys.stderr),
        )
    path = write_findings(args.out, findings)
    by_kind: dict[str, int] = {}
    for finding in findings:
        by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
    bad = regressions(findings)
    print(
        f"fuzz campaign: {args.budget} generated programs + {replayed} corpus "
        f"replays, mitigations [{', '.join(mitigations)}], "
        f"{time.perf_counter() - started:.1f}s wall with --jobs {max(1, args.jobs)}"
    )
    for kind in sorted(by_kind):
        print(f"  {kind}: {by_kind[kind]}")
    print(f"  findings written to {path}")
    if traced:
        print(f"  traced {traced} minimized repro(s) under {Path(args.out).parent / 'traces'}")
    if args.metrics:
        rollup = merge_snapshots(
            [f.metrics for f in findings if f.metrics is not None]
        )
        counters = rollup.get("counters", {})
        print(f"  metrics rollup over {len([f for f in findings if f.metrics])} "
              f"finding(s):")
        for name in sorted(counters):
            print(f"    {counters[name]:>9}  {name}")
    if findings.prefilter_scanned:
        print(
            f"  static prefilter: scanned {findings.prefilter_scanned} "
            f"generated oracle case(s), skipped "
            f"{findings.prefilter_skipped} proven gadget-free"
        )
    if findings.resumed:
        print(f"  resumed {findings.resumed} task(s) from checkpoint")
    if findings.quarantined:
        print(f"  quarantined {findings.quarantined} corrupt file(s)")
    for failure in findings.failures:
        print(
            f"  FAILED task {failure.task}: {failure.kind} after "
            f"{failure.attempts} attempt(s) — {failure.message}"
        )
    if bad or findings.failures:
        if bad:
            print(f"REGRESSIONS: {len(bad)} finding(s) that must not happen "
                  f"(architectural, or leaking despite mitigation)")
        if findings.failures:
            print(f"FAILURES: {len(findings.failures)} task(s) exhausted "
                  f"their retry budget")
        return exitcodes.EXIT_FAILURES
    print("clean: no architectural divergences, no mitigated leaks")
    return exitcodes.EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
