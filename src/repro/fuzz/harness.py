"""Dual-execution harness: speculative pipeline vs reference interpreter.

Whatever the predictors guessed — bypasses, predictive forwards, branch
mispredictions — every squash must repair architectural state exactly, so
any program must end with identical registers, memory and outcome under
:class:`~repro.cpu.pipeline.Pipeline` and
:class:`~repro.cpu.reference.ReferenceInterpreter`.  This module runs
both executors on identical fresh machines and reports disagreements as
:class:`~repro.fuzz.compare.Divergence` values; the differential tests,
the shrinker and the ``repro-fuzz`` campaign all go through it.

Every check runs under a *mitigation configuration* (``none``, ``ssbd``,
``fence``): mitigations must never change architectural results, so the
same differential contract doubles as a countermeasure correctness test.

:func:`chaos` arms the pipeline's fault-injection hooks
(:data:`repro.cpu.pipeline.CHAOS_HOOKS`) so tests can prove the harness
catches the bug classes it exists for — see
``tests/fuzz/test_harness.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.config import CpuModel, default_model, get_model
from repro.cpu import pipeline as pipeline_mod
from repro.cpu.isa import Instruction, Program
from repro.cpu.machine import Machine
from repro.cpu.pipeline import RunResult
from repro.cpu.reference import ReferenceInterpreter
from repro.errors import ConfigError, SegmentationFault, SimulationLimitExceeded
from repro.fuzz.compare import Divergence, compare_architectural, written_registers
from repro.fuzz.corpus import CorpusEntry
from repro.fuzz.gen import BUF_BYTES, BUF_PAGES, build_program
from repro.mitigations.fences import fence_after_stores
from repro.osm.process import Process
from repro.telemetry.metrics import registry

__all__ = [
    "MITIGATIONS",
    "CHAOS_HOOK_NAMES",
    "DEFAULT_FILL",
    "Execution",
    "DualReport",
    "chaos",
    "execute_program",
    "run_dual",
    "check_case",
    "check_entry",
]

#: The countermeasure configurations every check can run under.
MITIGATIONS = ("none", "ssbd", "fence")

#: Hooks understood by :func:`chaos` (see ``repro.cpu.pipeline.CHAOS_HOOKS``).
CHAOS_HOOK_NAMES = ("skip-register-repair", "skip-store-squash")

#: The classic fill the original differential tests used; the pinned
#: regression seeds were found against exactly these buffer contents.
DEFAULT_FILL = bytes(range(256)) * (BUF_BYTES // 256)

_MAX_STEPS = 400_000


@contextmanager
def chaos(*hooks: str):
    """Temporarily arm pipeline fault-injection hooks (test-only).

    The named squash-repair steps are disabled for the duration of the
    ``with`` block — in this process only; campaign workers re-arm the
    hook themselves from the task description.
    """
    unknown = set(hooks) - set(CHAOS_HOOK_NAMES)
    if unknown:
        raise ConfigError(
            f"unknown chaos hook(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(CHAOS_HOOK_NAMES)}"
        )
    added = [hook for hook in hooks if hook not in pipeline_mod.CHAOS_HOOKS]
    pipeline_mod.CHAOS_HOOKS.update(hooks)
    try:
        yield
    finally:
        for hook in added:
            pipeline_mod.CHAOS_HOOKS.discard(hook)


def resolve_model(model: CpuModel | str | None) -> CpuModel:
    """Accept a :class:`CpuModel`, a TABLE III platform name, or None."""
    if model is None:
        return default_model()
    if isinstance(model, CpuModel):
        return model
    return get_model(model)


def apply_mitigation(
    instructions: list[Instruction], mitigation: str
) -> list[Instruction]:
    """Program-level part of a mitigation (``fence`` inserts fences)."""
    if mitigation not in MITIGATIONS:
        raise ConfigError(
            f"unknown mitigation {mitigation!r}; known: {', '.join(MITIGATIONS)}"
        )
    if mitigation == "fence":
        return fence_after_stores(instructions)
    return list(instructions)


@dataclass
class Execution:
    """One executor's run of one program on a fresh machine."""

    status: str                     # "ok" | "fault:<description>" | "limit"
    regs: dict[str, int]
    memory: bytes
    machine: Machine
    process: Process
    buf: int
    result: RunResult | None = None  # pipeline runs only


def execute_program(
    instructions: list[Instruction],
    *,
    seed: int,
    model: CpuModel | str | None = None,
    mitigation: str = "none",
    fill: bytes = DEFAULT_FILL,
    use_pipeline: bool = True,
    max_steps: int = _MAX_STEPS,
    engine: str | None = None,
) -> Execution:
    """Run a program on a fresh machine with one executor.

    The machine is seeded with ``seed`` (matching the original
    differential-test convention: machine seed == program seed), the data
    buffer is filled with ``fill``, and the selected mitigation is applied
    — ``ssbd`` at the machine level, ``fence`` as a program transform.
    Faults and step-limit overruns become statuses, not exceptions, so
    comparing two executions always works.  ``engine`` picks the pipeline
    execution engine for this run (default: the process-wide engine, see
    :mod:`repro.cpu.engine`); both engines are bit-identical, so fuzz
    verdicts never depend on the choice.
    """
    executor = "pipeline" if use_pipeline else "reference"
    registry().counter(f"fuzz.executions.{executor}").inc()
    mitigated = apply_mitigation(instructions, mitigation)
    machine = Machine(model=resolve_model(model), seed=seed, engine=engine)
    if mitigation == "ssbd":
        machine.core.set_ssbd(True)
    process = machine.kernel.create_process("fuzz")
    buf = machine.kernel.map_anonymous(process, pages=BUF_PAGES)
    if len(fill) != BUF_BYTES:
        raise ConfigError(f"fill must be exactly {BUF_BYTES} bytes")
    machine.kernel.write(process, buf, fill)
    program = machine.load_program(process, Program(mitigated, name="fuzz"))
    regs = {"buf": buf}

    status = "ok"
    final: dict[str, int] = {}
    result: RunResult | None = None
    try:
        if use_pipeline:
            result = machine.run(process, program, regs, max_steps=max_steps)
            final = result.regs
        else:
            final = ReferenceInterpreter(machine.kernel, process).run(
                program, regs, max_steps=max_steps
            )
    except SegmentationFault as fault:
        status = f"fault:{fault}"
    except SimulationLimitExceeded:
        status = "limit"
    memory = machine.kernel.read(process, buf, BUF_BYTES)
    return Execution(
        status=status,
        regs=final,
        memory=memory,
        machine=machine,
        process=process,
        buf=buf,
        result=result,
    )


@dataclass
class DualReport:
    """Outcome of one dual execution: the two runs plus their diff."""

    instructions: list[Instruction]
    seed: int
    mitigation: str
    model_name: str
    pipeline: Execution
    reference: Execution
    divergence: Divergence | None = field(default=None)


def run_dual(
    instructions: list[Instruction],
    *,
    seed: int,
    model: CpuModel | str | None = None,
    mitigation: str = "none",
    fill: bytes = DEFAULT_FILL,
    tracked: list[str] | None = None,
) -> DualReport:
    """Execute one program on both executors and compare architecturally.

    By default every register the program writes is compared (the shared
    comparator removes ``Rdpru`` destinations); pass ``tracked`` to narrow
    the comparison, e.g. to the classic ``r0..r3`` result registers.
    """
    resolved = resolve_model(model)
    pipe = execute_program(
        instructions, seed=seed, model=resolved, mitigation=mitigation,
        fill=fill, use_pipeline=True,
    )
    ref = execute_program(
        instructions, seed=seed, model=resolved, mitigation=mitigation,
        fill=fill, use_pipeline=False,
    )
    names = tracked if tracked is not None else sorted(written_registers(instructions))
    divergence = compare_architectural(
        instructions,
        pipe.regs,
        ref.regs,
        mem_a=pipe.memory,
        mem_b=ref.memory,
        tracked=names,
        outcome_a=pipe.status,
        outcome_b=ref.status,
    )
    registry().counter("fuzz.dual_runs").inc()
    if divergence is not None:
        registry().counter("fuzz.divergences").inc()
    return DualReport(
        instructions=list(instructions),
        seed=seed,
        mitigation=mitigation,
        model_name=resolved.name,
        pipeline=pipe,
        reference=ref,
        divergence=divergence,
    )


def check_case(
    generator: str,
    seed: int,
    blocks: int,
    *,
    model: CpuModel | str | None = None,
    mitigation: str = "none",
    fill: bytes = DEFAULT_FILL,
    tracked: list[str] | None = None,
) -> DualReport:
    """Generate the ``(generator, seed, blocks)`` program and dual-run it."""
    instructions = build_program(generator, seed, blocks)
    return run_dual(
        instructions, seed=seed, model=model, mitigation=mitigation,
        fill=fill, tracked=tracked,
    )


def check_entry(
    entry: CorpusEntry,
    *,
    model: CpuModel | str | None = None,
    mitigation: str = "none",
) -> DualReport:
    """Replay one corpus entry through the dual-execution harness."""
    return check_case(
        entry.generator, entry.seed, entry.blocks,
        model=model, mitigation=mitigation,
    )
