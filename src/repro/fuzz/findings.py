"""Schema-versioned JSONL findings artifacts.

One campaign produces one findings file: one JSON object per line, in
task order, serialized canonically (sorted keys, fixed separators) so a
campaign is byte-identical however many worker processes produced it —
the same determinism contract the experiment runner's artifacts keep.

A finding's ``kind`` is one of:

* ``architectural-divergence`` — pipeline and reference interpreter
  disagreed on registers/memory/outcome for the same program and input
  (a simulator correctness bug; the harness shrinks these);
* ``leak`` — two secret fills produced identical architectural results
  but different microarchitectural observations (cache residency, PMC
  deltas, timing) — expected under ``mitigation="none"``, a regression
  under ``ssbd``/``fence``;
* ``architectural-secret-dependence`` — an oracle program's architectural
  results depended on the secret fill (an oracle-invariant violation;
  loudly reported because it breaks the leak definition).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ArtifactError
from repro.runtime.atomic import atomic_write_text

__all__ = [
    "SCHEMA_VERSION",
    "KINDS",
    "Finding",
    "canonical_line",
    "write_findings",
    "read_findings",
]

SCHEMA_VERSION = 1

KINDS = ("architectural-divergence", "leak", "architectural-secret-dependence")


@dataclass
class Finding:
    """One confirmed fuzzing result, replayable from its identity fields."""

    kind: str
    generator: str
    seed: int
    blocks: int
    cpu_model: str
    mitigation: str
    task: int                       # campaign task index (stable ordering)
    origin: str = "generated"       # "corpus" | "generated"
    label: str = ""
    detail: dict = field(default_factory=dict)
    #: Minimized reproducer: {"count": N, "instructions": [repr, ...]}.
    shrunk: dict | None = None
    #: Per-task deterministic metrics delta (``repro-fuzz --metrics``):
    #: a counters/histograms snapshot from :mod:`repro.telemetry.metrics`.
    metrics: dict | None = None
    #: Trace of the minimized repro relative to the findings file
    #: (``repro-fuzz --trace-findings``), e.g. "traces/task0007-none.trace.jsonl".
    trace: str | None = None
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ArtifactError(
                f"unknown finding kind {self.kind!r}; known: {', '.join(KINDS)}"
            )

    def to_dict(self) -> dict:
        data = {
            "schema": self.schema,
            "kind": self.kind,
            "generator": self.generator,
            "seed": self.seed,
            "blocks": self.blocks,
            "cpu_model": self.cpu_model,
            "mitigation": self.mitigation,
            "task": self.task,
            "origin": self.origin,
            "label": self.label,
            "detail": self.detail,
        }
        if self.shrunk is not None:
            data["shrunk"] = self.shrunk
        if self.metrics is not None:
            data["metrics"] = self.metrics
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        try:
            schema = data["schema"]
            if schema != SCHEMA_VERSION:
                raise ArtifactError(
                    f"finding schema {schema} unsupported "
                    f"(this build reads {SCHEMA_VERSION})"
                )
            return cls(
                kind=data["kind"],
                generator=data["generator"],
                seed=int(data["seed"]),
                blocks=int(data["blocks"]),
                cpu_model=str(data["cpu_model"]),
                mitigation=str(data["mitigation"]),
                task=int(data["task"]),
                origin=str(data.get("origin", "generated")),
                label=str(data.get("label", "")),
                detail=dict(data.get("detail", {})),
                shrunk=data.get("shrunk"),
                metrics=data.get("metrics"),
                trace=data.get("trace"),
                schema=schema,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed finding: {exc!r}") from exc


def canonical_line(finding: Finding) -> str:
    """The one canonical JSONL serialization of a finding (no newline)."""
    return json.dumps(finding.to_dict(), sort_keys=True, separators=(",", ":"))


def write_findings(path: str | Path, findings: list[Finding]) -> Path:
    """Write a findings JSONL file atomically and durably; returns the path.

    Delegates to the shared runtime helper
    (:func:`repro.runtime.atomic.atomic_write_text`) so findings carry
    the same crash-safety guarantee as every other campaign artifact.
    """
    body = "".join(canonical_line(finding) + "\n" for finding in findings)
    return atomic_write_text(path, body)


def read_findings(path: str | Path) -> list[Finding]:
    """Load a findings JSONL file; raises :class:`ArtifactError` on damage."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise ArtifactError(f"no findings file at {path}") from None
    findings = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{path}:{lineno} is not valid JSON: {exc}") from exc
        findings.append(Finding.from_dict(data))
    return findings
