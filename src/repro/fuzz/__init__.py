"""Differential speculation fuzzing for the simulated AMD pipeline.

The subsystem answers two questions the paper's reproduction depends on:

* **Correctness** — does speculation (store bypassing, predictive store
  forwarding, branch misprediction) ever change *architectural* results?
  :mod:`~repro.fuzz.harness` dual-executes generated programs on the
  speculative :class:`~repro.cpu.pipeline.Pipeline` and the in-order
  :class:`~repro.cpu.reference.ReferenceInterpreter` and flags any
  disagreement.
* **Leakage** — can a secret that is only reachable transiently still be
  observed microarchitecturally, and do the mitigations stop it?
  :mod:`~repro.fuzz.oracle` runs each program under two secret fills and
  compares cache residency, PMCs and timing (AMuLeT-style).

Around those two checks: :mod:`~repro.fuzz.gen` (weighted, seeded program
generation), :mod:`~repro.fuzz.compare` (the shared architectural-state
comparator), :mod:`~repro.fuzz.shrink` (counterexample minimization),
:mod:`~repro.fuzz.corpus` (persistent replay corpus seeded with the
hand-written regression cases), :mod:`~repro.fuzz.findings`
(schema-versioned JSONL artifacts) and :mod:`~repro.fuzz.cli` (the
``repro-fuzz`` campaign engine).  See ``docs/fuzzing.md``.
"""

from repro.fuzz.compare import (
    Divergence,
    compare_architectural,
    rdpru_destinations,
    written_registers,
)
from repro.fuzz.corpus import (
    REGRESSION_ENTRIES,
    Corpus,
    CorpusEntry,
    replay_order,
)
from repro.fuzz.findings import Finding, read_findings, write_findings
from repro.fuzz.gen import (
    BUF_BYTES,
    BUF_PAGES,
    GENERATORS,
    REGS,
    build_program,
    fuzz_program,
    oracle_program,
    random_program,
)
from repro.fuzz.harness import (
    MITIGATIONS,
    DualReport,
    chaos,
    check_case,
    check_entry,
    execute_program,
    run_dual,
)
from repro.fuzz.oracle import Observation, OracleReport, leak_check
from repro.fuzz.shrink import shrink, shrink_report

__all__ = [
    # gen
    "BUF_BYTES",
    "BUF_PAGES",
    "GENERATORS",
    "REGS",
    "build_program",
    "fuzz_program",
    "oracle_program",
    "random_program",
    # compare
    "Divergence",
    "compare_architectural",
    "rdpru_destinations",
    "written_registers",
    # harness
    "MITIGATIONS",
    "DualReport",
    "chaos",
    "check_case",
    "check_entry",
    "execute_program",
    "run_dual",
    # oracle
    "Observation",
    "OracleReport",
    "leak_check",
    # shrink
    "shrink",
    "shrink_report",
    # corpus
    "REGRESSION_ENTRIES",
    "Corpus",
    "CorpusEntry",
    "replay_order",
    # findings
    "Finding",
    "read_findings",
    "write_findings",
]
