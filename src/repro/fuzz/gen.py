"""Seeded, weighted program generators for the fuzzing subsystem.

Three generators, all pure functions of ``(rng, blocks)`` so a program
is reproducible from its ``(generator, seed, blocks)`` triple alone —
which is what the persistent corpus (:mod:`repro.fuzz.corpus`) stores:

* :func:`random_program` (``diff-v1``) — the original differential-test
  generator, moved here verbatim from ``tests/cpu/test_differential.py``
  so the pinned regression seeds keep building byte-identical programs;
* :func:`fuzz_program` (``fuzz-v1``) — the campaign generator: the same
  speculation-heavy racing pairs plus 4K-aliased store/load pairs,
  transmit gadgets, ``clflush``/``mfence`` spice and ``rdpru`` reads
  (which exercise the comparator's Rdpru-exclusion rule), with template
  selection driven by an explicit weight table;
* :func:`oracle_program` (``oracle-v1``) — the leakage-oracle generator:
  every tracked-register load is covered by a program-written store, so
  the *architectural* results are independent of the initial buffer
  contents; only transient paths (store bypass, wrong-path execution)
  can observe the buffer fill.  The oracle runs such a program under two
  different fills and flags any microarchitectural difference.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import ConfigError

from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    Halt,
    ImulImm,
    Instruction,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Rdpru,
    Store,
)

__all__ = [
    "BUF_PAGES",
    "BUF_BYTES",
    "REGS",
    "TSC_REG",
    "GENERATORS",
    "DEFAULT_FUZZ_WEIGHTS",
    "DEFAULT_ORACLE_WEIGHTS",
    "random_program",
    "fuzz_program",
    "oracle_program",
    "build_program",
]

#: Every generated program operates on one anonymous data buffer.
BUF_PAGES = 2
BUF_BYTES = BUF_PAGES * 4096

#: Architectural result registers the comparators track by default.
REGS = ["r0", "r1", "r2", "r3"]

#: Destination of generated ``Rdpru`` reads (timing — never comparable).
TSC_REG = "tsc"

#: Mask turning a loaded 64-bit value into an in-bounds 8-aligned offset.
_OFFSET_MASK = BUF_BYTES - 8


def random_program(rng: random.Random, blocks: int) -> list:
    """A random well-formed program over a data buffer.

    Addresses are always in-bounds (offsets are masked constants), and
    branches only jump forward, so every program terminates.
    """
    instructions: list = [MovImm(r, rng.randrange(1, 1 << 16)) for r in REGS]
    label_counter = 0
    for block in range(blocks):
        kind = rng.random()
        dst, a, b = (rng.choice(REGS) for _ in range(3))
        if kind < 0.25:
            instructions.append(
                Alu(dst, a, b, rng.choice(["add", "sub", "xor", "and", "or"]))
            )
            instructions.append(ImulImm(dst, dst, rng.choice([1, 3])))
        elif kind < 0.55:
            # A speculation-heavy racing pair: delayed store, racing load.
            store_off = rng.randrange(0, BUF_BYTES - 8, 8)
            load_off = (
                store_off if rng.random() < 0.5
                else rng.randrange(0, BUF_BYTES - 8, 8)
            )
            instructions.append(AluImm("sa", "buf", store_off, "add"))
            instructions.append(Mov("sd", "sa"))
            instructions.extend(
                ImulImm("sd", "sd", 1) for _ in range(rng.randrange(0, 24))
            )
            instructions.append(
                Store(base="sd", src=a, width=rng.choice([1, 8]))
            )
            instructions.append(AluImm("la", "buf", load_off, "add"))
            instructions.append(Load(dst, base="la", width=rng.choice([1, 8])))
        elif kind < 0.75:
            # Plain memory traffic.
            offset = rng.randrange(0, BUF_BYTES - 8, 8)
            instructions.append(AluImm("la", "buf", offset, "add"))
            if rng.random() < 0.5:
                instructions.append(Store(base="la", src=a, width=8))
            else:
                instructions.append(Load(dst, base="la", width=8))
        elif kind < 0.9:
            # A forward branch over some work (possibly mispredicted).
            label = f"skip{label_counter}"
            label_counter += 1
            cond = rng.choice(REGS)
            if rng.random() < 0.4:
                instructions.append(MovImm(cond, rng.choice([0, 1])))
            instructions.append(Jz(cond, label))
            instructions.append(AluImm(dst, a, 7, "add"))
            offset = rng.randrange(0, BUF_BYTES - 8, 8)
            instructions.append(AluImm("la", "buf", offset, "add"))
            instructions.append(Store(base="la", src=dst, width=8))
            instructions.append(Label(label))
        else:
            instructions.append(Mfence())
    instructions.append(Halt())
    return instructions


# ----------------------------------------------------------------------
# Shared template helpers
# ----------------------------------------------------------------------
class _GenState:
    """Mutable bookkeeping threaded through one program's templates."""

    def __init__(self) -> None:
        self.label_counter = 0
        #: Offsets unconditionally stored so far (oracle generator only):
        #: loads from these are architecturally fill-independent.
        self.written: list[int] = []

    def fresh_label(self) -> str:
        label = f"skip{self.label_counter}"
        self.label_counter += 1
        return label


def _racing_pair(
    rng: random.Random,
    out: list,
    store_off: int,
    load_off: int,
    load_dst: str,
    width: int = 8,
    min_chain: int = 0,
    max_chain: int = 24,
) -> None:
    """Delayed store at ``store_off`` racing a load at ``load_off``: the
    address-generation ``imul`` chain keeps the store unresolved when the
    load dispatches, so the predictors decide bypass/forward/stall."""
    out.append(AluImm("sa", "buf", store_off, "add"))
    out.append(Mov("sd", "sa"))
    out.extend(
        ImulImm("sd", "sd", 1) for _ in range(rng.randrange(min_chain, max_chain))
    )
    out.append(Store(base="sd", src=rng.choice(REGS), width=width))
    out.append(AluImm("la", "buf", load_off, "add"))
    out.append(Load(load_dst, base="la", width=width))


def _transmit_gadget(rng: random.Random, out: list, off: int) -> None:
    """The Spectre-STL transmit shape: a covered racing load whose value
    steers a dependent load's address.  Architecturally the loaded value
    is the (public) store data; a speculative bypass reads the *stale*
    buffer byte instead, and the dependent load then touches a cache line
    named by that secret.  All registers involved are scratch — tracked
    registers never see the (architecturally secret) ``tx`` value."""
    out.append(AluImm("sa", "buf", off, "add"))
    out.append(Mov("sd", "sa"))
    out.extend(ImulImm("sd", "sd", 1) for _ in range(rng.randrange(8, 20)))
    out.append(Store(base="sd", src=rng.choice(REGS), width=8))
    out.append(AluImm("la", "buf", off, "add"))
    out.append(Load("tv", base="la", width=8))
    out.append(AluImm("tm", "tv", _OFFSET_MASK, "and"))
    out.append(Alu("ta", "buf", "tm", "add"))
    out.append(Load("tx", base="ta", width=8))


# ----------------------------------------------------------------------
# Campaign generator (fuzz-v1)
# ----------------------------------------------------------------------
def _fuzz_alu(rng: random.Random, out: list, state: _GenState) -> None:
    dst, a, b = (rng.choice(REGS) for _ in range(3))
    out.append(Alu(dst, a, b, rng.choice(["add", "sub", "xor", "and", "or"])))
    out.append(ImulImm(dst, dst, rng.choice([1, 3])))


def _fuzz_stl(rng: random.Random, out: list, state: _GenState) -> None:
    store_off = rng.randrange(0, BUF_BYTES - 8, 8)
    load_off = (
        store_off if rng.random() < 0.5 else rng.randrange(0, BUF_BYTES - 8, 8)
    )
    _racing_pair(
        rng, out, store_off, load_off, rng.choice(REGS), width=rng.choice([1, 8])
    )


def _fuzz_alias4k(rng: random.Random, out: list, state: _GenState) -> None:
    # Same page offset, different page: the hashed-IPA/address predictor
    # structures see 4K-aliased pairs that are *not* true aliases.
    store_off = rng.randrange(0, 4096 - 8, 8)
    load_off = store_off if rng.random() < 0.3 else store_off + 4096
    _racing_pair(rng, out, store_off, load_off, rng.choice(REGS), min_chain=4)


def _fuzz_mem(rng: random.Random, out: list, state: _GenState) -> None:
    offset = rng.randrange(0, BUF_BYTES - 8, 8)
    out.append(AluImm("la", "buf", offset, "add"))
    if rng.random() < 0.5:
        out.append(Store(base="la", src=rng.choice(REGS), width=8))
    else:
        out.append(Load(rng.choice(REGS), base="la", width=8))


def _fuzz_branch(rng: random.Random, out: list, state: _GenState) -> None:
    label = state.fresh_label()
    cond = rng.choice(REGS)
    dst, a = rng.choice(REGS), rng.choice(REGS)
    if rng.random() < 0.4:
        out.append(MovImm(cond, rng.choice([0, 1])))
    out.append(Jz(cond, label))
    out.append(AluImm(dst, a, 7, "add"))
    offset = rng.randrange(0, BUF_BYTES - 8, 8)
    out.append(AluImm("la", "buf", offset, "add"))
    out.append(Store(base="la", src=dst, width=8))
    out.append(Label(label))


def _fuzz_fence(rng: random.Random, out: list, state: _GenState) -> None:
    if rng.random() < 0.5:
        out.append(Mfence())
    else:
        out.append(Clflush(base="buf", offset=rng.randrange(0, BUF_BYTES - 8, 8)))


def _fuzz_rdpru(rng: random.Random, out: list, state: _GenState) -> None:
    # Timing reads diverge between pipeline and reference by design; the
    # shared comparator excludes Rdpru destinations centrally.
    out.append(Rdpru(TSC_REG))


def _fuzz_transmit(rng: random.Random, out: list, state: _GenState) -> None:
    _transmit_gadget(rng, out, rng.randrange(0, BUF_BYTES - 8, 8))


_FUZZ_TEMPLATES: dict[str, Callable[[random.Random, list, _GenState], None]] = {
    "alu": _fuzz_alu,
    "stl": _fuzz_stl,
    "alias4k": _fuzz_alias4k,
    "mem": _fuzz_mem,
    "branch": _fuzz_branch,
    "fence": _fuzz_fence,
    "rdpru": _fuzz_rdpru,
    "transmit": _fuzz_transmit,
}

DEFAULT_FUZZ_WEIGHTS: dict[str, int] = {
    "alu": 15,
    "stl": 25,
    "alias4k": 10,
    "mem": 15,
    "branch": 15,
    "fence": 7,
    "rdpru": 5,
    "transmit": 8,
}


def fuzz_program(
    rng: random.Random, blocks: int, weights: dict[str, int] | None = None
) -> list:
    """The campaign-grade generator: weighted speculation-heavy templates."""
    table = dict(DEFAULT_FUZZ_WEIGHTS if weights is None else weights)
    names = sorted(table)
    weight_list = [table[name] for name in names]
    instructions: list = [MovImm(r, rng.randrange(1, 1 << 16)) for r in REGS]
    state = _GenState()
    for _ in range(blocks):
        template = rng.choices(names, weights=weight_list, k=1)[0]
        _FUZZ_TEMPLATES[template](rng, instructions, state)
    instructions.append(Halt())
    return instructions


# ----------------------------------------------------------------------
# Oracle generator (oracle-v1)
# ----------------------------------------------------------------------
def _oracle_covered(rng: random.Random, out: list, state: _GenState) -> None:
    off = rng.randrange(0, BUF_BYTES - 8, 8)
    _racing_pair(rng, out, off, off, rng.choice(REGS), min_chain=4)
    if off not in state.written:
        state.written.append(off)


def _oracle_transmit(rng: random.Random, out: list, state: _GenState) -> None:
    off = rng.randrange(0, BUF_BYTES - 8, 8)
    _transmit_gadget(rng, out, off)
    if off not in state.written:
        state.written.append(off)


def _oracle_store(rng: random.Random, out: list, state: _GenState) -> None:
    off = rng.randrange(0, BUF_BYTES - 8, 8)
    out.append(AluImm("sa", "buf", off, "add"))
    out.append(Store(base="sa", src=rng.choice(REGS), width=8))
    if off not in state.written:
        state.written.append(off)


def _oracle_load(rng: random.Random, out: list, state: _GenState) -> None:
    # Only offsets the program has definitely written are architecturally
    # public; an unwritten offset would load the secret fill directly.
    if not state.written:
        _oracle_store(rng, out, state)
        return
    off = rng.choice(sorted(state.written))
    out.append(AluImm("la", "buf", off, "add"))
    out.append(Load(rng.choice(REGS), base="la", width=8))


def _oracle_alu(rng: random.Random, out: list, state: _GenState) -> None:
    _fuzz_alu(rng, out, state)


def _oracle_branch(rng: random.Random, out: list, state: _GenState) -> None:
    # Branch bodies stay store/load-free: a conditionally executed store
    # would make the definitely-written set path-dependent.
    label = state.fresh_label()
    cond = rng.choice(REGS)
    dst, a, b = (rng.choice(REGS) for _ in range(3))
    if rng.random() < 0.4:
        out.append(MovImm(cond, rng.choice([0, 1])))
    out.append(Jz(cond, label))
    out.append(Alu(dst, a, b, rng.choice(["add", "xor"])))
    out.append(AluImm(dst, dst, 7, "add"))
    out.append(Label(label))


def _oracle_fence(rng: random.Random, out: list, state: _GenState) -> None:
    _fuzz_fence(rng, out, state)


_ORACLE_TEMPLATES: dict[str, Callable[[random.Random, list, _GenState], None]] = {
    "covered": _oracle_covered,
    "transmit": _oracle_transmit,
    "store": _oracle_store,
    "load": _oracle_load,
    "alu": _oracle_alu,
    "branch": _oracle_branch,
    "fence": _oracle_fence,
}

DEFAULT_ORACLE_WEIGHTS: dict[str, int] = {
    "covered": 20,
    "transmit": 20,
    "store": 15,
    "load": 15,
    "alu": 15,
    "branch": 10,
    "fence": 5,
}


def oracle_program(
    rng: random.Random, blocks: int, weights: dict[str, int] | None = None
) -> list:
    """Leakage-oracle programs: architectural state is fill-independent.

    Invariant: tracked registers (``r0..r3``) only ever receive constants,
    ALU combinations of tracked registers, or loads from offsets the
    program has already stored to — never raw buffer contents.  The
    initial buffer fill (the "secret") is therefore reachable only
    through transient paths.
    """
    table = dict(DEFAULT_ORACLE_WEIGHTS if weights is None else weights)
    names = sorted(table)
    weight_list = [table[name] for name in names]
    instructions: list = [MovImm(r, rng.randrange(1, 1 << 16)) for r in REGS]
    state = _GenState()
    for _ in range(blocks):
        template = rng.choices(names, weights=weight_list, k=1)[0]
        _ORACLE_TEMPLATES[template](rng, instructions, state)
    instructions.append(Halt())
    return instructions


#: Generator registry: the name is part of every corpus entry and finding
#: so a stored case replays against exactly the generator that built it.
GENERATORS: dict[str, Callable[[random.Random, int], list]] = {
    "diff-v1": random_program,
    "fuzz-v1": fuzz_program,
    "oracle-v1": oracle_program,
}


def build_program(generator: str, seed: int, blocks: int) -> list[Instruction]:
    """Materialize the instruction list for a ``(generator, seed, blocks)``
    triple — the only program identity the corpus and findings store."""
    try:
        factory = GENERATORS[generator]
    except KeyError:
        known = ", ".join(sorted(GENERATORS))
        raise ConfigError(
            f"unknown generator {generator!r}; known: {known}"
        ) from None
    return factory(random.Random(seed), blocks)
