"""Counterexample minimization (delta debugging over instruction lists).

When the harness finds a diverging program, hundreds of generated
instructions obscure the few that matter.  :func:`shrink` reduces the
program by chunked deletion — halving granularity like ddmin, finishing
with a one-at-a-time sweep — re-validating every candidate against the
caller's ``reproduces`` predicate (typically "the dual-execution harness
still reports a divergence with the same machine seed and mitigation").

Deletion can orphan a branch from its label or otherwise produce an
invalid program; such candidates simply fail validation (the predicate's
errors are treated as "does not reproduce") and the deletion is rolled
back, so the result is always a well-formed program that still fails.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.cpu.isa import Instruction
from repro.errors import ReproError

__all__ = ["shrink", "shrink_report"]


def _holds(
    reproduces: Callable[[list[Instruction]], bool], candidate: list[Instruction]
) -> bool:
    """Does the failure reproduce on ``candidate``?  Invalid programs
    (duplicate labels, orphaned branch targets, new faults...) surface as
    library errors and count as "no"."""
    if not candidate:
        return False
    try:
        return bool(reproduces(candidate))
    except ReproError:
        return False


def shrink(
    instructions: Sequence[Instruction],
    reproduces: Callable[[list[Instruction]], bool],
) -> list[Instruction]:
    """Minimize ``instructions`` while ``reproduces`` keeps holding.

    Deterministic: candidate order depends only on the input program, so
    the same counterexample always shrinks to the same reproducer.  The
    result is 1-minimal for single deletions: removing any one remaining
    instruction makes the failure vanish (or the program invalid).
    """
    candidate = list(instructions)
    if not _holds(reproduces, candidate):
        # The caller's failure does not even reproduce on the full
        # program (flaky predicate); never "minimize" to garbage.
        return candidate

    chunk = max(1, len(candidate) // 2)
    while True:
        index = 0
        while index < len(candidate):
            trial = candidate[:index] + candidate[index + chunk:]
            if _holds(reproduces, trial):
                candidate = trial
            else:
                index += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return candidate


def shrink_report(
    instructions: Sequence[Instruction],
    reproduces: Callable[[list[Instruction]], bool],
) -> dict:
    """Shrink and package the result for a findings artifact."""
    minimized = shrink(instructions, reproduces)
    return {
        "count": len(minimized),
        "original_count": len(instructions),
        "instructions": [repr(instruction) for instruction in minimized],
    }
