"""The persistent seed corpus.

A corpus entry is the full identity of one generated program — the
``(generator, seed, blocks)`` triple (programs are pure functions of it,
see :mod:`repro.fuzz.gen`) plus provenance.  Entries are stored one JSON
file each under a content-addressed layout borrowed from the experiment
result cache (``<root>/<key[:2]>/<key>.json``, key =
:func:`repro.experiments.cache.content_key` of the identity fields), so
re-adding a known case is a no-op and two campaigns can share a corpus
directory without coordination.

The hand-written differential regressions that used to live as a table in
``tests/cpu/test_differential_regressions.py`` are promoted here as
:data:`REGRESSION_ENTRIES`; :func:`replay_order` puts them (and then any
on-disk entries) ahead of freshly generated programs, so every
``repro-fuzz`` run re-checks all historical counterexamples first.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ArtifactError
from repro.experiments.cache import content_key
from repro.fuzz.gen import GENERATORS
from repro.runtime.atomic import atomic_write_json
from repro.runtime.quarantine import QUARANTINE_DIR, quarantine

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_CORPUS_DIR",
    "CorpusEntry",
    "Corpus",
    "REGRESSION_ENTRIES",
    "replay_order",
]

SCHEMA_VERSION = 1
DEFAULT_CORPUS_DIR = ".repro-corpus"


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable program identity with provenance."""

    generator: str
    seed: int
    blocks: int
    label: str = ""
    origin: str = "campaign"  # "regression" | "campaign"
    schema: int = field(default=SCHEMA_VERSION)

    def __post_init__(self) -> None:
        if self.generator not in GENERATORS:
            known = ", ".join(sorted(GENERATORS))
            raise ArtifactError(
                f"corpus entry names unknown generator {self.generator!r}; "
                f"known: {known}"
            )

    @property
    def key(self) -> str:
        """Content address over the program identity (not the label, so
        relabeling a case cannot duplicate it)."""
        return content_key(
            {
                "generator": self.generator,
                "seed": self.seed,
                "blocks": self.blocks,
                "schema": self.schema,
            }
        )

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "generator": self.generator,
            "seed": self.seed,
            "blocks": self.blocks,
            "label": self.label,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        try:
            schema = data["schema"]
            if schema != SCHEMA_VERSION:
                raise ArtifactError(
                    f"corpus entry schema {schema} unsupported "
                    f"(this build reads {SCHEMA_VERSION})"
                )
            return cls(
                generator=data["generator"],
                seed=int(data["seed"]),
                blocks=int(data["blocks"]),
                label=str(data.get("label", "")),
                origin=str(data.get("origin", "campaign")),
                schema=schema,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed corpus entry: {exc!r}") from exc


#: The pinned differential-fuzzing regressions.  Each seed once exposed a
#: pipeline bug; they stay in the corpus so the bugs stay dead:
#:
#: * 42363 — a G-squash rewinding past an open branch window left the
#:   stale window armed; its later closure restored wrong-path state.
#: * 200104 — a wrong-path store at the store-queue head committed to
#:   memory inside a branch window (nothing older blocked it).
#: * 200006 — a bypassing load was validated only against the *nearest*
#:   unresolved store; an older, slower-resolving aliasing store slipped
#:   its data past the load.
#: * 200058+ — the remaining failures of the first fuzzing campaign.
REGRESSION_ENTRIES: tuple[CorpusEntry, ...] = (
    CorpusEntry("diff-v1", 42363, 20,
                "stale branch window survives store squash", "regression"),
    CorpusEntry("diff-v1", 200104, 19,
                "wrong-path store commit inside branch window", "regression"),
    CorpusEntry("diff-v1", 200006, 26,
                "bypass misses older unresolved aliasing store", "regression"),
    CorpusEntry("diff-v1", 200058, 43, "campaign-0", "regression"),
    CorpusEntry("diff-v1", 200229, 39, "campaign-1", "regression"),
    CorpusEntry("diff-v1", 200322, 27, "campaign-2", "regression"),
    CorpusEntry("diff-v1", 200613, 38, "campaign-3", "regression"),
    CorpusEntry("diff-v1", 200860, 40, "campaign-4", "regression"),
)


class Corpus:
    """Filesystem-backed corpus, content-addressed like the result cache."""

    def __init__(self, root: str | Path = DEFAULT_CORPUS_DIR) -> None:
        self.root = Path(root)
        #: Corrupt entries moved to ``<root>/quarantine/`` by :meth:`entries`.
        self.quarantined = 0

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def add(self, entry: CorpusEntry) -> Path:
        """Persist ``entry`` atomically; adding a known case is a no-op."""
        path = self._entry_path(entry.key)
        if path.exists():
            return path
        return atomic_write_json(path, entry.to_dict())

    def entries(self) -> list[CorpusEntry]:
        """Every stored entry, sorted by content key (stable replay order).

        A corrupt file behaves as absent, but is quarantined under
        ``<root>/quarantine/`` with a reason file (and counted in
        :attr:`quarantined`) rather than deleted — the same discipline
        the result cache applies.
        """
        found: list[tuple[str, CorpusEntry]] = []
        if not self.root.exists():
            return []
        for path in sorted(self.root.glob("*/*.json")):
            if path.parent.name == QUARANTINE_DIR:
                continue
            try:
                entry = CorpusEntry.from_dict(
                    json.loads(path.read_bytes().decode("utf-8"))
                )
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    ArtifactError, OSError) as exc:
                if quarantine(self.root, path, f"corpus entry: {exc!r}"):
                    self.quarantined += 1
                continue
            found.append((entry.key, entry))
        return [entry for _, entry in sorted(found, key=lambda pair: pair[0])]

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(
            1 for path in self.root.glob("*/*.json")
            if path.parent.name != QUARANTINE_DIR
        )


def replay_order(corpus: Corpus | None = None) -> list[CorpusEntry]:
    """Entries every campaign replays before generating new programs:
    the built-in regressions first, then on-disk cases (deduplicated)."""
    ordered = list(REGRESSION_ENTRIES)
    if corpus is not None:
        known = {entry.key for entry in ordered}
        for entry in corpus.entries():
            if entry.key not in known:
                known.add(entry.key)
                ordered.append(entry)
    return ordered
