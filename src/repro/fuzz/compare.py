"""The shared architectural state comparator.

Every consumer that compares two executions of the same program — the
differential tests, the dual-execution harness, the leakage oracle —
goes through :func:`compare_architectural`, which owns the one semantic
rule that used to be a per-caller convention: **``Rdpru`` destination
registers are excluded** (the reference interpreter writes 0 where the
pipeline writes a cycle count; timing is not architectural state).

A mismatch is returned as a :class:`Divergence` value rather than raised,
so callers can render, serialize (findings JSONL) or shrink against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cpu.isa import (
    Alu,
    AluImm,
    Imul,
    ImulImm,
    Instruction,
    Load,
    Mov,
    MovImm,
    Rdpru,
)
from repro.fuzz.gen import REGS

__all__ = [
    "Divergence",
    "compare_architectural",
    "rdpru_destinations",
    "written_registers",
]

#: How many differing memory offsets a Divergence records at most.
_MAX_MEMORY_DIFFS = 16


def rdpru_destinations(instructions: Sequence[Instruction]) -> frozenset[str]:
    """Registers written by any ``Rdpru`` in the program (never compared)."""
    return frozenset(
        instruction.dst
        for instruction in instructions
        if isinstance(instruction, Rdpru)
    )


def written_registers(instructions: Sequence[Instruction]) -> frozenset[str]:
    """Every register the program writes (the widest comparable set)."""
    written: set[str] = set()
    for instruction in instructions:
        if isinstance(instruction, (MovImm, Mov, Alu, AluImm, Imul, ImulImm, Load, Rdpru)):
            written.add(instruction.dst)
    return frozenset(written)


@dataclass(frozen=True)
class Divergence:
    """One architectural disagreement between two executions."""

    #: register -> (value in run A, value in run B); missing reads as 0.
    registers: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: First differing byte offsets of the compared memory regions.
    memory_offsets: tuple[int, ...] = ()
    #: Total number of differing memory bytes (may exceed the recorded
    #: offsets above).
    memory_diff_bytes: int = 0
    #: Set when the two runs finished differently (ok / fault / limit).
    outcomes: tuple[str, str] | None = None

    def __bool__(self) -> bool:  # a Divergence is always a real mismatch
        return True

    def describe(self) -> str:
        parts = []
        if self.outcomes is not None:
            parts.append(f"outcomes differ: {self.outcomes[0]} vs {self.outcomes[1]}")
        for name in sorted(self.registers):
            a, b = self.registers[name]
            parts.append(f"{name}: {a:#x} vs {b:#x}")
        if self.memory_diff_bytes:
            offs = ", ".join(f"{off:#x}" for off in self.memory_offsets)
            parts.append(
                f"memory differs at {self.memory_diff_bytes} byte(s) "
                f"(first offsets: {offs})"
            )
        return "; ".join(parts) or "empty divergence"

    def to_detail(self) -> dict:
        """JSON-ready form for findings artifacts."""
        detail: dict = {}
        if self.outcomes is not None:
            detail["outcomes"] = list(self.outcomes)
        if self.registers:
            detail["registers"] = {
                name: [a, b] for name, (a, b) in sorted(self.registers.items())
            }
        if self.memory_diff_bytes:
            detail["memory_offsets"] = list(self.memory_offsets)
            detail["memory_diff_bytes"] = self.memory_diff_bytes
        return detail


def compare_architectural(
    instructions: Sequence[Instruction],
    regs_a: dict[str, int],
    regs_b: dict[str, int],
    mem_a: bytes | None = None,
    mem_b: bytes | None = None,
    tracked: Iterable[str] | None = None,
    outcome_a: str = "ok",
    outcome_b: str = "ok",
) -> Divergence | None:
    """Compare two executions' architectural state; None when identical.

    ``tracked`` selects the registers to compare (default: the generator
    result registers ``r0..r3``); ``Rdpru`` destinations found in
    ``instructions`` are always removed from it.  Memory regions are
    compared byte-wise when both are given.  Mismatched outcomes (one run
    faulted, the other completed) are themselves a divergence.
    """
    excluded = rdpru_destinations(instructions)
    names = sorted(set(tracked if tracked is not None else REGS) - excluded)

    if outcome_a != outcome_b:
        return Divergence(outcomes=(outcome_a, outcome_b))
    if outcome_a != "ok":
        # Both runs failed identically: architecturally equivalent.
        return None

    registers = {
        name: (regs_a.get(name, 0), regs_b.get(name, 0))
        for name in names
        if regs_a.get(name, 0) != regs_b.get(name, 0)
    }
    memory_offsets: tuple[int, ...] = ()
    memory_diff_bytes = 0
    if mem_a is not None and mem_b is not None and mem_a != mem_b:
        diffs = [
            off
            for off, (byte_a, byte_b) in enumerate(zip(mem_a, mem_b))
            if byte_a != byte_b
        ]
        if len(mem_a) != len(mem_b):
            diffs.append(min(len(mem_a), len(mem_b)))
        memory_diff_bytes = len(diffs)
        memory_offsets = tuple(diffs[:_MAX_MEMORY_DIFFS])

    if not registers and not memory_diff_bytes:
        return None
    return Divergence(
        registers=registers,
        memory_offsets=memory_offsets,
        memory_diff_bytes=memory_diff_bytes,
    )
