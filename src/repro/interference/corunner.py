"""Co-runner workload generation: seeded memory-op bursts.

A burst is a short program of loads/stores/store-to-load pairs over the
co-runner's private buffer.  Loads and stores displace shared cache
lines (the cache is keyed by physical address, and the co-runner's
frames are randomly placed, so its working set lands across sets);
store-to-load pairs additionally exercise the co-runner thread's own
predictors — and, when the burst runs on the *same* hardware thread
(the preemption path), they charge SSBP counters and occupy PSFP/SSBP
entries the victim thread's protocols rely on.
"""

from __future__ import annotations

import random

from repro.cpu.isa import Halt, Instruction, Load, MovImm, Program, Store

__all__ = ["CORUNNER_MIXES", "BURST_BUFFER_PAGES", "build_burst"]

#: Pages of private buffer each co-runner/interloper process maps.
BURST_BUFFER_PAGES = 16

#: Burst compositions: (load weight, store weight, stld-pair weight).
CORUNNER_MIXES: dict[str, tuple[int, int, int]] = {
    "loads": (1, 0, 0),
    "stores": (0, 1, 0),
    "mixed": (2, 1, 1),
    "stld": (0, 0, 1),
}


def build_burst(
    rng: random.Random,
    ops: int,
    mix: str,
    buffer_pages: int = BURST_BUFFER_PAGES,
) -> Program:
    """One seeded burst program of ``ops`` memory operations.

    Offsets are drawn uniformly over the buffer at line granularity;
    the caller supplies ``buf`` (the buffer base VA) in registers.  An
    stld pair counts as one operation (one store immediately consumed
    by an aliasing load — the pattern that drives predictor training).
    """
    try:
        weights = CORUNNER_MIXES[mix]
    except KeyError:
        raise ValueError(
            f"unknown co-runner mix {mix!r} (know {', '.join(CORUNNER_MIXES)})"
        ) from None
    span = buffer_pages * 4096 - 64
    kinds = rng.choices(("load", "store", "stld"), weights=weights, k=max(0, ops))
    instructions: list[Instruction] = [MovImm("v", 0x5A)]
    for kind in kinds:
        offset = rng.randrange(0, span, 64)
        if kind == "load":
            instructions.append(Load("t", base="buf", offset=offset))
        elif kind == "store":
            instructions.append(Store(base="buf", src="v", offset=offset))
        else:
            instructions.append(Store(base="buf", src="v", offset=offset))
            instructions.append(Load("t", base="buf", offset=offset))
    instructions.append(Halt())
    return Program(instructions, name=f"corunner-{mix}")
