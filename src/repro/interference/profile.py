"""Interference profiles: every noise knob in one frozen dataclass.

A profile is pure configuration — the :class:`~repro.interference.model.
InterferenceModel` owns the RNG and the machine hooks.  Profiles are
hashable and serializable so experiment cache keys and campaign
artifacts can name them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["InterferenceProfile", "PRESETS", "PRESET_ORDER", "get_profile"]


@dataclass(frozen=True)
class InterferenceProfile:
    """One system-noise environment, fully specified.

    Intensities are probabilities per victim/attacker program run (the
    granularity of the simulator); rates of 0 disable the mechanism
    entirely, so the ``quiet`` preset is a provable no-op.
    """

    name: str = "quiet"
    #: RNG seed for the model (composes with nothing else; one model =
    #: one deterministic disturbance schedule).
    seed: int = 0
    #: Probability that a co-runner burst executes on the SMT sibling
    #: before a run (pollutes the shared cache hierarchy).
    corunner_rate: float = 0.0
    #: Memory operations per co-runner burst.
    corunner_ops: int = 0
    #: Burst composition: a key of
    #: :data:`repro.interference.corunner.CORUNNER_MIXES`.
    corunner_mix: str = "loads"
    #: Probability that the run is preceded by an involuntary context
    #: switch to an interloper process on the same hardware thread
    #: (flushes PSFP, pollutes SSBP counters and displaces cache lines).
    preemption_rate: float = 0.0
    #: Memory operations the interloper performs while scheduled in.
    preemption_ops: int = 0
    #: DVFS-style drift: peak relative error of the slow timer ramp
    #: (a triangular wave over ``drift_period`` timer reads).
    timer_drift: float = 0.0
    #: Timer reads per full drift ramp (ignored when drift is 0).
    drift_period: int = 4096
    #: Per-read relative timer jitter (uniform, on top of the model's
    #: own ``timer_noise``; composes with ``mitigations.secure_timer``).
    timer_jitter: float = 0.0
    #: Probability that a PMC event count is perturbed by one after a
    #: run (sampling skid).
    pmc_noise: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("corunner_rate", "preemption_rate", "pmc_noise"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{field_name} must be a probability in [0, 1], got {value}"
                )
        for field_name in ("timer_drift", "timer_jitter"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 0.5:
                raise ValueError(
                    f"{field_name} must be in [0, 0.5], got {value}"
                )
        if self.corunner_ops < 0 or self.preemption_ops < 0:
            raise ValueError("operation counts cannot be negative")
        if self.drift_period < 1:
            raise ValueError(f"drift_period must be >= 1, got {self.drift_period}")

    @property
    def is_quiet(self) -> bool:
        """True when every disturbance mechanism is disabled."""
        return (
            self.corunner_rate == 0.0
            and self.preemption_rate == 0.0
            and self.timer_drift == 0.0
            and self.timer_jitter == 0.0
            and self.pmc_noise == 0.0
        )

    def with_seed(self, seed: int) -> "InterferenceProfile":
        return replace(self, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "corunner_rate": self.corunner_rate,
            "corunner_ops": self.corunner_ops,
            "corunner_mix": self.corunner_mix,
            "preemption_rate": self.preemption_rate,
            "preemption_ops": self.preemption_ops,
            "timer_drift": self.timer_drift,
            "drift_period": self.drift_period,
            "timer_jitter": self.timer_jitter,
            "pmc_noise": self.pmc_noise,
        }


#: The named presets, mildest to harshest.  ``quiet`` is the provable
#: no-op baseline; ``desktop`` models a lightly loaded interactive
#: machine; ``noisy-neighbor`` a busy co-tenant sharing the core;
#: ``adversarial`` a co-tenant actively thrashing cache, predictors and
#: scheduler while the clock ramps.
PRESETS: dict[str, InterferenceProfile] = {
    "quiet": InterferenceProfile(name="quiet"),
    "desktop": InterferenceProfile(
        name="desktop",
        corunner_rate=0.05,
        corunner_ops=8,
        corunner_mix="loads",
        preemption_rate=0.01,
        preemption_ops=4,
        timer_jitter=0.01,
        pmc_noise=0.01,
    ),
    "noisy-neighbor": InterferenceProfile(
        name="noisy-neighbor",
        corunner_rate=0.25,
        corunner_ops=24,
        corunner_mix="mixed",
        preemption_rate=0.03,
        preemption_ops=12,
        timer_drift=0.02,
        timer_jitter=0.02,
        pmc_noise=0.05,
    ),
    "adversarial": InterferenceProfile(
        name="adversarial",
        corunner_rate=0.6,
        corunner_ops=48,
        corunner_mix="stld",
        preemption_rate=0.08,
        preemption_ops=24,
        timer_drift=0.04,
        drift_period=2048,
        timer_jitter=0.04,
        pmc_noise=0.1,
    ),
}

#: Preset names in degradation order (mildest first) — the order the
#: robustness-curve experiments sweep and the monotonicity gate asserts.
PRESET_ORDER = tuple(PRESETS)


def get_profile(name: str, seed: int | None = None) -> InterferenceProfile:
    """Look up a preset by name, optionally re-seeded."""
    try:
        profile = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown interference preset {name!r} (know {', '.join(PRESETS)})"
        ) from None
    return profile if seed is None else profile.with_seed(seed)
