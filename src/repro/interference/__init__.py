"""Deterministic system-interference modeling (docs/interference.md).

The real-hardware attacks in the paper survive DVFS jitter, scheduler
preemption, SMT co-runners and sub-1% RDPRU noise; the simulated attack
stack of :mod:`repro.attacks` historically ran on a perfectly quiet
machine.  This package models the adversarial environment:

* :class:`InterferenceProfile` — one dataclass naming every noise knob
  (co-runner memory traffic, preemption rate, timer drift/jitter, PMC
  sampling noise) with the named presets ``quiet``, ``desktop``,
  ``noisy-neighbor`` and ``adversarial``;
* :class:`InterferenceModel` — a seeded model attached to a
  :class:`~repro.cpu.machine.Machine` that injects those disturbances
  around every program run, deterministically (same profile + seed =
  byte-identical campaign, whatever ``--jobs``).

The hardened attack protocols (robust calibration, bounded retries,
framing resync — see docs/interference.md) are what make the attacks
degrade gracefully instead of silently mis-extracting under it.
"""

from repro.interference.corunner import CORUNNER_MIXES, build_burst
from repro.interference.model import InterferenceModel
from repro.interference.profile import (
    PRESET_ORDER,
    PRESETS,
    InterferenceProfile,
    get_profile,
)

__all__ = [
    "CORUNNER_MIXES",
    "PRESET_ORDER",
    "PRESETS",
    "InterferenceModel",
    "InterferenceProfile",
    "build_burst",
    "get_profile",
]
