"""The interference model: seeded disturbances around every program run.

One model attaches to one :class:`~repro.cpu.machine.Machine` and hooks
its ``run`` facade (the machine calls :meth:`before_run`/:meth:`after_run`
around every scheduled program).  All disturbance decisions come from
one ``random.Random(profile.seed)``, and the simulator is
single-threaded, so a (machine seed, profile) pair produces one exact
disturbance schedule — reruns and ``--jobs`` fan-out are byte-identical.

Mechanisms (all optional, all off in the ``quiet`` preset):

* **SMT co-runner** — a burst of seeded memory ops runs on the sibling
  hardware thread before the victim's run, displacing shared cache
  lines (predictors are SMT-partitioned, so only the cache is shared —
  the Section IV-A finding);
* **preemption** — an interloper process is scheduled onto the *same*
  hardware thread and runs a burst: PSFP is flushed on both switches
  (Vulnerability 1's flush semantics), the interloper's store-to-load
  pairs charge SSBP counters that survive the switch back, and its
  working set displaces cache lines;
* **timer drift/jitter** — a DVFS-style triangular ramp plus per-read
  uniform jitter applied to attacker-visible timer readings (the
  :class:`~repro.attacks.runtime.AttackerStld` measurement path
  composes this with any :class:`~repro.mitigations.secure_timer.
  SecureTimer`);
* **PMC sampling noise** — occasional off-by-one skid on a random PMC
  event counter after a run.
"""

from __future__ import annotations

import random

from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.cpu.pmc import PmcEvent
from repro.errors import ReproError
from repro.interference.corunner import BURST_BUFFER_PAGES, build_burst
from repro.interference.profile import InterferenceProfile
from repro.osm.process import Process
from repro.telemetry.metrics import registry

__all__ = ["InterferenceModel"]

#: Seeded burst variants pre-built per mechanism at attach time: enough
#: variety to spray distinct line/entry sets, bounded so attach cost and
#: code-page usage stay constant.
_BURST_VARIANTS = 8


class InterferenceModel:
    """Attach/detachable disturbance injector for one machine."""

    def __init__(self, profile: InterferenceProfile) -> None:
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.machine: Machine | None = None
        self._active = False  # reentrancy guard: bursts must not recurse
        self._timer_reads = 0
        self._corunner: Process | None = None
        self._interloper: Process | None = None
        self._corunner_bursts: list[tuple[Program, dict[str, int]]] = []
        self._interloper_bursts: list[tuple[Program, dict[str, int]]] = []
        # Event tallies (also mirrored into the telemetry registry).
        self.preemptions = 0
        self.corunner_runs = 0
        self.pmc_perturbations = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, machine: Machine) -> "InterferenceModel":
        """Install the model on ``machine`` (one model per machine).

        A quiet profile installs nothing but the (identity) timer, so
        attaching ``quiet`` is a provable no-op: no processes are
        created, no RNG is consumed, and every run behaves exactly as
        on an unattached machine.
        """
        if self.machine is not None:
            raise ReproError("interference model is already attached")
        if getattr(machine, "interference", None) is not None:
            raise ReproError("machine already has an interference model")
        self.machine = machine
        if not self.profile.is_quiet:
            self._build_workloads(machine)
        machine.interference = self
        return self

    def detach(self) -> None:
        if self.machine is not None:
            self.machine.interference = None
            self.machine = None

    def _build_workloads(self, machine: Machine) -> None:
        profile = self.profile
        kernel = machine.kernel
        build_rng = random.Random(profile.seed ^ 0x5EED)
        if profile.corunner_rate and profile.corunner_ops:
            if len(machine.core.threads) < 2:
                raise ReproError(
                    "co-runner interference needs an SMT sibling thread "
                    "(model has one hardware thread)"
                )
            self._corunner = kernel.create_process("interference-corunner")
            self._corunner_bursts = self._burst_pool(
                machine, self._corunner, build_rng,
                profile.corunner_ops, profile.corunner_mix,
            )
        if profile.preemption_rate and profile.preemption_ops:
            self._interloper = kernel.create_process("interference-interloper")
            # The interloper mixes store-to-load pairs in even when the
            # co-runner mix is pure loads: the same-thread path is the
            # one that can charge the victim thread's SSBP counters.
            mix = profile.corunner_mix if profile.corunner_mix != "loads" else "mixed"
            self._interloper_bursts = self._burst_pool(
                machine, self._interloper, build_rng,
                profile.preemption_ops, mix,
            )

    def _burst_pool(
        self,
        machine: Machine,
        process: Process,
        build_rng: random.Random,
        ops: int,
        mix: str,
    ) -> list[tuple[Program, dict[str, int]]]:
        buf = machine.kernel.map_anonymous(process, pages=BURST_BUFFER_PAGES)
        pool = []
        for _ in range(_BURST_VARIANTS):
            burst = build_burst(build_rng, ops, mix)
            pool.append((machine.load_program(process, burst), {"buf": buf}))
        return pool

    # ------------------------------------------------------------------
    # Machine hooks
    # ------------------------------------------------------------------
    def before_run(self, process: Process, thread_id: int) -> None:
        """Called by the machine before scheduling every program run."""
        if self._active or self.machine is None:
            return
        profile = self.profile
        self._active = True
        try:
            if self._interloper is not None and process is not self._interloper:
                if self.rng.random() < profile.preemption_rate:
                    self._preempt(thread_id)
            if self._corunner is not None and process is not self._corunner:
                if self.rng.random() < profile.corunner_rate:
                    self._corunner_burst(thread_id)
        finally:
            self._active = False

    def after_run(self, thread_id: int) -> None:
        """Called by the machine after every program run completes."""
        if self._active or self.machine is None:
            return
        profile = self.profile
        if profile.pmc_noise and self.rng.random() < profile.pmc_noise:
            event = self.rng.choice(PmcEvent.ALL)
            self.machine.core.thread(thread_id).pmc.perturb(event)
            self.pmc_perturbations += 1
            registry().counter("interference.pmc_perturbations").inc()

    def _preempt(self, thread_id: int) -> None:
        """Involuntary context switch: interloper runs on this thread."""
        machine = self.machine
        program, regs = self._interloper_bursts[
            self.rng.randrange(len(self._interloper_bursts))
        ]
        machine.kernel.preempt(self._interloper, thread_id)
        machine.run(self._interloper, program, regs, thread_id=thread_id)
        self.preemptions += 1
        registry().counter("interference.preemptions").inc()

    def _corunner_burst(self, thread_id: int) -> None:
        """Co-runner burst on the SMT sibling (shared cache, private
        predictors)."""
        machine = self.machine
        sibling = thread_id ^ 1
        program, regs = self._corunner_bursts[
            self.rng.randrange(len(self._corunner_bursts))
        ]
        machine.run(self._corunner, program, regs, thread_id=sibling)
        self.corunner_runs += 1
        registry().counter("interference.corunner_bursts").inc()

    # ------------------------------------------------------------------
    # Timer path (pulled by the attacker measurement code)
    # ------------------------------------------------------------------
    def timer(self, cycles: int) -> int:
        """DVFS drift + per-read jitter over one raw cycle reading.

        The drift term is a triangular ramp over ``drift_period`` reads
        — slow against any one protocol phase, large against a whole
        campaign, which is exactly what makes stale calibrations fail
        and recalibration-on-drift necessary.
        """
        profile = self.profile
        if profile.timer_drift == 0.0 and profile.timer_jitter == 0.0:
            return cycles
        self._timer_reads += 1
        registry().counter("interference.timer_reads").inc()
        factor = 1.0
        if profile.timer_drift:
            pos = (self._timer_reads % profile.drift_period) / profile.drift_period
            factor += profile.timer_drift * (1.0 - abs(2.0 * pos - 1.0))
        if profile.timer_jitter:
            factor += self.rng.uniform(-profile.timer_jitter, profile.timer_jitter)
        return max(0, round(cycles * factor))

    def __repr__(self) -> str:
        return (
            f"InterferenceModel(profile={self.profile.name!r}, "
            f"preemptions={self.preemptions}, corunner={self.corunner_runs})"
        )
