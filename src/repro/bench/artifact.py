"""Schema-versioned benchmark artifacts (``BENCH_<label>.json``).

An artifact is one ``repro-bench run``'s results plus enough provenance
to interpret them later (schema version, label, iteration mode, python
version).  Artifacts are written with
:func:`repro.runtime.atomic.atomic_write_json` — same crash-safety and
canonical formatting as experiment artifacts — and compared with a
noise-aware threshold: a benchmark only counts as regressed when its
best-of-N throughput drops more than ``threshold`` *and* more than the
measured spread of either artifact, so a noisy box cannot fail CI on its
own.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.bench.timing import Measurement
from repro.errors import ArtifactError
from repro.runtime.atomic import atomic_write_json

__all__ = [
    "BENCH_SCHEMA",
    "BenchComparison",
    "compare_artifacts",
    "load_artifact",
    "make_artifact",
    "write_artifact",
]

#: Bump on any incompatible change to the artifact layout.
BENCH_SCHEMA = "repro-bench/v1"

#: Default regression threshold for ``repro-bench compare`` and the
#: ``make bench-smoke`` gate: fail when throughput drops more than 25%.
DEFAULT_THRESHOLD = 0.25


def make_artifact(
    measurements: list[Measurement], *, label: str, quick: bool
) -> dict[str, Any]:
    """Assemble the artifact payload for one benchmark run."""
    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "quick": quick,
        "python": platform.python_version(),
        "benchmarks": {m.name: m.to_dict() for m in measurements},
    }


def write_artifact(path: Path | str, payload: dict[str, Any]) -> None:
    atomic_write_json(Path(path), payload)


def load_artifact(path: Path | str) -> dict[str, Any]:
    """Read and validate a ``BENCH_*.json`` artifact."""
    import json

    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise ArtifactError(f"benchmark artifact not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"benchmark artifact {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        raise ArtifactError(
            f"benchmark artifact {path} has schema "
            f"{payload.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(payload.get("benchmarks"), dict):
        raise ArtifactError(f"benchmark artifact {path} has no benchmarks table")
    return payload


@dataclass(frozen=True)
class BenchComparison:
    """Per-benchmark outcome of ``compare_artifacts``.

    ``ratio`` is new/old throughput (>1 means faster).  ``regressed``
    applies the noise-aware rule described in the module docstring;
    benchmarks present on only one side have ``ratio`` ``None`` and never
    regress (they are reported so the caller can see coverage drift).
    """

    name: str
    unit: str
    old_ops_per_s: float | None
    new_ops_per_s: float | None
    ratio: float | None
    regressed: bool

    def format_row(self) -> str:
        def fmt(v: float | None) -> str:
            return f"{v:,.0f}" if v is not None else "-"

        ratio = f"{self.ratio:.2f}x" if self.ratio is not None else "-"
        flag = "  REGRESSED" if self.regressed else ""
        return (
            f"{self.name:<26} {fmt(self.old_ops_per_s):>14} "
            f"{fmt(self.new_ops_per_s):>14} {ratio:>8}{flag}"
        )


def compare_artifacts(
    old: dict[str, Any],
    new: dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[BenchComparison]:
    """Compare two artifacts benchmark by benchmark.

    The regression rule: ``new`` is regressed on a benchmark when its
    best-of-N throughput is below ``old``'s by more than ``threshold``,
    *and* the drop exceeds both runs' measured spread (so a drop that is
    within observed run-to-run noise does not fail).  Comparing a quick
    artifact against a full one is allowed — throughput is
    per-second, so iteration counts cancel — but the quick flags are
    carried in the artifacts for the reader.
    """
    rows: list[BenchComparison] = []
    old_b = old["benchmarks"]
    new_b = new["benchmarks"]
    for name in sorted(set(old_b) | set(new_b)):
        o, n = old_b.get(name), new_b.get(name)
        if o is None or n is None:
            present = n or o
            rows.append(
                BenchComparison(
                    name=name,
                    unit=present.get("unit", "ops"),
                    old_ops_per_s=o and o["ops_per_s"],
                    new_ops_per_s=n and n["ops_per_s"],
                    ratio=None,
                    regressed=False,
                )
            )
            continue
        old_ops = float(o["ops_per_s"])
        new_ops = float(n["ops_per_s"])
        ratio = new_ops / old_ops if old_ops > 0 else None
        drop = 1.0 - (ratio if ratio is not None else 1.0)
        noise = max(float(o.get("spread", 0.0)), float(n.get("spread", 0.0)))
        regressed = ratio is not None and drop > threshold and drop > noise
        rows.append(
            BenchComparison(
                name=name,
                unit=n.get("unit", "ops"),
                old_ops_per_s=old_ops,
                new_ops_per_s=new_ops,
                ratio=ratio,
                regressed=regressed,
            )
        )
    return rows
