"""``repro-bench``: run, record and compare performance benchmarks.

The performance front end (docs/performance.md):

* ``run`` — execute the curated microbenchmark set (or a subset),
  print a throughput table, and optionally write a schema-versioned
  ``BENCH_<label>.json`` artifact;
* ``compare`` — diff two artifacts with the noise-aware regression
  rule (exit 1 on regression, so ``make bench-smoke`` can gate CI);
* ``list`` — show the registered benchmarks and what they measure.

Exit codes follow the shared contract (see ``--help``); ``compare``
maps "regression found" onto code 1, the same "completed but not
clean" slot the fuzz and trace CLIs use.
"""

from __future__ import annotations

import sys
from pathlib import Path

from ..errors import ReproError
from ..runtime import exitcodes
from ..runtime.cliutil import apply_engine, build_parser
from .artifact import (
    DEFAULT_THRESHOLD,
    compare_artifacts,
    load_artifact,
    make_artifact,
    write_artifact,
)
from .micro import BENCHMARKS, QUICK_SCALE, profile_benchmark, run_benchmarks

__all__ = ["main"]

_EPILOG = """\
examples:
  repro-bench run --quick                      smoke run, table only
  repro-bench run --label seed --out BENCH_seed.json
  repro-bench run pipeline.steps hashfn.ipa_hash
  repro-bench compare BENCH_seed.json BENCH_now.json --threshold 0.25"""


def main(argv: list[str] | None = None) -> int:
    parser = build_parser(
        "repro-bench",
        "Benchmark the simulated core and compare results across changes.",
        epilog=_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run benchmarks and print/record results")
    run.add_argument("names", nargs="*", metavar="BENCH",
                     help="benchmarks to run (default: the full curated set)")
    run.add_argument("--quick", action="store_true",
                     help=f"CI smoke mode: ~{QUICK_SCALE}x fewer iterations")
    run.add_argument("--label", default="local",
                     help="label stored in the artifact (default: local)")
    run.add_argument("--out", default=None, metavar="PATH",
                     help="write a BENCH_<label>.json artifact here")
    run.add_argument("--profile", action="store_true",
                     help="also write a cProfile BENCH_<label>.<bench>.pstats "
                          "per benchmark next to the artifact (one warmed "
                          "repetition each; for attribution, not throughput)")

    cmp_ = sub.add_parser("compare", help="diff two benchmark artifacts")
    cmp_.add_argument("old", help="baseline BENCH_*.json")
    cmp_.add_argument("new", help="candidate BENCH_*.json")
    cmp_.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                      metavar="FRAC",
                      help="throughput drop that counts as a regression "
                           f"(default {DEFAULT_THRESHOLD})")

    sub.add_parser("list", help="list the registered benchmarks")

    args = parser.parse_args(argv)
    apply_engine(args)
    try:
        if args.command == "run":
            return _run(args)
        if args.command == "compare":
            return _compare(args)
        return _list()
    except KeyboardInterrupt:
        print("repro-bench: interrupted", file=sys.stderr)
        return exitcodes.EXIT_INTERRUPTED
    except (ReproError, OSError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return exitcodes.EXIT_USAGE


def _run(args) -> int:
    results = run_benchmarks(
        args.names or None,
        quick=args.quick,
        progress=lambda name: print(f"  .. {name}", file=sys.stderr),
    )
    mode = "quick" if args.quick else "full"
    print(f"{'benchmark':<26} {'best ops/s':>14} {'median':>14} "
          f"{'spread':>7}  unit        ({mode})")
    for m in results:
        print(f"{m.name:<26} {m.ops_per_s:>14,.0f} {m.median_ops_per_s:>14,.0f} "
              f"{m.spread:>6.1%}  {m.unit}")
    if args.out is not None:
        payload = make_artifact(results, label=args.label, quick=args.quick)
        write_artifact(args.out, payload)
        print(f"wrote {args.out}")
    if args.profile:
        base = Path(args.out).parent if args.out is not None else Path(".")
        for m in results:
            path = base / f"BENCH_{args.label}.{m.name}.pstats"
            profile_benchmark(m.name, quick=args.quick).dump_stats(path)
            print(f"wrote {path}")
    return exitcodes.EXIT_OK


def _compare(args) -> int:
    old = load_artifact(args.old)
    new = load_artifact(args.new)
    rows = compare_artifacts(old, new, threshold=args.threshold)
    print(f"{'benchmark':<26} {'old ops/s':>14} {'new ops/s':>14} {'ratio':>8}")
    for row in rows:
        print(row.format_row())
    regressed = [row.name for row in rows if row.regressed]
    if regressed:
        print(
            f"REGRESSION: {', '.join(regressed)} "
            f"(threshold {args.threshold:.0%}, noise-adjusted)",
            file=sys.stderr,
        )
        return exitcodes.EXIT_FAILURES
    print(f"ok: no benchmark regressed beyond {args.threshold:.0%}")
    return exitcodes.EXIT_OK


def _list() -> int:
    for spec in BENCHMARKS.values():
        print(f"{spec.name:<26} {spec.unit:<12} {spec.title}")
    return exitcodes.EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
