"""Measurement harness for short, deterministic Python workloads.

The benchmarks in :mod:`repro.bench.micro` are pure simulation — no I/O,
no network — so their noise comes from the OS scheduler, allocator state
and CPU frequency, all of which only ever make a run *slower* than the
code's true cost.  The standard estimator for that noise model is
**best-of-N**: run the workload ``repeats`` times and report the fastest
repetition's throughput (this is what ``timeit`` does and why).  The
median and spread are kept alongside so a comparison can tell a real
regression from a noisy box — see
:func:`repro.bench.artifact.compare_artifacts`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Measurement", "measure"]


@dataclass(frozen=True)
class Measurement:
    """Timing summary of one benchmark.

    ``ops_per_s`` is the throughput of the *fastest* repetition
    (best-of-N); ``median_ops_per_s`` the middle one.  ``spread`` is
    ``(best - worst) / best`` over the repetitions' throughputs — a
    unitless read of how noisy the measurement was (0.05 means the
    slowest repetition ran 5% below the best).
    """

    name: str
    unit: str
    ops_per_s: float
    median_ops_per_s: float
    spread: float
    repeats: int
    units_per_rep: float
    best_s: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "unit": self.unit,
            "ops_per_s": round(self.ops_per_s, 3),
            "median_ops_per_s": round(self.median_ops_per_s, 3),
            "spread": round(self.spread, 4),
            "repeats": self.repeats,
            "units_per_rep": self.units_per_rep,
            "best_s": round(self.best_s, 6),
        }


def measure(
    name: str,
    fn: Callable[[], float],
    *,
    unit: str = "ops",
    repeats: int = 5,
    warmup: int = 1,
) -> Measurement:
    """Time ``fn`` (which returns the units of work it performed).

    ``warmup`` untimed calls run first so one-time costs (imports, decode
    caches, predictor training, allocator growth) do not contaminate the
    timed repetitions — those costs are real, but they are paid once per
    process, not once per workload, and the benchmarks target steady
    state.  Workloads with persistent microarchitectural state may do
    marginally different unit counts per repetition; throughput is
    therefore computed per repetition, not from a shared unit count.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(max(0, warmup)):
        fn()
    samples: list[tuple[float, float]] = []  # (ops/s, elapsed)
    units = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        units = float(fn())
        elapsed = time.perf_counter() - started
        samples.append((units / elapsed if elapsed > 0 else 0.0, elapsed))
    by_ops = sorted(samples, reverse=True)
    best_ops, best_s = by_ops[0]
    median_ops = by_ops[len(by_ops) // 2][0]
    worst_ops = by_ops[-1][0]
    spread = (best_ops - worst_ops) / best_ops if best_ops > 0 else 0.0
    return Measurement(
        name=name,
        unit=unit,
        ops_per_s=best_ops,
        median_ops_per_s=median_ops,
        spread=spread,
        repeats=repeats,
        units_per_rep=units,
        best_s=best_s,
    )
