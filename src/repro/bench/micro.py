"""The curated microbenchmark set (``repro-bench run``).

One benchmark per layer that campaign throughput funnels through:

========================== =============================================
``pipeline.steps``          raw interpreter throughput (retired
                            instructions/s) on a speculation-heavy
                            fuzz-v1 program, machine built once
``pipeline.steps_compiled`` the same workload under the closure-
                            compiled engine; the ratio to
                            ``pipeline.steps`` is the compilation
                            speedup (>=1.4x, gated by ``make
                            perf-gate``)
``pipeline.snapshot_restore`` squash machinery: a program whose branches
                            mispredict on every run, so each run opens,
                            journals and rolls back transient windows
``pipeline.decode_cold``    first-run cost: a fresh :class:`Program`
                            object per run, so program decode is paid
                            every time (guards decode-cost regressions)
``predictor.access``        :meth:`PredictorUnit.predict` +
                            :meth:`PredictorUnit.access` pairs/s
``hashfn.ipa_hash``         the selection-hash fold over a cycling IPA
                            working set (the pipeline's re-hash pattern)
``fuzz.dual``               end-to-end differential throughput:
                            generate + dual-execute + compare, cases/s
``static.scan``             static gadget scan of the same program shape
                            ``fuzz.dual`` executes — the ratio is the
                            prefilter speedup (>=10x, tested)
``attack.channel``          covert-channel symbol transfer over the
                            cache transport (handshake excluded)
``attack.interference``     the same transfer with the ``adversarial``
                            interference preset attached — the model's
                            hook/burst/timer overhead relative to
                            ``attack.channel``
``campaign.experiments``    experiment-driver wall-clock (fig4 +
                            sec4-transient per iteration), experiments/s
``supervisor.batch_dispatch`` supervised-pool dispatch throughput for
                            homogeneous no-op tasks under adaptive
                            batching (pool spawn included): the
                            per-task supervision overhead campaigns pay
                            on top of real work
========================== =============================================

Every workload is seeded and side-effect-free outside its own machines,
so results are comparable run to run; noise handling lives in
:mod:`repro.bench.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.timing import Measurement, measure
from repro.core.hashfn import ipa_hash
from repro.core.predictor_unit import PredictorUnit
from repro.cpu.isa import Alu, AluImm, Halt, ImulImm, Jz, Label, MovImm, Program
from repro.cpu.machine import Machine
from repro.errors import ConfigError

__all__ = [
    "BenchSpec",
    "BENCHMARKS",
    "QUICK_SCALE",
    "profile_benchmark",
    "run_benchmarks",
]

#: Iteration scale-down applied by ``--quick`` (CI smoke mode).
QUICK_SCALE = 6


@dataclass(frozen=True)
class BenchSpec:
    """One registered microbenchmark."""

    name: str
    title: str
    unit: str
    factory: Callable[[int], Callable[[], float]]  # iters -> workload
    full_iters: int
    repeats: int = 5

    def iters(self, quick: bool) -> int:
        return max(1, self.full_iters // QUICK_SCALE) if quick else self.full_iters


# ----------------------------------------------------------------------
# Workload factories.  Each returns a zero-argument callable that does
# ``iters`` inner iterations and returns the units of work performed;
# machine construction stays outside the timed region.
# ----------------------------------------------------------------------

def _fuzz_machine(seed: int, gen_seed: int, blocks: int, engine: str | None = None):
    from repro.fuzz.gen import BUF_BYTES, BUF_PAGES, build_program
    from repro.fuzz.harness import DEFAULT_FILL

    machine = Machine(seed=seed, engine=engine)
    process = machine.kernel.create_process("bench")
    buf = machine.kernel.map_anonymous(process, pages=BUF_PAGES)
    machine.kernel.write(process, buf, DEFAULT_FILL)
    program = machine.load_program(
        process, Program(build_program("fuzz-v1", gen_seed, blocks), name="bench")
    )
    refill = DEFAULT_FILL
    assert len(refill) == BUF_BYTES
    return machine, process, program, buf, refill


def _steps_workload(iters: int, engine: str | None) -> Callable[[], float]:
    machine, process, program, buf, refill = _fuzz_machine(7, 5, 12, engine)
    regs = {"buf": buf}

    def run() -> float:
        retired = 0
        write = machine.kernel.write
        execute = machine.run
        for _ in range(iters):
            write(process, buf, refill)
            retired += execute(process, program, regs).retired
        return retired

    return run


def _pipeline_steps(iters: int) -> Callable[[], float]:
    return _steps_workload(iters, "interpreter")


def _pipeline_steps_compiled(iters: int) -> Callable[[], float]:
    """The exact ``pipeline.steps`` workload under the compiled engine.

    The two benchmarks execute bit-identically (same retired count, same
    events — see ``tests/cpu/test_engine_equivalence.py``), so their
    throughput ratio is the closure-compilation speedup with everything
    else held fixed."""
    return _steps_workload(iters, "compiled")


def _snapshot_program() -> Program:
    """Branches that mispredict on every run once the ``t0`` starting
    parity alternates run-to-run: each block opens a transient window
    (snapshot), executes wrong-path register writes (journal traffic)
    and squashes (restore)."""
    ins: list = [MovImm("one", 1), MovImm("w", 3)]
    for k in range(16):
        ins.append(Alu("t", "one", "t", "sub"))       # t = 1 - t (toggle)
        ins.append(ImulImm("c", "t", 1))              # delay the condition
        ins.append(ImulImm("c", "c", 1))
        ins.append(Jz("c", f"skip{k}"))
        ins.append(AluImm("w", "w", 1, "add"))        # wrong/right-path work
        ins.append(AluImm("w", "w", 3, "xor"))
        ins.append(MovImm("x", k))
        ins.append(Label(f"skip{k}"))
    ins.append(Halt())
    return Program(ins, name="bench-squash")


def _pipeline_snapshot_restore(iters: int) -> Callable[[], float]:
    machine = Machine(seed=3)
    process = machine.kernel.create_process("bench")
    program = machine.load_program(process, _snapshot_program())
    even = max(2, iters - (iters % 2))  # keep the parity pattern periodic

    def run() -> float:
        rollbacks = 0
        execute = machine.run
        for j in range(even):
            rollbacks += execute(process, program, {"t": j & 1}).rollbacks
        return rollbacks

    return run


def _pipeline_decode_cold(iters: int) -> Callable[[], float]:
    from repro.cpu.isa import clear_decode_cache
    from repro.fuzz.gen import BUF_PAGES, build_program
    from repro.fuzz.harness import DEFAULT_FILL

    machine = Machine(seed=11)
    process = machine.kernel.create_process("bench")
    buf = machine.kernel.map_anonymous(process, pages=BUF_PAGES)
    machine.kernel.write(process, buf, DEFAULT_FILL)
    instructions = build_program("fuzz-v1", 9, 10)
    template = machine.load_program(process, Program(instructions, name="bench"))

    def run() -> float:
        for _ in range(iters):
            # A fresh Program object at the same address, with the shared
            # content-keyed LRU dropped: every run pays layout + decode,
            # none can reuse a prior run's cached form (instance or
            # shared).  Without the clear this would measure the LRU hit
            # path, not decode.
            clear_decode_cache()
            fresh = Program(list(instructions), template.base_iva, "bench")
            machine.run(process, fresh, {"buf": buf})
        return iters

    return run


def _predictor_access(iters: int) -> Callable[[], float]:
    unit = PredictorUnit()
    pairs = [
        (ipa_hash(0x1000 + 8 * k), ipa_hash(0x9000 + 8 * k)) for k in range(256)
    ]

    def run() -> float:
        count = 0
        predict = unit.predict
        access = unit.access
        for _ in range(iters):
            for position, (store_hash, load_hash) in enumerate(pairs):
                predict(store_hash, load_hash)
                access(store_hash, load_hash, (position & 3) == 0)
                count += 2
        return count

    return run


def _hashfn_fold(iters: int) -> Callable[[], float]:
    # A 4K-entry working set cycled repeatedly: the pipeline's actual
    # usage pattern (the same store/load IPAs re-hashed every run).
    ipas = [0x7F00000000 + 64 * k for k in range(4096)]

    def run() -> float:
        fold = ipa_hash
        for _ in range(iters):
            for ipa in ipas:
                fold(ipa)
        return iters * len(ipas)

    return run


def _fuzz_dual(iters: int) -> Callable[[], float]:
    from repro.fuzz.harness import check_case

    def run() -> float:
        for seed in range(iters):
            check_case("fuzz-v1", 1000 + seed, 8)
        return iters

    return run


def _static_scan(iters: int) -> Callable[[], float]:
    """Static-scanner throughput on the same program shape ``fuzz.dual``
    executes dynamically — the ratio of the two is the prefilter's
    speedup (the >=10x contract tested in ``tests/static``)."""
    from repro.fuzz.gen import build_program
    from repro.static.gadgets import scan_program

    # Generation outside the timed region: the dynamic harness pays it
    # per case too, and the contract is about analysis vs execution.
    programs = [build_program("fuzz-v1", 1000 + seed, 8) for seed in range(iters)]

    def run() -> float:
        for instructions in programs:
            scan_program(instructions, mitigation="none")
        return len(programs)

    return run


def _attack_channel(iters: int) -> Callable[[], float]:
    from repro.attacks.capacity import CapacityConfig, build_channel
    from repro.attacks.coding import bytes_to_symbols, frame_symbols

    config = CapacityConfig(channel="cache", width=2, payload_bytes=4)
    channel = build_channel(config)  # machine + handshake outside the timer
    symbols = frame_symbols(
        bytes_to_symbols(b"\xa5\x5a\xc3\x3c", config.width), config.width
    )

    def run() -> float:
        transferred = 0
        transfer = channel.transfer
        for _ in range(iters):
            transferred += len(transfer(symbols))
        return transferred

    return run


def _attack_interference(iters: int) -> Callable[[], float]:
    """Cost of the interference model itself: the same cache-transport
    transfer as ``attack.channel`` but with the ``adversarial`` preset
    attached, so every inner ``machine.run`` pays the before/after hooks,
    co-runner bursts, preemptions and timer composition."""
    from repro.attacks.capacity import CapacityConfig, build_channel
    from repro.attacks.coding import bytes_to_symbols, frame_symbols

    config = CapacityConfig(
        channel="cache", width=2, payload_bytes=4, interference="adversarial"
    )
    channel = build_channel(config)  # machine + model + handshake untimed
    symbols = frame_symbols(
        bytes_to_symbols(b"\xa5\x5a\xc3\x3c", config.width), config.width
    )

    def run() -> float:
        transferred = 0
        transfer = channel.transfer
        for _ in range(iters):
            transferred += len(transfer(symbols))
        return transferred

    return run


def _campaign_experiments(iters: int) -> Callable[[], float]:
    from repro.experiments.runner import run_experiment

    names = ("fig4", "sec4-transient")

    def run() -> float:
        for _ in range(iters):
            for name in names:
                run_experiment(name)
        return iters * len(names)

    return run


def _bench_pool_task(payload):
    """Module-level no-op worker (must cross the process boundary)."""
    return payload


def _supervisor_batch_dispatch(iters: int) -> Callable[[], float]:
    """Supervised dispatch throughput with warm workers and batching.

    The tasks are no-ops, so the measurement isolates what the
    supervisor itself costs per task — pool spawn, batched pipe
    round-trips, deadline/crash bookkeeping — which is exactly the
    overhead task batching exists to amortize.  Uses the same
    ``jobs``/``timeout`` shape the fuzz campaign runs with.
    """
    from repro.runtime.supervisor import run_supervised

    def run() -> float:
        report = run_supervised(
            [(k, k) for k in range(iters)],
            _bench_pool_task,
            jobs=2,
            timeout=30.0,
            batch="adaptive",
        )
        if len(report.results) != iters or report.failures:
            raise ConfigError(
                f"supervisor bench lost tasks: {len(report.results)}/{iters} "
                f"completed, {len(report.failures)} failed"
            )
        return iters

    return run


#: The curated set, in display order.
BENCHMARKS: dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec("pipeline.steps", "pipeline interpreter throughput",
                  "steps/s", _pipeline_steps, full_iters=360),
        BenchSpec("pipeline.steps_compiled", "closure-compiled engine throughput",
                  "steps/s", _pipeline_steps_compiled, full_iters=360),
        BenchSpec("pipeline.snapshot_restore", "transient-window squash machinery",
                  "restores/s", _pipeline_snapshot_restore, full_iters=360),
        BenchSpec("pipeline.decode_cold", "first-run cost (fresh Program per run)",
                  "runs/s", _pipeline_decode_cold, full_iters=240),
        BenchSpec("predictor.access", "PSFP/SSBP predict+update",
                  "accesses/s", _predictor_access, full_iters=60),
        BenchSpec("hashfn.ipa_hash", "IPA selection-hash fold",
                  "hashes/s", _hashfn_fold, full_iters=40),
        BenchSpec("fuzz.dual", "differential harness end-to-end",
                  "cases/s", _fuzz_dual, full_iters=18, repeats=3),
        BenchSpec("static.scan", "static gadget scan per program",
                  "scans/s", _static_scan, full_iters=180, repeats=3),
        BenchSpec("attack.channel", "covert-channel symbol transfer",
                  "symbols/s", _attack_channel, full_iters=12, repeats=3),
        BenchSpec("attack.interference", "channel transfer under adversarial noise",
                  "symbols/s", _attack_interference, full_iters=12, repeats=3),
        BenchSpec("campaign.experiments", "experiment drivers end-to-end",
                  "experiments/s", _campaign_experiments, full_iters=3, repeats=3),
        BenchSpec("supervisor.batch_dispatch", "batched warm-worker dispatch",
                  "tasks/s", _supervisor_batch_dispatch, full_iters=192,
                  repeats=3),
    )
}


def profile_benchmark(name: str, *, quick: bool = False):
    """One warmed, profiled repetition of a registered benchmark.

    Returns the :class:`cProfile.Profile` with the stats collected; the
    CLI dumps it to a ``.pstats`` file next to the benchmark artifact.
    The workload is built and warmed exactly like a timed run, so the
    profile reflects steady state (decode/compile caches hot), not
    first-run setup.  Note that profiling overhead inflates call-heavy
    paths, so use the output for attribution, never for throughput.
    """
    import cProfile

    spec = BENCHMARKS.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARKS)}"
        )
    workload = spec.factory(spec.iters(quick))
    workload()  # warm: same policy as timing.measure
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    return profiler


def run_benchmarks(
    names: list[str] | None = None,
    *,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
) -> list[Measurement]:
    """Run the selected benchmarks (default: the full curated set)."""
    selected = list(BENCHMARKS) if not names else list(names)
    unknown = [name for name in selected if name not in BENCHMARKS]
    if unknown:
        raise ConfigError(
            f"unknown benchmark(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(BENCHMARKS)}"
        )
    results = []
    for name in selected:
        spec = BENCHMARKS[name]
        if progress is not None:
            progress(name)
        workload = spec.factory(spec.iters(quick))
        results.append(
            measure(name, workload, unit=spec.unit, repeats=spec.repeats)
        )
    return results
