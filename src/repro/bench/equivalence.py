"""The behaviour-preservation gate for performance work on the core.

Optimizing the interpreter is only allowed when it is *provably* a
no-op architecturally.  This module computes one SHA-256 digest over
every observable output the repo already pins:

* **experiments** — :func:`repro.experiments.runner.run_experiment`
  result dicts (tables, metrics, event classifications) at their
  catalog default seeds;
* **corpus** — the pinned regression corpus
  (:data:`repro.fuzz.corpus.REGRESSION_ENTRIES`) dual-executed under
  every mitigation, digesting registers, memory images, run statistics
  (cycles, events, rollbacks, retired) and any divergence;
* **traces** — the ``make trace-smoke`` golden targets re-recorded and
  hashed byte-for-byte (telemetry traces expose per-cycle pipeline
  internals, so they catch timing changes the architectural outputs
  would forgive).

``GOLDEN.json`` (committed at ``benchmarks/GOLDEN.json``) records the
digests produced by the unoptimized code; ``make equivalence-check``
and ``tests/bench/test_equivalence.py`` recompute and compare.  Any
mismatch means an optimization changed behaviour and must be fixed —
there is deliberately no tolerance knob here, unlike the throughput
comparison in :mod:`repro.bench.artifact`.

Two tiers keep the gate usable: ``fast`` (sub-cheap experiments +
full corpus + traces, ~15 s — runs in the test suite) and ``full``
(all 21 experiments, ~6 min — run before committing core changes).
"""

from __future__ import annotations

import hashlib
import tempfile
from pathlib import Path
from typing import Any

from repro.experiments.cache import content_key
from repro.runtime.atomic import atomic_write_json

__all__ = [
    "EQUIV_SCHEMA",
    "FAST_EXPERIMENTS",
    "TRACE_TARGETS",
    "compute_digest",
    "check_golden",
    "write_golden",
]

EQUIV_SCHEMA = "repro-equivalence/v1"

#: Experiments cheap enough for the in-suite gate (each < ~2.5 s).
FAST_EXPERIMENTS = (
    "fig2",
    "table1",
    "sec3-selection",
    "fig4",
    "table2",
    "sec4-isolation",
    "sec4-transient",
    "fig12",
    "table4",
    "covert-channel",
    "address-leak",
)

#: The golden-trace targets (same set ``make trace-smoke`` pins).
TRACE_TARGETS = ("stl", "case:fuzz-v1:5:12", "fig4")


def _experiments_digest(names: tuple[str, ...]) -> str:
    from repro.experiments.runner import run_experiment

    return content_key({name: run_experiment(name).to_dict() for name in names})


def _report_payload(report) -> dict[str, Any]:
    """Everything observable about one dual execution, JSON-safe."""
    pipe, ref = report.pipeline, report.reference
    return {
        "mitigation": report.mitigation,
        "model": report.model_name,
        "pipeline": {
            "status": pipe.status,
            "regs": dict(pipe.regs),
            "memory_sha256": hashlib.sha256(pipe.memory).hexdigest(),
            "result": pipe.result.to_dict() if pipe.result is not None else None,
        },
        "reference": {
            "status": ref.status,
            "regs": dict(ref.regs),
            "memory_sha256": hashlib.sha256(ref.memory).hexdigest(),
        },
        "divergence": None if report.divergence is None else report.divergence.describe(),
    }


def _corpus_digest() -> str:
    from repro.fuzz.corpus import REGRESSION_ENTRIES
    from repro.fuzz.harness import MITIGATIONS, check_entry

    payload: dict[str, Any] = {}
    for entry in REGRESSION_ENTRIES:
        for mitigation in MITIGATIONS:
            key = f"{entry.generator}:{entry.seed}:{entry.blocks}:{mitigation}"
            payload[key] = _report_payload(check_entry(entry, mitigation=mitigation))
    return content_key(payload)


def _traces_digest() -> str:
    from repro.telemetry.record import record_target, trace_path

    digests: dict[str, str] = {}
    with tempfile.TemporaryDirectory(prefix="repro-equiv-") as tmp:
        for target in TRACE_TARGETS:
            record_target(target, tmp)
            path = trace_path(tmp, target)
            digests[target] = hashlib.sha256(path.read_bytes()).hexdigest()
    return content_key(digests)


def compute_digest(tier: str = "fast") -> dict[str, Any]:
    """Recompute the gate's digests.  ``tier``: ``fast`` or ``full``."""
    if tier == "fast":
        names = FAST_EXPERIMENTS
    elif tier == "full":
        from repro.experiments.runner import EXPERIMENTS

        names = tuple(EXPERIMENTS)
    else:
        raise ValueError(f"unknown tier {tier!r}; use 'fast' or 'full'")
    sections = {
        "experiments": _experiments_digest(names),
        "corpus": _corpus_digest(),
        "traces": _traces_digest(),
    }
    return {
        "schema": EQUIV_SCHEMA,
        "tier": tier,
        "experiments": list(names),
        "sections": sections,
        "digest": content_key(sections),
    }


def write_golden(path: Path | str, tier: str = "fast") -> dict[str, Any]:
    payload = compute_digest(tier)
    atomic_write_json(Path(path), payload)
    return payload


def check_golden(path: Path | str) -> list[str]:
    """Recompute against a golden file; returns mismatch descriptions."""
    import json

    golden = json.loads(Path(path).read_text())
    if golden.get("schema") != EQUIV_SCHEMA:
        return [f"golden file schema {golden.get('schema')!r} != {EQUIV_SCHEMA!r}"]
    current = compute_digest(golden.get("tier", "fast"))
    problems = []
    for section, expected in golden["sections"].items():
        actual = current["sections"].get(section)
        if actual != expected:
            problems.append(
                f"{section}: digest changed ({expected[:12]}.. -> {str(actual)[:12]}..)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.equivalence`` — write or check the gate."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro.bench.equivalence",
        description="Behaviour-preservation gate for core optimizations.",
    )
    parser.add_argument("--golden", default="benchmarks/GOLDEN.json",
                        help="golden digest file (default benchmarks/GOLDEN.json)")
    parser.add_argument("--write", action="store_true",
                        help="record the current behaviour as golden")
    parser.add_argument("--tier", choices=("fast", "full"), default="fast")
    args = parser.parse_args(argv)
    if args.write:
        payload = write_golden(args.golden, args.tier)
        print(f"wrote {args.golden} (tier={args.tier}, digest {payload['digest'][:16]}..)")
        return 0
    problems = check_golden(args.golden)
    if problems:
        for problem in problems:
            print(f"equivalence MISMATCH: {problem}", file=sys.stderr)
        return 1
    print("equivalence ok: behaviour digests match the golden file")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
