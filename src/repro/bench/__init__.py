"""Performance benchmarking for the simulated core (``repro-bench``).

The ROADMAP's north star — "as fast as the hardware allows" — is only
meaningful if the repo can *measure* itself.  This package provides:

* :mod:`repro.bench.timing` — a small measurement harness (warmup,
  repeats, best-of-N) tuned for the noise profile of short Python
  workloads;
* :mod:`repro.bench.micro` — the curated microbenchmark set covering
  every layer a campaign funnels through: raw pipeline stepping,
  snapshot/rollback machinery, predictor updates, the selection hash,
  dual-execution fuzz throughput and experiment-campaign wall-clock;
* :mod:`repro.bench.artifact` — schema-versioned ``BENCH_<label>.json``
  artifacts (written via :func:`repro.runtime.atomic.atomic_write_json`)
  and the noise-aware comparison used by ``repro-bench compare`` and the
  ``make bench-smoke`` CI gate;
* :mod:`repro.bench.equivalence` — the behaviour-preservation gate: a
  digest of every observable output (experiment artifacts, the pinned
  fuzz corpus replayed under every mitigation, golden telemetry traces)
  that must stay byte-identical across performance work on the core;
* :mod:`repro.bench.cli` — the ``repro-bench`` console script
  (``run`` / ``compare`` / ``list``), sharing the 0/1/2/3 exit-code
  contract of the other repro CLIs.

See ``docs/performance.md`` for the workflow (profiling recipes,
baseline-update policy, regression triage).
"""

from repro.bench.artifact import (
    BENCH_SCHEMA,
    BenchComparison,
    compare_artifacts,
    load_artifact,
    make_artifact,
    write_artifact,
)
from repro.bench.micro import BENCHMARKS, QUICK_SCALE, BenchSpec, run_benchmarks
from repro.bench.timing import Measurement, measure

__all__ = [
    "BENCH_SCHEMA",
    "BENCHMARKS",
    "QUICK_SCALE",
    "BenchComparison",
    "BenchSpec",
    "Measurement",
    "compare_artifacts",
    "load_artifact",
    "make_artifact",
    "measure",
    "run_benchmarks",
    "write_artifact",
]
