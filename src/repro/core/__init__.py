"""The paper's primary contribution: AMD speculative memory access predictors.

This package models the two predictors the paper reverse engineers —
PSFP (Predictive Store Forwarding Predictor) and SSBP (Speculative Store
Bypass Predictor) — along with their shared counter state machine
(TABLE I), the IPA-selection hash (Section III-C) and the per-platform
configuration (TABLE III).
"""

from repro.core.config import (
    CpuModel,
    LatencyModel,
    ZEN3_MODELS,
    default_model,
    get_model,
    zen2_model,
)
from repro.core.counters import (
    C0_MAX,
    C1_MAX,
    C2_MAX,
    C3_MAX,
    C4_MAX,
    CounterState,
    SaturatingCounter,
)
from repro.core.exec_types import (
    PMC_PROFILE,
    TIMING_CLASS,
    ExecType,
    PmcProfile,
    TimingClass,
    classify_exec_type,
)
from repro.core.hashfn import (
    HASH_BITS,
    IPA_BITS,
    STRIDE,
    collision_offset,
    hash_from_frame_offset,
    ipa_hash,
    xor_profile,
)
from repro.core.predictor_unit import AccessResult, PredictorUnit
from repro.core.psfp import PSFP_ENTRIES, Psfp, PsfpEntry
from repro.core.spec_ctrl import PSFD_BIT, SSBD_BIT, SpecCtrl
from repro.core.ssbp import SSBP_SETS, SSBP_WAYS, Ssbp, SsbpEntry, set_index
from repro.core.state_machine import (
    PSF_C1_THRESHOLD,
    Prediction,
    StateName,
    Transition,
    classify_state,
    g_event_state,
    iter_sequence,
    predict,
    run_sequence,
    transition,
)

__all__ = [
    "AccessResult",
    "C0_MAX",
    "C1_MAX",
    "C2_MAX",
    "C3_MAX",
    "C4_MAX",
    "CounterState",
    "CpuModel",
    "ExecType",
    "HASH_BITS",
    "IPA_BITS",
    "LatencyModel",
    "PMC_PROFILE",
    "PSFD_BIT",
    "PSFP_ENTRIES",
    "PSF_C1_THRESHOLD",
    "PmcProfile",
    "Prediction",
    "PredictorUnit",
    "Psfp",
    "PsfpEntry",
    "SSBD_BIT",
    "SSBP_SETS",
    "SSBP_WAYS",
    "STRIDE",
    "SaturatingCounter",
    "SpecCtrl",
    "Ssbp",
    "SsbpEntry",
    "StateName",
    "TIMING_CLASS",
    "TimingClass",
    "Transition",
    "ZEN3_MODELS",
    "classify_exec_type",
    "classify_state",
    "collision_offset",
    "default_model",
    "g_event_state",
    "get_model",
    "hash_from_frame_offset",
    "ipa_hash",
    "iter_sequence",
    "predict",
    "run_sequence",
    "set_index",
    "transition",
    "xor_profile",
    "zen2_model",
]
