"""Saturating counters and the five-counter predictor state.

The speculative memory access predictors recovered by the paper are built
from five saturating counters (TABLE I):

========  =======  ==========================================================
Counter   Width    Role
========  =======  ==========================================================
``C0``    3 bits   Aliasing confidence for a (store IPA, load IPA) pair.
                   Prediction is "aliasing" while ``C0 > 0`` (jointly with
                   ``C3``).  Set to 4 by a mispredicted bypass (type G).
``C1``    5 bits   PSF-enable gate.  Predictive store forwarding is allowed
                   only while ``C1 <= 12``; ``C1`` rises by 4 on each
                   non-aliasing execution and falls by 1 on each aliasing
                   execution.
``C2``    2 bits   PSF aggressiveness budget; decremented when a predictive
                   forward turns out wrong (type D).  ``C2 = 0`` with
                   ``C0 > 0`` is the *block* state.
``C3``    6 bits   Aliasing stickiness shared per load IPA (SSBP).  While
                   ``C3 > 0`` the prediction stays "aliasing"; each
                   non-aliasing execution drains it by 1 (or 2 in the
                   PSF-enabled S2 state).
``C4``    2 bits   Mispredicted-bypass (type G) event counter per load IPA.
                   Once it saturates at 3, the next G event charges ``C3``
                   to 15 so that at least 15 non-aliasing executions are
                   needed to flip the prediction back.
========  =======  ==========================================================

``C0``–``C2`` live in a PSFP entry; ``C3``–``C4`` live in an SSBP entry.
This module only provides the value containers; the transition rules are in
:mod:`repro.core.state_machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "C0_MAX",
    "C1_MAX",
    "C2_MAX",
    "C3_MAX",
    "C4_MAX",
    "CounterState",
    "SaturatingCounter",
    "clamp",
]

#: Upper bounds for each counter.  The paper gives ``C0 <= 4`` (TABLE I
#: footnote *), ``C3 <= 32`` (footnote **) and 2-bit ``C4`` (TABLE IV);
#: ``C1``/``C2`` bounds are our documented conventions (DESIGN.md section 2).
C0_MAX = 4
C1_MAX = 31
C2_MAX = 3
C3_MAX = 32
C4_MAX = 3


def clamp(value: int, lo: int, hi: int) -> int:
    """Clamp ``value`` into the inclusive range [``lo``, ``hi``]."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


class SaturatingCounter:
    """A mutable saturating counter with inclusive bounds.

    >>> c = SaturatingCounter(maximum=4)
    >>> c.add(10).value
    4
    >>> c.sub(99).value
    0
    """

    __slots__ = ("_value", "minimum", "maximum")

    def __init__(self, value: int = 0, *, minimum: int = 0, maximum: int) -> None:
        if minimum > maximum:
            raise ValueError(f"minimum {minimum} exceeds maximum {maximum}")
        self.minimum = minimum
        self.maximum = maximum
        self._value = clamp(value, minimum, maximum)

    @property
    def value(self) -> int:
        return self._value

    @value.setter
    def value(self, new: int) -> None:
        self._value = clamp(new, self.minimum, self.maximum)

    def add(self, amount: int = 1) -> "SaturatingCounter":
        self.value = self._value + amount
        return self

    def sub(self, amount: int = 1) -> "SaturatingCounter":
        self.value = self._value - amount
        return self

    def reset(self) -> "SaturatingCounter":
        self._value = clamp(0, self.minimum, self.maximum)
        return self

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SaturatingCounter):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"SaturatingCounter({self._value}, max={self.maximum})"


@dataclass(frozen=True, slots=True)
class CounterState:
    """An immutable snapshot of the five predictor counters.

    The state machine transition function consumes and produces values of
    this type.  All constructors clamp, so any ``CounterState`` is valid.
    (``slots=True`` because predictor updates allocate one of these per
    store-load pair — the hottest allocation in the simulator after the
    pipeline's own records.)
    """

    c0: int = 0
    c1: int = 0
    c2: int = 0
    c3: int = 0
    c4: int = 0

    def __post_init__(self) -> None:
        # In-range values (the overwhelmingly common case: every TABLE I
        # transition moves counters by small steps) skip the frozen-slot
        # rewrite entirely; only out-of-range fields pay a __setattr__.
        if not 0 <= self.c0 <= C0_MAX:
            object.__setattr__(self, "c0", clamp(self.c0, 0, C0_MAX))
        if not 0 <= self.c1 <= C1_MAX:
            object.__setattr__(self, "c1", clamp(self.c1, 0, C1_MAX))
        if not 0 <= self.c2 <= C2_MAX:
            object.__setattr__(self, "c2", clamp(self.c2, 0, C2_MAX))
        if not 0 <= self.c3 <= C3_MAX:
            object.__setattr__(self, "c3", clamp(self.c3, 0, C3_MAX))
        if not 0 <= self.c4 <= C4_MAX:
            object.__setattr__(self, "c4", clamp(self.c4, 0, C4_MAX))

    def with_updates(self, **changes: int) -> "CounterState":
        """Return a copy with the given counters replaced (and clamped)."""
        return replace(self, **changes)

    @property
    def is_initial(self) -> bool:
        """True when every counter is zero (the reset state)."""
        return self.c0 == 0 and self.c1 == 0 and self.c2 == 0 and self.c3 == 0 and self.c4 == 0

    @property
    def psfp_part(self) -> tuple[int, int, int]:
        """The counters stored in a PSFP entry."""
        return (self.c0, self.c1, self.c2)

    @property
    def ssbp_part(self) -> tuple[int, int]:
        """The counters stored in an SSBP entry."""
        return (self.c3, self.c4)

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        return (self.c0, self.c1, self.c2, self.c3, self.c4)

    def __str__(self) -> str:
        return f"(C0={self.c0}, C1={self.c1}, C2={self.c2}, C3={self.c3}, C4={self.c4})"
