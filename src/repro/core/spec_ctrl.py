"""The ``SPEC_CTRL`` model-specific register (paper Section VI-A).

Two bits matter for this study:

* bit 2 — **SSBD** (Speculative Store Bypass Disable).  When set, every
  load is serialized behind preceding stores: the predictors behave as if
  pinned in the Block state (``phi(n) = E``, ``phi(a) = A``), no counter
  updates occur, and no exploitable transient window exists.  This is the
  effective (but expensive) mitigation.
* bit 7 — **PSFD** (Predictive Store Forwarding Disable).  The paper finds
  that on all four tested platforms the predictors *continue to function*
  with PSFD set, so the attacks are not mitigated.  We model PSFD
  faithfully as observable-but-ineffective.
"""

from __future__ import annotations

__all__ = ["SSBD_BIT", "PSFD_BIT", "SpecCtrl"]

SSBD_BIT = 2
PSFD_BIT = 7


class SpecCtrl:
    """A per-core SPEC_CTRL register with named accessors for SSBD/PSFD."""

    def __init__(self, value: int = 0) -> None:
        self.value = value

    @property
    def ssbd(self) -> bool:
        return bool(self.value >> SSBD_BIT & 1)

    @ssbd.setter
    def ssbd(self, enabled: bool) -> None:
        self._set_bit(SSBD_BIT, enabled)

    @property
    def psfd(self) -> bool:
        return bool(self.value >> PSFD_BIT & 1)

    @psfd.setter
    def psfd(self, enabled: bool) -> None:
        self._set_bit(PSFD_BIT, enabled)

    def _set_bit(self, bit: int, enabled: bool) -> None:
        if enabled:
            self.value |= 1 << bit
        else:
            self.value &= ~(1 << bit)

    def __repr__(self) -> str:
        return f"SpecCtrl(ssbd={self.ssbd}, psfd={self.psfd})"
