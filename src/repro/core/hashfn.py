"""The predictor-selection hash function (paper Section III-C.2).

The predictors are selected by the *instruction physical address* (IPA) of
the load (and, for PSFP, also of the store).  A 48-bit IPA is compressed to
12 bits by XOR-folding groups of 4 bits at a stride of 12:

    h_i = IPA_i  XOR  IPA_{i+12}  XOR  IPA_{i+24}  XOR  IPA_{i+36}

for ``i`` in 0..11.  Equivalently ``h = fold XOR of the four 12-bit chunks``.

Because the low 12 bits of the IPA are the page offset ``O`` and the upper
36 bits the page frame ``F``, this is also

    h_i = O_i  XOR  F_i  XOR  F_{i+12}  XOR  F_{i+24}

which is the form used in the paper's collision-feasibility proof
(Section IV-B.1): for any target hash and any executable page, some page
offset produces a collision, hence at most 4096 attempts are needed.

A ``salt`` parameter implements the randomized-selection mitigation of
Section VI-B.  Crucially, the mitigation must apply a *keyed non-linear
mix* before folding: a plain XOR premix commutes with the linear fold, so
any two addresses that collide under one key collide under every key —
code-sliding collisions would survive re-keying untouched.  With the
non-linear mix, re-keying (e.g. per context switch) re-shuffles the
collision structure and strands previously found collisions.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "HASH_BITS",
    "IPA_BITS",
    "STRIDE",
    "ipa_hash",
    "hash_from_frame_offset",
    "collision_offset",
    "xor_profile",
]

#: Width of the hash output in bits.
HASH_BITS = 12
#: Width of an instruction physical address in bits.
IPA_BITS = 48
#: Fold stride: bits ``i, i+12, i+24, i+36`` are XORed together.
STRIDE = 12

_MASK = (1 << HASH_BITS) - 1
_IPA_MASK = (1 << IPA_BITS) - 1
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


_U64 = (1 << 64) - 1


def _keyed_mix(value: int, salt: int) -> int:
    """A splitmix64-style keyed permutation of the IPA (mitigation only).

    Non-linearity is the point: see the module docstring.
    """
    x = (value ^ (salt * 0x9E3779B97F4A7C15)) & _U64
    x = (x * 0xBF58476D1CE4E5B9) & _U64
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & _U64
    x ^= x >> 29
    return x & _IPA_MASK


@lru_cache(maxsize=1 << 16)
def ipa_hash(ipa: int, salt: int = 0) -> int:
    """Compress a 48-bit IPA into the 12-bit predictor selector.

    ``salt = 0`` is the hardware hash the paper recovered (a pure XOR
    fold); a non-zero salt models the randomized-selection mitigation
    (keyed non-linear mix before the fold).

    The fold is a pure function of ``(ipa, salt)`` and the pipeline
    re-hashes the same handful of store/load IPAs on every one of the
    thousands of runs an experiment performs, so results are memoized
    (an LRU large enough that a campaign's working set never cycles).

    >>> ipa_hash(0)
    0
    >>> ipa_hash(0x001_001_001_001)  # the same bit in all four chunks
    0
    """
    if ipa < 0:
        raise ValueError(f"IPA must be non-negative, got {ipa}")
    value = ipa & _IPA_MASK
    if salt:
        value = _keyed_mix(value, salt & _U64)
    folded = 0
    while value:
        folded ^= value & _MASK
        value >>= STRIDE
    return folded


def hash_from_frame_offset(frame: int, offset: int, salt: int = 0) -> int:
    """Hash of the IPA composed of a physical page ``frame`` and ``offset``.

    ``frame`` is the physical page number (36 bits), ``offset`` the byte
    offset within the 4 KiB page.
    """
    if not 0 <= offset < PAGE_SIZE:
        raise ValueError(f"page offset out of range: {offset}")
    return ipa_hash((frame << PAGE_SHIFT) | offset, salt)


def collision_offset(target_hash: int, frame: int, salt: int = 0) -> int:
    """Page offset within physical ``frame`` whose IPA hashes to ``target_hash``.

    This is the constructive form of the paper's Vulnerability 2 argument:
    the page-offset bits enter the hash linearly (one XOR each), so any
    target value is reachable within one page.  An attacker cannot compute
    this directly (it needs the frame number); the library uses it as a
    ground-truth oracle in tests, while attacks search by probing.
    """
    if not 0 <= target_hash <= _MASK:
        raise ValueError(f"hash out of range: {target_hash}")
    if salt == 0:
        # Linear case: the offset bits enter the fold directly.
        return target_hash ^ hash_from_frame_offset(frame, 0)
    # Keyed (mitigated) hash: no algebraic shortcut — search the page.
    for offset in range(PAGE_SIZE):
        if hash_from_frame_offset(frame, offset, salt) == target_hash:
            return offset
    raise ValueError(
        f"no offset in frame {frame:#x} reaches hash {target_hash:#x} "
        f"under salt {salt:#x}"
    )


def xor_profile(ipa_a: int, ipa_b: int) -> list[int]:
    """Per-output-bit XOR parity of two IPAs, the quantity plotted in Fig 4.

    Returns a 12-element list; element ``i`` is the XOR of bits
    ``i, i+12, i+24, i+36`` of ``ipa_a XOR ipa_b``.  Two IPAs collide under
    :func:`ipa_hash` exactly when the profile is all zeros, which is the
    "identical XOR values at stride 12" property the paper observed on
    colliding address pairs.
    """
    diff = (ipa_a ^ ipa_b) & _IPA_MASK
    return [(diff >> i & 1) ^ (diff >> (i + 12) & 1) ^ (diff >> (i + 24) & 1)
            ^ (diff >> (i + 36) & 1) for i in range(HASH_BITS)]
