"""The combined speculative memory access predictor unit (paper Fig 6).

One :class:`PredictorUnit` is the per-hardware-thread machinery that the
paper reverse engineers: a PSFP (selected by both hashed IPAs) and an SSBP
(selected by the hashed load IPA) whose five counters jointly drive the
TABLE I state machine.

The unit is deliberately unaware of virtual memory, processes or the
pipeline: it consumes pre-hashed IPAs and aliasing ground truth and
produces predictions, execution types and counter updates.  Higher layers
(:mod:`repro.cpu`, :mod:`repro.osm`) decide *when* to consult it, when to
flush what (context switch: PSFP only; suspend: both) and how updates made
inside a transient window persist (they always do — Vulnerability 4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import lru_cache

from repro.core.config import CpuModel, default_model
from repro.core.counters import CounterState
from repro.core.exec_types import ExecType
from repro.core.psfp import Psfp
from repro.core.spec_ctrl import SpecCtrl
from repro.core.ssbp import Ssbp
from repro.core.state_machine import (
    Prediction,
    StateName,
    classify_state,
    predict as predict_state,
    transition,
)
from repro.telemetry.events import PredictorTransitionEvent

__all__ = ["AccessResult", "PredictorUnit"]


@dataclass(frozen=True)
class AccessResult:
    """Everything the pipeline needs to know about one store-load pair."""

    exec_type: ExecType
    prediction: Prediction
    state_name: StateName
    before: CounterState
    after: CounterState


_SSBD_BLOCK = Prediction(aliasing=True, psf_forward=False, sticky=False)

#: Interned :class:`CounterState` values keyed by their counter tuple.
#: ``state_for`` assembles one state per racing load; interning makes the
#: repeat assembly a dict probe (and keeps the lru_cache keys below shared
#: objects).  CounterState is frozen, so sharing is safe; the domain is the
#: clamped counter product, the same bound the state-machine caches rely on.
_STATES: dict[tuple[int, int, int, int, int], CounterState] = {}


@lru_cache(maxsize=None)
def _pair_outcome(before: CounterState, aliasing: bool) -> AccessResult:
    """The SSBD-off outcome of one pair: pure in ``(before, aliasing)``.

    Prediction, TABLE I transition and the resulting :class:`AccessResult`
    depend only on the incoming counter state and the ground truth, so the
    whole bundle is memoized; :meth:`PredictorUnit.access` applies the
    table writes and bookkeeping around the cached value.
    """
    result = transition(before, aliasing)
    return AccessResult(
        exec_type=result.exec_type,
        prediction=predict_state(before),
        state_name=result.state_name,
        before=before,
        after=result.state,
    )


class PredictorUnit:
    """PSFP + SSBP + TABLE I transition logic for one hardware thread."""

    def __init__(
        self,
        model: CpuModel | None = None,
        spec_ctrl: SpecCtrl | None = None,
        hash_salt: int = 0,
    ) -> None:
        self.model = model or default_model()
        self.spec_ctrl = spec_ctrl or SpecCtrl()
        #: Salt for the randomized-selection mitigation; callers that hash
        #: IPAs themselves must use the same salt (see repro.mitigations).
        self.hash_salt = hash_salt
        self.psfp = Psfp(self.model.psfp_entries)
        self.ssbp = Ssbp(self.model.ssbp_sets, self.model.ssbp_ways)
        self.exec_type_counts: Counter[ExecType] = Counter()
        self.context_switches = 0
        self.suspends = 0
        #: Telemetry attachment (repro.telemetry): the pipeline installs a
        #: tracer here when recording and refreshes ``trace_cycle`` before
        #: each access so transition events carry pipeline time.  ``None``
        #: means disabled — access() pays one identity test, nothing more.
        self.trace = None
        self.trace_thread = 0
        self.trace_cycle = 0

    # ------------------------------------------------------------------
    # State assembly and prediction
    # ------------------------------------------------------------------
    def state_for(self, store_hash: int, load_hash: int) -> CounterState:
        """Assemble the five-counter state for one (store, load) pair.

        On a core without PSF hardware (Zen 2) there is no PSFP: the
        pair counters read as zero and are never written, leaving only
        the SSBP dynamics (Initialize / Load-From-Cache / S2 states).
        """
        if self.model.psf_supported:
            c0, c1, c2 = self.psfp.counters(store_hash, load_hash)
        else:
            c0 = c1 = c2 = 0
        c3, c4 = self.ssbp.counters(load_hash)
        key = (c0, c1, c2, c3, c4)
        state = _STATES.get(key)
        if state is None:
            state = _STATES[key] = CounterState(c0=c0, c1=c1, c2=c2, c3=c3, c4=c4)
        return state

    def predict(self, store_hash: int, load_hash: int) -> Prediction:
        """What the unit will do for the next pair at these IPAs."""
        if self.spec_ctrl.ssbd:
            return _SSBD_BLOCK
        return predict_state(self.state_for(store_hash, load_hash))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def access(
        self, store_hash: int, load_hash: int, aliasing: bool
    ) -> AccessResult:
        """Execute one store-load pair: predict, classify, update counters.

        This is called for architectural *and* transient executions alike;
        predictor updates are never rolled back (Vulnerability 4).
        """
        before = self.state_for(store_hash, load_hash)
        if self.spec_ctrl.ssbd:
            # Loads serialize behind stores; the unit is pinned in the
            # Block state and learns nothing (Section VI-A).
            exec_type = ExecType.A if aliasing else ExecType.E
            self.exec_type_counts[exec_type] += 1
            if self.trace is not None:
                self._emit_transition(
                    store_hash, load_hash, aliasing, exec_type,
                    classify_state(before), StateName.BLOCK, before, before,
                )
            return AccessResult(
                exec_type=exec_type,
                prediction=_SSBD_BLOCK,
                state_name=StateName.BLOCK,
                before=before,
                after=before,
            )

        outcome = _pair_outcome(before, aliasing)
        after = outcome.after
        # Entries are allocated only by a mispredicted bypass (type G);
        # other events update live entries but never claim a new slot.
        allocate = outcome.exec_type is ExecType.G
        if self.model.psf_supported:
            self.psfp.update(
                store_hash, load_hash, after.c0, after.c1, after.c2, allocate=allocate
            )
        self.ssbp.update(load_hash, after.c3, after.c4, allocate=allocate)
        self.exec_type_counts[outcome.exec_type] += 1
        if self.trace is not None:
            self._emit_transition(
                store_hash, load_hash, aliasing, outcome.exec_type,
                classify_state(before), outcome.state_name, before, after,
            )
        return outcome

    def _emit_transition(
        self,
        store_hash: int,
        load_hash: int,
        aliasing: bool,
        exec_type: ExecType,
        state_before: StateName,
        state_after: StateName,
        before: CounterState,
        after: CounterState,
    ) -> None:
        """Emit one TABLE I edge as observed live (cold path)."""
        self.trace.emit(
            PredictorTransitionEvent(
                cycle=self.trace_cycle,
                thread=self.trace_thread,
                store_hash=store_hash,
                load_hash=load_hash,
                aliasing=aliasing,
                exec_type=exec_type.name,
                state_before=state_before.value,
                state_after=state_after.value,
                counters_before=before.as_tuple(),
                counters_after=after.as_tuple(),
            )
        )

    # ------------------------------------------------------------------
    # Flush semantics (Section IV-A)
    # ------------------------------------------------------------------
    def on_context_switch(self, flush_ssbp: bool = False) -> None:
        """A context switch flushes PSFP but (vulnerably) not SSBP.

        ``flush_ssbp=True`` models the mitigation of Section VI-B.
        """
        self.context_switches += 1
        self.psfp.flush()
        if flush_ssbp:
            self.ssbp.flush()

    def on_suspend(self) -> None:
        """Process suspension (``sleep``) flushes both predictors."""
        self.suspends += 1
        self.psfp.flush()
        self.ssbp.flush()

    def reset(self) -> None:
        """Full reset (power-on state)."""
        self.psfp.flush()
        self.ssbp.flush()
        self.exec_type_counts.clear()

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    def state_name_for(self, store_hash: int, load_hash: int) -> StateName:
        return classify_state(self.state_for(store_hash, load_hash))

    def __repr__(self) -> str:
        return (
            f"PredictorUnit(model={self.model.name!r}, psfp={self.psfp.occupancy}"
            f"/{self.psfp.capacity}, ssbp={self.ssbp.occupancy}/{self.ssbp.capacity}, "
            f"ssbd={self.spec_ctrl.ssbd})"
        )
