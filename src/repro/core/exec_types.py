"""Execution types A--H of a store-load pair (paper Fig 2).

A *stld* (store-load pair with the store's address generation delayed)
executes in one of eight ways, determined by what the predictors predicted
and what was actually true:

====  ==========  =========  ====================================  ========
Type  Prediction  Truth      Behaviour                             Rollback
====  ==========  =========  ====================================  ========
A     aliasing    aliasing   stall, then store-to-load forward     no
B     aliasing    aliasing   as A, but in the S2 state (C3 > 0)    no
C     aliasing    aliasing   *predictive* store forward (PSF)      no
D     aliasing    non-alias  PSF forwarded the wrong data          yes
E     aliasing    non-alias  stall, then load from cache           no
F     aliasing    non-alias  as E, but in the S2 state (C3 > 0)    no
G     non-alias   aliasing   load bypassed a store it aliased      yes
H     non-alias   non-alias  load bypassed the store correctly     no
====  ==========  =========  ====================================  ========

The paper observes six distinct *timing* levels because A/B and E/F are
indistinguishable by time alone; they are separated using the inferred
predictor state (Section III-B).  :data:`TIMING_CLASS` captures that
six-way grouping.

Each type also has a characteristic Performance Monitor Counter profile
(the table embedded in Fig 2), reproduced in :data:`PMC_PROFILE`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType

__all__ = [
    "ExecType",
    "TimingClass",
    "TIMING_CLASS",
    "PMC_PROFILE",
    "PmcProfile",
    "classify_exec_type",
]


class ExecType(enum.Enum):
    """One of the eight execution types of Fig 2."""

    A = "A"
    B = "B"
    C = "C"
    D = "D"
    E = "E"
    F = "F"
    G = "G"
    H = "H"

    @property
    def predicted_aliasing(self) -> bool:
        """Whether the predictors predicted the pair as aliasing."""
        return self in _PREDICTED_ALIASING

    @property
    def truth_aliasing(self) -> bool:
        """Whether the store-load pair actually aliased."""
        return self in _TRUTH_ALIASING

    @property
    def mispredicted(self) -> bool:
        return self.predicted_aliasing != self.truth_aliasing

    @property
    def rollback(self) -> bool:
        """Whether the pipeline was flushed (types D and G only).

        Type E/F mispredictions (predicted aliasing, actually disjoint)
        merely cost a needless stall; the loaded value is correct, so no
        machine clear is needed.
        """
        return self in (ExecType.D, ExecType.G)

    @property
    def psf_forwarded(self) -> bool:
        """Whether data was forwarded before the store address resolved."""
        return self in (ExecType.C, ExecType.D)

    @property
    def stalled(self) -> bool:
        """Whether the load waited for the store's address generation."""
        return self in (ExecType.A, ExecType.B, ExecType.E, ExecType.F)

    @property
    def data_source(self) -> str:
        """Where the load's (first) data came from: 'sq', 'cache' or 'forward'."""
        if self.psf_forwarded:
            return "forward"
        if self is ExecType.G:
            # The bypassing load read the cache, then was squashed and
            # replayed with a store-queue forward.
            return "cache"
        if self.truth_aliasing:
            return "sq"
        return "cache"

    def __str__(self) -> str:
        return self.value


_PREDICTED_ALIASING = frozenset(
    {ExecType.A, ExecType.B, ExecType.C, ExecType.D, ExecType.E, ExecType.F}
)
_TRUTH_ALIASING = frozenset({ExecType.A, ExecType.B, ExecType.C, ExecType.G})


class TimingClass(enum.Enum):
    """The six timing-distinguishable groups of Fig 2, fastest first."""

    BYPASS = "H"            # type H
    PSF_FORWARD = "C"       # type C
    STALL_FORWARD = "AB"    # types A and B
    STALL_CACHE = "EF"      # types E and F
    ROLLBACK_BYPASS = "G"   # type G
    ROLLBACK_FORWARD = "D"  # type D

    @property
    def members(self) -> tuple[ExecType, ...]:
        return _CLASS_MEMBERS[self]


_CLASS_MEMBERS = {
    TimingClass.BYPASS: (ExecType.H,),
    TimingClass.PSF_FORWARD: (ExecType.C,),
    TimingClass.STALL_FORWARD: (ExecType.A, ExecType.B),
    TimingClass.STALL_CACHE: (ExecType.E, ExecType.F),
    TimingClass.ROLLBACK_BYPASS: (ExecType.G,),
    TimingClass.ROLLBACK_FORWARD: (ExecType.D,),
}

#: Map each execution type to its timing class.
TIMING_CLASS: MappingProxyType = MappingProxyType(
    {t: cls for cls, members in _CLASS_MEMBERS.items() for t in members}
)


@dataclass(frozen=True)
class PmcProfile:
    """Per-type PMC event counts for one stld invocation (Fig 2 table)."""

    sq_stall_tokens: int        # "Dynamic Tokens Dispatch for SQ1 Stall Cycles"
    store_to_load_forward: int  # "Store to Load Forwarding"
    ld_dispatch: int            # "Ld Dispatch"
    l1_itlb_hits_4k: int        # "L1 TLB Hits for Instruction Fetch 4K"
    retired_ops: int            # "Retired Ops"


def _profile(exec_type: ExecType) -> PmcProfile:
    rollback = exec_type.rollback
    return PmcProfile(
        sq_stall_tokens=42 if exec_type.predicted_aliasing else 21,
        store_to_load_forward=7 if exec_type.data_source in ("sq",) or rollback else 6,
        ld_dispatch=44 if rollback else 41,
        l1_itlb_hits_4k=105 if rollback else 83,
        retired_ops=201 if rollback else 200,
    )


#: Reference PMC profile for each execution type.
PMC_PROFILE: MappingProxyType = MappingProxyType({t: _profile(t) for t in ExecType})


def classify_exec_type(
    predicted_aliasing: bool,
    psf_forward: bool,
    truth_aliasing: bool,
    sticky: bool,
) -> ExecType:
    """Derive the execution type from the prediction outcome.

    Parameters
    ----------
    predicted_aliasing:
        The combined prediction (``C0 > 0 or C3 > 0``).
    psf_forward:
        Whether predictive store forwarding was armed
        (``C0 > 0 and C1 <= 12 and C2 > 0``).
    truth_aliasing:
        Whether the resolved store address matched the load address.
    sticky:
        Whether the SSBP stickiness counter was driving the prediction
        (``C3 > 0``), which separates A from B and E from F.
    """
    if not predicted_aliasing:
        return ExecType.G if truth_aliasing else ExecType.H
    if psf_forward:
        return ExecType.C if truth_aliasing else ExecType.D
    if truth_aliasing:
        return ExecType.B if sticky else ExecType.A
    return ExecType.F if sticky else ExecType.E
