"""CPU model configurations for the four platforms of TABLE III.

Every simulated component draws its parameters from a :class:`CpuModel`,
so experiments can be repeated per platform exactly as the paper does.
All four machines are Zen 3 (the 7735HS is "Zen 3+") and, per the paper's
Section III-D.3, share the same PSFP/SSBP design; they differ in clock,
store-queue size and cache latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.psfp import PSFP_ENTRIES
from repro.core.ssbp import SSBP_SETS, SSBP_WAYS
from repro.errors import ConfigError

__all__ = ["LatencyModel", "CpuModel", "ZEN3_MODELS", "default_model", "get_model"]


@dataclass(frozen=True)
class LatencyModel:
    """Cycle costs used by the core's timing model.

    The absolute values are representative of Zen 3 rather than measured;
    what the experiments rely on is the *separability* of the execution
    types these latencies induce (Fig 2 levels, DESIGN.md section 5).
    """

    alu: int = 1
    imul: int = 3
    l1_hit: int = 4
    l2_hit: int = 14
    l3_hit: int = 47
    memory: int = 200
    tlb_miss: int = 20
    #: Store-address generation delay for the reverse-engineering stld
    #: (20 dependent ``imul`` instructions on the store's address operand).
    agen_chain: int = 60
    #: Extra latency of a load served from the store queue after the stall.
    sq_forward: int = 7
    #: Extra latency of a load that must stall until store address
    #: generation relative to one that bypasses immediately.
    stall_overhead: int = 25
    #: Latency advantage of a *predictive* forward (type C) over a stalled
    #: forward (types A/B): the data moves before address generation.
    psf_saving: int = 17
    #: Replay scheduling cost when a stalled load finally reads the cache
    #: (types E/F) instead of forwarding from the SQ (types A/B).
    post_stall_replay: int = 6
    #: Pipeline flush + refetch + redispatch after a misprediction
    #: (types D and G take "more than 240 cycles" in Fig 2).
    rollback: int = 62
    #: Extra squash cost for a wrong *predictive forward* (type D): the
    #: mismatch is detected at store-data compare, a stage later than the
    #: address-match check that catches a wrong bypass (type G).
    psf_rollback_extra: int = 12

    def __post_init__(self) -> None:
        for name in ("alu", "imul", "l1_hit", "l2_hit", "l3_hit", "memory"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"latency {name} must be positive")
        if not self.l1_hit < self.l2_hit < self.l3_hit < self.memory:
            raise ConfigError("cache latencies must increase down the hierarchy")


@dataclass(frozen=True)
class CpuModel:
    """One simulated platform (a row of TABLE III plus derived parameters)."""

    name: str
    family: str = "19h"
    microarch: str = "Zen 3"
    microcode: int = 0
    kernel: str = "Linux 5.15.0-76-generic"
    clock_ghz: float = 3.7
    smt_threads: int = 2
    store_queue_entries: int = 64
    psfp_entries: int = PSFP_ENTRIES
    ssbp_sets: int = SSBP_SETS
    ssbp_ways: int = SSBP_WAYS
    #: RDPRU noise rate; the paper reports "consistently below 1%".
    timer_noise: float = 0.005
    #: Predictive Store Forwarding exists only from Zen 3 on; a Zen 2
    #: style model (SSB only, no PSFP) is a useful ablation baseline.
    psf_supported: bool = True
    latency: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ConfigError("clock must be positive")
        if self.smt_threads not in (1, 2):
            raise ConfigError("Zen 3 cores run 1 or 2 SMT threads")
        if not 0 <= self.timer_noise < 0.05:
            raise ConfigError("timer noise is a small fraction (paper: <1%)")
        if self.store_queue_entries < 1:
            raise ConfigError("store queue needs at least one entry")

    def with_overrides(self, **changes) -> "CpuModel":
        """Return a modified copy (e.g. single-thread mode, custom noise)."""
        return replace(self, **changes)

    @property
    def cycles_per_second(self) -> float:
        return self.clock_ghz * 1e9


#: The four evaluation platforms of TABLE III.
ZEN3_MODELS: dict[str, CpuModel] = {
    model.name: model
    for model in (
        CpuModel(
            name="ryzen9-5900x",
            microcode=0xA201205,
            kernel="Linux 5.15.0-76-generic",
            clock_ghz=3.7,
        ),
        CpuModel(
            name="epyc-7543",
            microcode=0xA001173,
            kernel="Linux 6.1.0-rc4-snp-host-93fa8c5918a4",
            clock_ghz=2.8,
        ),
        CpuModel(
            name="ryzen5-5600g",
            microcode=0xA50000D,
            kernel="Linux 5.15.0-76-generic",
            clock_ghz=3.9,
        ),
        CpuModel(
            name="ryzen7-7735hs",
            microarch="Zen 3+",
            microcode=0xA404102,
            kernel="Linux 5.4.0-153-generic",
            clock_ghz=3.2,
        ),
    )
}


def default_model() -> CpuModel:
    """The platform used for single-machine experiments (Ryzen 9 5900X)."""
    return ZEN3_MODELS["ryzen9-5900x"]


def zen2_model() -> CpuModel:
    """A Zen 2 style baseline: speculative store bypass (SSBP) but no
    predictive store forwarding — PSF shipped with Zen 3.  Used by the
    ablation experiments to show which findings are PSF-specific."""
    return CpuModel(
        name="ryzen7-3700x",
        family="17h",
        microarch="Zen 2",
        microcode=0x8701021,
        clock_ghz=3.6,
        store_queue_entries=48,
        psf_supported=False,
    )


def get_model(name: str) -> CpuModel:
    """Look up a platform by name, with a helpful error on typos."""
    try:
        return ZEN3_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(ZEN3_MODELS))
        raise ConfigError(f"unknown CPU model {name!r}; known models: {known}") from None
