"""The combined PSFP/SSBP counter state machine (paper TABLE I).

The transition function operates on a five-counter :class:`CounterState`
and an input symbol — an *aliasing* (``a``) or *non-aliasing* (``n``)
store-load pair — and yields the observed execution type together with the
successor state.

The implementation follows TABLE I with the two documented amendments from
DESIGN.md section 2 (both required to reproduce sequences the paper itself
reports):

1. on a ``G`` event, ``C4`` increments *before* the ``C3`` charge condition
   is evaluated, so the third ``G`` on an entry sets ``C3 = 15``;
2. the S2/PSF-disabled ``n`` transition also decays ``C0`` by 1, so a long
   run of non-aliasing pairs ends in the Load-From-Cache state (``...,15F,H``).

State classification is total: counter combinations that TABLE I leaves
unlisted (e.g. ``C0>0, C2=0, C3>0``) fall into the S2/PSF-disabled state,
the most conservative stalling behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator

from repro.core.counters import C3_MAX, CounterState
from repro.core.exec_types import ExecType, classify_exec_type

__all__ = [
    "StateName",
    "Prediction",
    "Transition",
    "PSF_C1_THRESHOLD",
    "classify_state",
    "predict",
    "transition",
    "run_sequence",
    "iter_sequence",
    "g_event_state",
]

#: Predictive store forwarding is armed only while ``C1 <= 12``.
PSF_C1_THRESHOLD = 12


class StateName(enum.Enum):
    """The seven states of TABLE I (classification of counter values)."""

    INITIALIZE = "initialize"
    BLOCK = "block"
    LOAD_FROM_CACHE = "load-from-cache"
    S1_PSF_ENABLED = "sq-psf-enabled-s1"
    S1_PSF_DISABLED = "sq-psf-disabled-s1"
    S2_PSF_ENABLED = "sq-psf-enabled-s2"
    S2_PSF_DISABLED = "sq-psf-disabled-s2"


@dataclass(frozen=True, slots=True)
class Prediction:
    """What the predictors will do for the next store-load pair."""

    aliasing: bool
    """Predicted as aliasing: the load waits for the store's address."""

    psf_forward: bool
    """Predictive store forwarding armed: the store's data is forwarded to
    the load before the store's address is even generated."""

    sticky: bool
    """The SSBP stickiness counter (``C3 > 0``) is driving the prediction."""


@dataclass(frozen=True)
class Transition:
    """Result of executing one store-load pair against a counter state."""

    exec_type: ExecType
    state: CounterState
    state_name: StateName


# classify/predict/transition are pure functions of a *clamped* counter
# state (every CounterState constructor saturates its fields), so their
# combined domain is a few tens of thousands of points.  The pipeline
# evaluates them for every racing load of every run of a campaign —
# memoizing them is the same trade ipa_hash already makes, and the cached
# Transition/Prediction values are frozen dataclasses, safe to share.


@lru_cache(maxsize=None)
def classify_state(state: CounterState) -> StateName:
    """Map a counter state to its TABLE I state name (total function)."""
    psf_qualified = (
        state.c0 > 0 and state.c1 <= PSF_C1_THRESHOLD and state.c2 > 0
    )
    if state.c3 > 0:
        return StateName.S2_PSF_ENABLED if psf_qualified else StateName.S2_PSF_DISABLED
    if state.c0 > 0:
        if state.c2 == 0:
            return StateName.BLOCK
        return StateName.S1_PSF_ENABLED if psf_qualified else StateName.S1_PSF_DISABLED
    if state.c2 > 0:
        return StateName.LOAD_FROM_CACHE
    return StateName.INITIALIZE


@lru_cache(maxsize=None)
def predict(state: CounterState) -> Prediction:
    """Read-only prediction for the next pair (no counters change)."""
    name = classify_state(state)
    aliasing = state.c0 > 0 or state.c3 > 0
    psf = name in (StateName.S1_PSF_ENABLED, StateName.S2_PSF_ENABLED)
    return Prediction(aliasing=aliasing, psf_forward=psf, sticky=state.c3 > 0)


def g_event_state(state: CounterState) -> CounterState:
    """Counter state after a mispredicted bypass (type G) event.

    Sets the PSFP counters to their trained values and charges the SSBP
    stickiness counter once the G-event counter saturates (amendment 1:
    ``C4`` increments before the charge condition is evaluated).
    """
    c4 = min(state.c4 + 1, 3)
    return CounterState(c0=4, c1=16, c2=2, c3=0 if c4 < 3 else 15, c4=c4)


@lru_cache(maxsize=None)
def transition(state: CounterState, aliasing: bool) -> Transition:
    """Execute one store-load pair: TABLE I, one row.

    Parameters
    ----------
    state:
        Current counter values.
    aliasing:
        Ground truth of the pair: ``True`` for ``a``, ``False`` for ``n``.
    """
    name = classify_state(state)
    pred = predict(state)
    exec_type = classify_exec_type(
        predicted_aliasing=pred.aliasing,
        psf_forward=pred.psf_forward,
        truth_aliasing=aliasing,
        sticky=pred.sticky,
    )

    if name in (StateName.INITIALIZE, StateName.LOAD_FROM_CACHE):
        nxt = g_event_state(state) if aliasing else state
    elif name is StateName.BLOCK:
        nxt = state
    elif name is StateName.S1_PSF_ENABLED:
        if aliasing:  # type C
            bump = 1 if state.c1 & 3 == 3 else 0
            nxt = state.with_updates(c0=state.c0 + bump, c1=state.c1 - 1)
        else:  # type D
            nxt = state.with_updates(
                c0=state.c0 - 1, c1=state.c1 + 4, c2=state.c2 - 1
            )
    elif name is StateName.S1_PSF_DISABLED:
        if aliasing:  # type A
            bump = 1 if state.c1 & 3 == 3 else 0
            nxt = state.with_updates(c0=state.c0 + bump, c1=state.c1 - 1)
        else:  # type E
            nxt = state.with_updates(c0=state.c0 - 1, c1=state.c1 + 4)
    elif name is StateName.S2_PSF_DISABLED:
        if aliasing:  # type B
            bump = 1 if (state.c1 & 3 == 3 and state.c0 > 0) else 0
            c3 = state.c3 - 1 if state.c0 > 0 else min(state.c3 + 16, C3_MAX)
            nxt = state.with_updates(
                c0=state.c0 + bump, c1=state.c1 - 1, c3=c3
            )
        else:  # type F (amendment 2: C0 decays here too)
            nxt = state.with_updates(
                c0=state.c0 - 1, c1=state.c1 + 4, c3=state.c3 - 1
            )
    else:  # S2_PSF_ENABLED
        if aliasing:  # type C
            bump = 1 if (state.c1 & 3 == 3 and state.c0 > 0) else 0
            c3 = state.c3 - 1 if state.c0 > 0 else min(state.c3 + 16, C3_MAX)
            nxt = state.with_updates(
                c0=state.c0 + bump, c1=state.c1 - 1, c3=c3
            )
        else:  # type D
            nxt = state.with_updates(
                c0=state.c0 - 1, c1=state.c1 + 4, c3=state.c3 - 2
            )

    return Transition(exec_type=exec_type, state=nxt, state_name=name)


def iter_sequence(
    state: CounterState, inputs: Iterable[bool], psf_supported: bool = True
) -> Iterator[Transition]:
    """Yield the transition for each input pair, threading the state.

    ``psf_supported=False`` models a core without PSF hardware (Zen 2):
    the PSFP counters read as zero and are never retained, leaving only
    the SSBP dynamics.
    """
    for aliasing in inputs:
        result = transition(state, aliasing)
        state = result.state
        if not psf_supported:
            state = state.with_updates(c0=0, c1=0, c2=0)
            result = Transition(
                exec_type=result.exec_type,
                state=state,
                state_name=result.state_name,
            )
        yield result


def run_sequence(
    state: CounterState, inputs: Iterable[bool], psf_supported: bool = True
) -> tuple[list[ExecType], CounterState]:
    """Execute a whole input sequence; return the types and final state.

    ``inputs`` is an iterable of booleans (``True`` = aliasing).  Use
    :func:`repro.revng.sequences.parse` to turn strings like ``"7n,a"``
    into such an iterable.
    """
    types: list[ExecType] = []
    for result in iter_sequence(state, inputs, psf_supported):
        types.append(result.exec_type)
        state = result.state
    return types, state
