"""SSBP — the Speculative Store Bypass Predictor (paper Section III-D.2).

Organization recovered by the paper:

* entries hold the counters ``C3`` (6-bit stickiness) and ``C4`` (2-bit
  mispredicted-bypass event counter);
* an entry is selected by the 12-bit hashed IPA of the *load only*;
* the structure survives context switches (the root of Vulnerability 1);
* eviction is *gradual*: priming with 16 random entries evicts a trained
  entry slightly more than half the time, 32 entries about 90% of the time
  (Fig 5), so the selection function ``F2`` is more complex than a small
  fully associative buffer.

We model ``F2`` as a set-associative backing store: 8 sets x 2 ways,
indexed by a fold of the 12-bit hash, tagged by the full hash, LRU within
a set.  For ``k`` uniformly distributed priming tags the victim's set
receives ``Binomial(k, 1/8)`` inserts and the entry dies once its set sees
2 of them, giving an eviction probability of ~61% at ``k = 16`` and ~92%
at ``k = 32`` — the Fig 5 curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.hashfn import HASH_BITS
from repro.errors import ConfigError

__all__ = ["SSBP_SETS", "SSBP_WAYS", "SsbpEntry", "Ssbp", "set_index"]

#: Default backing-store geometry (DESIGN.md: chosen to fit the Fig 5 curve).
SSBP_SETS = 8
SSBP_WAYS = 2

_SET_BITS = 3


@lru_cache(maxsize=None)
def set_index(load_hash: int, sets: int = SSBP_SETS) -> int:
    """The selection function ``F2``: fold the 12-bit hash into a set index.

    Pure over a 12-bit domain and evaluated on every SSBP access, so it is
    memoized the same way :func:`repro.core.hashfn.ipa_hash` is.
    """
    folded = 0
    value = load_hash & ((1 << HASH_BITS) - 1)
    while value:
        folded ^= value & (sets - 1)
        value >>= _SET_BITS
    return folded % sets


@dataclass
class SsbpEntry:
    """One SSBP entry: the load-IPA hash tag and two counters."""

    load_tag: int
    c3: int = 0
    c4: int = 0

    @property
    def trained(self) -> bool:
        return self.c3 > 0 or self.c4 > 0


class Ssbp:
    """Set-associative table of :class:`SsbpEntry`, keyed by load-IPA hash.

    As with :class:`repro.core.psfp.Psfp`, a miss reads as zero counters,
    and entries whose counters decay to zero are freed.
    """

    def __init__(self, sets: int = SSBP_SETS, ways: int = SSBP_WAYS) -> None:
        if sets < 1 or ways < 1:
            raise ConfigError(f"bad SSBP geometry: {sets} sets x {ways} ways")
        self.sets = sets
        self.ways = ways
        # Each set is a small list in LRU order (least recent first).
        self._table: list[list[SsbpEntry]] = [[] for _ in range(sets)]
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def _set_for(self, load_hash: int) -> list[SsbpEntry]:
        return self._table[set_index(load_hash, self.sets)]

    def lookup(self, load_hash: int) -> SsbpEntry | None:
        """Return the matching entry (refreshing its recency) or ``None``."""
        bucket = self._set_for(load_hash)
        for position, entry in enumerate(bucket):
            if entry.load_tag == load_hash:
                bucket.append(bucket.pop(position))
                return entry
        return None

    def counters(self, load_hash: int) -> tuple[int, int]:
        """Counter values ``(C3, C4)`` for the hash; a miss reads as zeros.

        Same semantics as :meth:`lookup` (including the recency refresh),
        inlined because this sits on the per-racing-load hot path.
        """
        bucket = self._table[set_index(load_hash, self.sets)]
        for position, entry in enumerate(bucket):
            if entry.load_tag == load_hash:
                bucket.append(bucket.pop(position))
                return (entry.c3, entry.c4)
        return (0, 0)

    def update(self, load_hash: int, c3: int, c4: int, allocate: bool = True) -> None:
        """Write counters back, allocating or freeing the entry as needed.

        As with :meth:`repro.core.psfp.Psfp.update`, ``allocate=False``
        drops updates for hashes with no live entry (non-allocating events).
        """
        bucket = self._set_for(load_hash)
        entry = None
        for position, candidate in enumerate(bucket):
            if candidate.load_tag == load_hash:
                entry = bucket.pop(position)
                break
        if c3 == 0 and c4 == 0:
            return  # freed (entry already popped if it existed)
        if entry is None:
            if not allocate:
                return
            entry = SsbpEntry(load_tag=load_hash)
            if len(bucket) >= self.ways:
                bucket.pop(0)  # evict least recently used in the set
                self.evictions += 1
        entry.c3, entry.c4 = c3, c4
        bucket.append(entry)

    def contains(self, load_hash: int) -> bool:
        """Presence check that does *not* disturb recency order."""
        return any(e.load_tag == load_hash for e in self._set_for(load_hash))

    def flush(self) -> int:
        """Drop every entry (only happens on process suspend); returns count."""
        dropped = sum(len(bucket) for bucket in self._table)
        for bucket in self._table:
            bucket.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._table)

    def entries(self) -> list[SsbpEntry]:
        """Snapshot of all live entries (set order, LRU first within a set)."""
        return [entry for bucket in self._table for entry in bucket]

    def __repr__(self) -> str:
        return f"Ssbp(occupancy={self.occupancy}/{self.capacity})"
