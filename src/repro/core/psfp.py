"""PSFP — the Predictive Store Forwarding Predictor (paper Section III-D.1).

Organization recovered by the paper:

* 12 entries, fully associative;
* each entry holds the counters ``C0``, ``C1``, ``C2``;
* each entry is tagged by *two* 12-bit hashed IPAs — the store's and the
  load's (:mod:`repro.core.hashfn`);
* the whole structure is flushed on a context switch (AMD's own security
  analysis of PSF, confirmed in Section IV-A).

The abrupt eviction threshold in Fig 5 (never evicted below 12 priming
entries, always evicted at 12) implies LRU-like replacement, which we use.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["PSFP_ENTRIES", "PsfpEntry", "Psfp"]

#: Number of entries recovered by the eviction experiment (Fig 5).
PSFP_ENTRIES = 12


@dataclass
class PsfpEntry:
    """One PSFP entry: two hashed-IPA tags and three counters."""

    store_tag: int
    load_tag: int
    c0: int = 0
    c1: int = 0
    c2: int = 0

    @property
    def key(self) -> tuple[int, int]:
        return (self.store_tag, self.load_tag)

    @property
    def trained(self) -> bool:
        return self.c0 > 0 or self.c1 > 0 or self.c2 > 0


class Psfp:
    """A fully associative, LRU-replaced table of :class:`PsfpEntry`.

    Lookups are keyed by the pair ``(store_hash, load_hash)``.  A miss
    reads as all-zero counters (the Initialize state); entries are
    allocated lazily when a transition leaves non-zero counters behind and
    freed when the counters decay back to zero, so occupancy reflects the
    number of *trained* store-load pairs — the quantity the paper's
    eviction-set experiment measures.
    """

    def __init__(self, entries: int = PSFP_ENTRIES) -> None:
        if entries < 1:
            raise ConfigError(f"PSFP needs at least one entry, got {entries}")
        self.capacity = entries
        self._table: OrderedDict[tuple[int, int], PsfpEntry] = OrderedDict()
        self.evictions = 0

    def lookup(self, store_hash: int, load_hash: int) -> PsfpEntry | None:
        """Return the matching entry (refreshing its recency) or ``None``."""
        entry = self._table.get((store_hash, load_hash))
        if entry is not None:
            self._table.move_to_end((store_hash, load_hash))
        return entry

    def counters(self, store_hash: int, load_hash: int) -> tuple[int, int, int]:
        """Counter values for the pair; a miss reads as zeros.

        Same semantics as :meth:`lookup` (including the recency refresh),
        inlined because this sits on the per-racing-load hot path.
        """
        key = (store_hash, load_hash)
        entry = self._table.get(key)
        if entry is None:
            return (0, 0, 0)
        self._table.move_to_end(key)
        return (entry.c0, entry.c1, entry.c2)

    def update(
        self,
        store_hash: int,
        load_hash: int,
        c0: int,
        c1: int,
        c2: int,
        allocate: bool = True,
    ) -> None:
        """Write counters back, allocating or freeing the entry as needed.

        ``allocate=False`` models the hardware's learn-on-misprediction
        behaviour: an update for a pair with no live entry is dropped
        unless the caller marks the event as allocating (a type G event).
        """
        key = (store_hash, load_hash)
        entry = self._table.get(key)
        if c0 == 0 and c1 == 0 and c2 == 0:
            if entry is not None:
                del self._table[key]
            return
        if entry is None:
            if not allocate:
                return
            entry = PsfpEntry(store_tag=store_hash, load_tag=load_hash)
            if len(self._table) >= self.capacity:
                self._table.popitem(last=False)  # evict least recently used
                self.evictions += 1
            self._table[key] = entry
        else:
            self._table.move_to_end(key)
        entry.c0, entry.c1, entry.c2 = c0, c1, c2

    def contains(self, store_hash: int, load_hash: int) -> bool:
        """Presence check that does *not* disturb recency order."""
        return (store_hash, load_hash) in self._table

    def flush(self) -> int:
        """Drop every entry (context-switch semantics); returns count dropped."""
        dropped = len(self._table)
        self._table.clear()
        return dropped

    @property
    def occupancy(self) -> int:
        return len(self._table)

    def entries(self) -> list[PsfpEntry]:
        """Snapshot of live entries, least recently used first."""
        return list(self._table.values())

    def __repr__(self) -> str:
        return f"Psfp(occupancy={self.occupancy}/{self.capacity})"
