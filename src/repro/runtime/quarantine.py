"""Corrupted-state quarantine: move aside, explain, count — never delete.

A cache entry, corpus case, artifact or checkpoint that fails schema
validation is evidence (of a crashed writer, a bad disk, or a bug in our
own serialization) and must not be silently destroyed the way the early
caches did.  :func:`quarantine` moves the offending file into
``<root>/quarantine/`` next to a ``*.reason`` sidecar describing why,
and callers count the event so campaign summaries can surface it.

Stores that scan their directory (the result cache, the corpus) must
skip :data:`QUARANTINE_DIR` so quarantined files are not re-read as
entries; they key their layout on two-hex-char shards, so the name can
never collide with a shard directory.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["QUARANTINE_DIR", "quarantine", "quarantined_files"]

QUARANTINE_DIR = "quarantine"


def quarantine(root: str | Path, path: str | Path, reason: str) -> Path | None:
    """Move ``path`` under ``<root>/quarantine/`` with a reason sidecar.

    Returns the quarantined path, or ``None`` when the move itself failed
    (in which case the file is left exactly where it was — a quarantine
    must never make things worse).  Name collisions get a numeric suffix
    so repeated quarantines of equally-named files all survive.
    """
    root = Path(root)
    path = Path(path)
    target_dir = root / QUARANTINE_DIR
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        dest = target_dir / path.name
        attempt = 0
        while dest.exists():
            attempt += 1
            dest = target_dir / f"{path.stem}.{attempt}{path.suffix}"
        os.replace(path, dest)
        dest.with_name(dest.name + ".reason").write_text(
            reason.rstrip() + "\n", encoding="utf-8"
        )
        return dest
    except OSError:
        return None


def quarantined_files(root: str | Path) -> list[Path]:
    """The quarantined payload files under ``root`` (reason sidecars excluded)."""
    target_dir = Path(root) / QUARANTINE_DIR
    if not target_dir.is_dir():
        return []
    return sorted(
        path for path in target_dir.iterdir()
        if path.is_file() and not path.name.endswith(".reason")
    )
