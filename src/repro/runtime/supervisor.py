"""Supervised task execution: deadlines, retries, crash isolation, drains.

The campaign engines used to fan tasks over a bare
``ProcessPoolExecutor``: a hung driver stalled the pool forever, a dead
worker raised ``BrokenProcessPool`` and lost everything completed so
far, and Ctrl-C tore the run down without a checkpoint.
:func:`run_supervised` replaces that with a pool the campaign actually
supervises:

* **deadlines** — a task running past ``timeout`` seconds has its worker
  killed and is retried on a fresh process;
* **crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM-kill) only costs the one attempt it was running;
* **retries** — failed attempts are re-dispatched up to ``retries``
  times behind a *deterministic* capped-exponential backoff
  (:func:`backoff_schedule`; no jitter, so campaign reports stay
  byte-identical run to run);
* **structured failure** — a task that exhausts its budget becomes a
  :class:`TaskFailure` in the report instead of aborting the campaign;
* **graceful shutdown** — SIGINT/SIGTERM stop dispatch, drain in-flight
  tasks for a grace period (each completion still reaches ``on_result``,
  i.e. the checkpoint), then terminate workers and return a report with
  ``interrupted=True``.

Results stream to the caller through ``on_result`` as they land — that
callback is where the campaign engines append to their checkpoints, so
nothing completed is ever lost to a later fault.

Homogeneous small tasks (fuzz oracle runs, cross-validation cases) can
be *batched*: ``batch=N`` (or ``batch="adaptive"``) dispatches up to N
tasks per pipe message to one warm worker, which runs them back to back
— keeping its decode/compile caches hot — and still reports each task
individually, so retries, chaos injection, checkpoints and ``on_result``
stay per-task.  A worker that dies or stalls mid-batch costs every
outstanding task of that batch one attempt (they are re-dispatched,
typically spread over other workers).  Batching changes only dispatch
granularity, never results: serial and parallel runs of the same
campaign remain byte-identical.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ConfigError
from repro.runtime.chaos import ChaosPlan
from repro.telemetry.metrics import registry

__all__ = [
    "DEFAULT_RETRIES",
    "DEFAULT_GRACE_S",
    "MAX_BATCH",
    "adaptive_batch",
    "TaskFailure",
    "SupervisorReport",
    "backoff_schedule",
    "run_supervised",
]

DEFAULT_RETRIES = 2
DEFAULT_GRACE_S = 5.0

#: Upper bound on one dispatch batch; adaptive chunking never exceeds it
#: (a longer batch delays failure detection and retry without measurably
#: cutting dispatch overhead further).
MAX_BATCH = 32

_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0
_POLL_S = 0.05

#: Failure kinds recorded in :class:`TaskFailure` entries.
FAILURE_KINDS = ("error", "crash", "timeout", "invalid-result")


def backoff_schedule(
    retries: int, *, base: float = _BACKOFF_BASE_S, cap: float = _BACKOFF_CAP_S
) -> tuple[float, ...]:
    """Delay before retry attempt ``i`` (0-based): ``min(cap, base * 2**i)``.

    Deterministic by design — no jitter — so two runs of the same
    campaign retry on the same schedule and their artifacts can be
    compared byte-for-byte.
    """
    return tuple(min(cap, base * (2.0 ** attempt)) for attempt in range(max(0, retries)))


def adaptive_batch(total: int, workers: int) -> int:
    """Chunk size for ``batch="adaptive"``: ~4 batches per worker.

    Small enough that a mid-batch death or straggler costs at most a
    quarter of one worker's share, large enough to amortize the pipe
    round-trip and per-dispatch bookkeeping, and capped at
    :data:`MAX_BATCH` for very large campaigns.
    """
    if total <= 0 or workers <= 0:
        return 1
    return max(1, min(MAX_BATCH, -(-total // (workers * 4))))


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget; a manifest entry, not an abort."""

    task: Any       # task id: experiment name (str) or fuzz task index (int)
    kind: str       # one of FAILURE_KINDS
    attempts: int   # total attempts made (1 + retries consumed)
    message: str    # last attempt's diagnosis (deterministic: no pids/timestamps)

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskFailure":
        return cls(
            task=data["task"],
            kind=str(data["kind"]),
            attempts=int(data["attempts"]),
            message=str(data["message"]),
        )


@dataclass
class SupervisorReport:
    """Outcome of one supervised run: results keyed by task id, plus telemetry."""

    results: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    interrupted: bool = False
    retried: int = 0


def _worker_main(worker, chaos_spec, chaos_dir, inbox, results) -> None:
    """Worker process loop: pull a task, run it, report — never die quietly.

    SIGINT is ignored (a terminal Ctrl-C reaches the whole foreground
    process group; shutdown is the supervisor's job) and SIGTERM is reset
    to its default so the supervisor's ``terminate()`` actually kills us
    instead of re-raising the parent's inherited handler.

    ``results`` is this worker's private pipe end, written synchronously
    from this thread.  A queue shared between workers would report through
    a feeder thread holding a cross-process write lock — and a worker that
    dies mid-send (segfault, chaos ``os._exit``) would take that lock to
    the grave and deadlock every surviving worker's reports.  With one
    pipe per worker a death can only sever its own channel, which the
    supervisor observes as EOF.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    plan = ChaosPlan(chaos_spec, chaos_dir) if chaos_spec else None
    while True:
        batch = inbox.get()
        if batch is None:
            return
        # A batch is a list of (task_id, payload) pairs run back to back
        # on this (warm) process; each task still gets its own chaos
        # hooks, its own result message and its own error isolation, so
        # the supervisor's per-task retry policy is unchanged.
        for task_id, payload in batch:
            try:
                if plan is not None:
                    plan.before_task(task_id)
                result = worker(payload)
                if plan is not None:
                    result = plan.after_task(task_id, result)
                results.send(("ok", task_id, result))
            except BaseException as exc:  # the supervisor owns retry policy
                results.send(("error", task_id, f"{type(exc).__name__}: {exc}"))


class _Worker:
    """One supervised pool process plus its dispatch bookkeeping."""

    def __init__(self, ctx, worker, chaos) -> None:
        self.inbox = ctx.SimpleQueue()
        self.results, child_end = ctx.Pipe(duplex=False)
        spec = chaos.spec if chaos is not None else ""
        state = chaos.state_dir if chaos is not None else ""
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker, spec, state, self.inbox, child_end),
            daemon=True,
        )
        self.process.start()
        # Close the parent's copy of the write end, or the worker's death
        # would never surface as EOF on self.results.
        child_end.close()
        #: Task ids dispatched to this worker whose results have not
        #: come back yet, in dispatch (= execution) order.
        self.outstanding: list = []
        self.deadline: float | None = None
        self.timeout: float | None = None

    @property
    def busy(self) -> bool:
        return bool(self.outstanding)

    def dispatch(self, batch: "list[tuple[Any, Any]]", timeout: float | None) -> None:
        self.outstanding = [task_id for task_id, _ in batch]
        self.timeout = timeout
        self.deadline = (time.monotonic() + timeout) if timeout else None
        self.inbox.put(batch)

    def complete(self, task_id: Any) -> None:
        """One task of the current batch reported back.

        The deadline is re-armed: within a batch each task gets the full
        ``timeout`` measured from when the worker could start it (batch
        dispatch for the first, the predecessor's completion after), so
        batching never shrinks a task's time budget.
        """
        try:
            self.outstanding.remove(task_id)
        except ValueError:
            return
        if not self.outstanding:
            self.deadline = None
        elif self.timeout:
            self.deadline = time.monotonic() + self.timeout

    def clear(self) -> None:
        self.outstanding = []
        self.deadline = None

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)


@contextmanager
def _sigterm_as_interrupt() -> Iterator[None]:
    """Deliver SIGTERM as KeyboardInterrupt for the duration (main thread only)."""

    def handler(signum, frame):  # noqa: ARG001 - signal handler signature
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, handler)
    except ValueError:  # not the main thread; SIGTERM keeps its disposition
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def run_supervised(
    tasks: Sequence[tuple[Any, Any]],
    worker: Callable[[Any], Any],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    batch: "int | str" = 1,
    chaos: ChaosPlan | None = None,
    validate: Callable[[Any], Any] | None = None,
    on_result: Callable[[Any, Any], None] | None = None,
    progress: Callable[[str], None] | None = None,
    grace_s: float = DEFAULT_GRACE_S,
) -> SupervisorReport:
    """Run ``(task_id, payload)`` pairs through ``worker`` under supervision.

    ``worker`` must be a module-level callable (it crosses the process
    boundary); ``validate`` (if given) checks/parses each raw result and
    its return value is what lands in ``report.results`` and
    ``on_result`` — a validation error counts as a failed attempt
    (``invalid-result``) and is retried like any other.

    ``batch`` groups up to that many tasks per dispatch to one warm
    worker (``"adaptive"`` picks :func:`adaptive_batch`); results,
    retries, chaos hooks and checkpoints stay per-task, and a worker
    lost mid-batch costs each outstanding task one attempt.  Use it for
    homogeneous small tasks where per-dispatch overhead is comparable to
    the task itself; the default of 1 is the classic one-task-per-pipe
    protocol.

    Runs inline (no subprocesses) when ``jobs <= 1`` and neither a
    deadline nor a chaos plan demands real process isolation; inline
    mode still retries errors but cannot survive hangs or hard crashes
    (and has no dispatch overhead to batch away).
    """
    say = progress or (lambda line: None)
    report = SupervisorReport()
    items = [(task_id, payload) for task_id, payload in tasks]
    if batch != "adaptive" and (not isinstance(batch, int) or batch < 1):
        raise ConfigError(
            f"batch must be a positive int or 'adaptive', not {batch!r}"
        )
    if not items:
        return report
    schedule = backoff_schedule(retries)
    if jobs <= 1 and timeout is None and chaos is None:
        _run_inline(items, worker, retries, schedule, validate, on_result, say, report)
    else:
        _run_pool(
            items, worker, jobs=jobs, timeout=timeout, retries=retries,
            batch=batch, schedule=schedule, chaos=chaos, validate=validate,
            on_result=on_result, say=say, report=report, grace_s=grace_s,
        )
    return report


def _run_inline(items, worker, retries, schedule, validate, on_result, say, report):
    for task_id, payload in items:
        attempts = 0
        while True:
            attempts += 1
            kind = "error"
            # Counted before the worker runs, so a task's own metrics
            # delta (snapshotted inside the worker) never includes it.
            registry().counter("supervisor.dispatched").inc()
            try:
                value = worker(payload)
                kind = "invalid-result"
                value = validate(value) if validate is not None else value
            except KeyboardInterrupt:
                report.interrupted = True
                return
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                if attempts > retries:
                    report.failures.append(
                        TaskFailure(task_id, kind, attempts, message)
                    )
                    say(f"task {task_id}: failed ({kind}) after "
                        f"{attempts} attempt(s): {message}")
                    break
                delay = schedule[attempts - 1]
                report.retried += 1
                registry().counter("supervisor.retries").inc()
                say(f"task {task_id}: attempt {attempts} failed ({kind}); "
                    f"retrying in {delay:.2f}s")
                time.sleep(delay)
                continue
            report.results[task_id] = value
            registry().counter("supervisor.completed").inc()
            if on_result is not None:
                on_result(task_id, value)
            break


def _run_pool(
    items, worker, *, jobs, timeout, retries, batch, schedule, chaos, validate,
    on_result, say, report, grace_s,
):
    ctx = mp.get_context()
    payloads = dict(items)
    count = max(1, min(jobs, len(items)))
    chunk = adaptive_batch(len(items), count) if batch == "adaptive" else batch

    def spawn() -> _Worker:
        return _Worker(ctx, worker, chaos)

    workers: list[_Worker] = [spawn() for _ in range(count)]
    # (task_id, attempts_so_far, ready_at): attempts_so_far counts dispatches
    # already consumed; ready_at gates retry dispatch on the backoff schedule.
    pending: list[tuple[Any, int, float]] = [(task_id, 0, 0.0) for task_id, _ in items]
    done: set = set()

    def handle_attempt_failure(task_id: Any, attempts: int, kind: str, message: str):
        registry().counter(f"supervisor.failures.{kind}").inc()
        if attempts > retries:
            failure = TaskFailure(task_id, kind, attempts, message)
            report.failures.append(failure)
            done.add(task_id)
            say(f"task {task_id}: failed ({kind}) after "
                f"{attempts} attempt(s): {message}")
        else:
            delay = schedule[attempts - 1]
            report.retried += 1
            registry().counter("supervisor.retries").inc()
            pending.append((task_id, attempts, time.monotonic() + delay))
            say(f"task {task_id}: attempt {attempts} failed ({kind}); "
                f"retrying in {delay:.2f}s")

    def dispatch_ready() -> None:
        now = time.monotonic()
        idle = [w for w in workers if not w.busy and w.process.is_alive()]
        for n, w in enumerate(idle):
            # Never let one worker swallow work that would leave the
            # remaining idle workers dry: a tail of R ready tasks over I
            # idle workers dispatches in ceil(R/I)-sized batches.
            ready = [
                i for i, (tid, _, ready_at) in enumerate(pending)
                if ready_at <= now and tid not in done
            ]
            if not ready:
                break
            take = min(chunk, -(-len(ready) // (len(idle) - n)))
            group = []
            for i in reversed(ready[:take]):  # pop back to front
                task_id, attempts, _ = pending.pop(i)
                group.append((task_id, payloads[task_id]))
                attempt_counts[task_id] = attempts + 1
            group.reverse()  # restore pending order within the batch
            w.dispatch(group, timeout)
            registry().counter("supervisor.dispatched").inc(len(group))
            registry().counter("supervisor.batches").inc()

    attempt_counts: dict[Any, int] = {}

    def owner_of(task_id: Any) -> _Worker | None:
        return next((w for w in workers if task_id in w.outstanding), None)

    def drain_results(block: bool, honor_chaos: bool) -> None:
        conns = [w.results for w in workers if not w.results.closed]
        if not conns:
            return
        # wait() also flags connections at EOF (dead worker) as ready;
        # recv() drains any buffered result first, then raises.  Messages
        # are processed one recv at a time so an interrupt raised here
        # leaves the rest buffered in the pipes for the graceful drain.
        for conn in mp_connection.wait(conns, timeout=_POLL_S if block else 0):
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    break  # severed pipe: check_crashes owns the bookkeeping
                status, task_id, value = message
                w = owner_of(task_id)
                if w is not None:
                    w.complete(task_id)
                if task_id in done or task_id in report.results:
                    continue  # stale duplicate from a worker we already wrote off
                attempts = attempt_counts.get(task_id, 1)
                if status == "ok":
                    try:
                        parsed = validate(value) if validate is not None else value
                    except Exception as exc:
                        handle_attempt_failure(
                            task_id, attempts, "invalid-result",
                            f"{type(exc).__name__}: {exc}",
                        )
                        continue
                    report.results[task_id] = parsed
                    done.add(task_id)
                    registry().counter("supervisor.completed").inc()
                    if on_result is not None:
                        on_result(task_id, parsed)
                    if honor_chaos and chaos is not None and chaos.wants_interrupt(task_id):
                        say(f"chaos: injecting interrupt after task {task_id}")
                        raise KeyboardInterrupt
                else:
                    handle_attempt_failure(task_id, attempts, "error", str(value))

    def check_deadlines() -> None:
        now = time.monotonic()
        for i, w in enumerate(workers):
            if w.busy and w.deadline is not None and now > w.deadline:
                stalled = list(w.outstanding)
                say(f"task {stalled[0]}: exceeded {timeout:.1f}s deadline; "
                    f"killing worker pid {w.process.pid} and respawning")
                w.kill()
                w.clear()
                workers[i] = spawn()
                # The head task blew its deadline; the rest of the batch
                # died with the worker and each costs one attempt too.
                handle_attempt_failure(
                    stalled[0], attempt_counts.get(stalled[0], 1), "timeout",
                    f"exceeded {timeout:.1f}s deadline",
                )
                for task_id in stalled[1:]:
                    handle_attempt_failure(
                        task_id, attempt_counts.get(task_id, 1), "timeout",
                        f"batch abandoned: worker killed after task "
                        f"{stalled[0]} exceeded its {timeout:.1f}s deadline",
                    )

    def check_crashes() -> None:
        for i, w in enumerate(workers):
            if not w.process.is_alive():
                stalled, code = list(w.outstanding), w.process.exitcode
                w.kill()  # reap
                w.clear()
                workers[i] = spawn()
                if stalled:
                    say(f"worker died (exit {code}) running task {stalled[0]}; "
                        f"respawning")
                    for task_id in stalled:
                        handle_attempt_failure(
                            task_id, attempt_counts.get(task_id, 1), "crash",
                            f"worker died with exit code {code}",
                        )

    try:
        with _sigterm_as_interrupt():
            try:
                while (any(tid not in done for tid, _, _ in pending)
                       or any(w.busy for w in workers)):
                    dispatch_ready()
                    drain_results(block=True, honor_chaos=True)
                    check_deadlines()
                    check_crashes()
            except KeyboardInterrupt:
                report.interrupted = True
                in_flight = sum(1 for w in workers if w.busy)
                say(f"interrupted: draining {in_flight} in-flight task(s) "
                    f"for up to {grace_s:.0f}s")
                _graceful_drain(workers, drain_results, grace_s, say)
    finally:
        _shutdown(workers)


def _graceful_drain(workers, drain_results, grace_s, say) -> None:
    """Collect what the busy workers can still finish inside the grace period."""
    deadline = time.monotonic() + grace_s
    try:
        while any(w.busy for w in workers) and time.monotonic() < deadline:
            drain_results(True, False)
            for w in workers:  # a crash during the drain just ends that task
                if w.busy and not w.process.is_alive():
                    w.clear()
    except KeyboardInterrupt:
        say("second interrupt: abandoning the drain")


def _shutdown(workers: list[_Worker]) -> None:
    """Stop every worker: sentinel for the idle, terminate for the stubborn."""
    for w in workers:
        if w.process.is_alive() and not w.busy:
            try:
                w.inbox.put(None)
            except (OSError, ValueError):
                pass
    for w in workers:
        w.process.join(timeout=1.0)
    for w in workers:
        if w.process.is_alive():
            w.process.terminate()
            w.process.join(timeout=1.0)
        if w.process.is_alive():
            w.kill()
