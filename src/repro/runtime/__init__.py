"""Resilient campaign runtime shared by ``repro-experiments`` and ``repro-fuzz``.

Both campaign engines are long-running batch jobs whose value depends on
surviving partial failure: a hung driver must not stall the pool, a
crashed worker must not abort the campaign, and a SIGKILL mid-run must
never leave truncated JSON behind.  This package owns that discipline so
the two CLIs cannot drift apart:

* :mod:`repro.runtime.atomic` — the one atomic-persistence helper
  (tmp file + fsync + ``os.replace``) every JSON/JSONL writer uses;
* :mod:`repro.runtime.supervisor` — a supervised process pool with
  per-task deadlines, capped deterministic retry backoff, crash
  isolation and graceful SIGINT/SIGTERM drains;
* :mod:`repro.runtime.quarantine` — corrupt state files are moved aside
  with a reason file and counted, never silently deleted;
* :mod:`repro.runtime.chaos` — the test-only fault injector that proves
  all of the above actually works (``--chaos`` / ``REPRO_RUNTIME_CHAOS``);
* :mod:`repro.runtime.exitcodes` — the exit-code contract both CLIs
  share (0 ok, 1 findings/failed tasks, 2 usage, 3 interrupted).

See docs/resilience.md for the full semantics.
"""

from repro.runtime.atomic import atomic_write_json, atomic_write_text
from repro.runtime.chaos import ChaosPlan
from repro.runtime.exitcodes import (
    EXIT_FAILURES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
)
from repro.runtime.quarantine import QUARANTINE_DIR, quarantine, quarantined_files
from repro.runtime.supervisor import (
    DEFAULT_GRACE_S,
    DEFAULT_RETRIES,
    SupervisorReport,
    TaskFailure,
    backoff_schedule,
    run_supervised,
)

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "ChaosPlan",
    "EXIT_OK",
    "EXIT_FAILURES",
    "EXIT_USAGE",
    "EXIT_INTERRUPTED",
    "QUARANTINE_DIR",
    "quarantine",
    "quarantined_files",
    "DEFAULT_RETRIES",
    "DEFAULT_GRACE_S",
    "SupervisorReport",
    "TaskFailure",
    "backoff_schedule",
    "run_supervised",
]
