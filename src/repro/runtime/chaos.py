"""Test-only fault injection for the supervised runtime.

The pipeline already proves its fuzzing harness honest with
``CHAOS_HOOKS`` (:mod:`repro.fuzz.harness`); this module applies the
same discipline to the *execution layer*: a campaign that claims to
survive crashes, hangs and corrupt results must demonstrably do so.  A
plan is a comma-separated spec of ``fault@task`` tokens, armed via
``--chaos`` on either CLI or the ``REPRO_RUNTIME_CHAOS`` environment
variable:

* ``crash@KEY``   — the worker running task ``KEY`` dies with
  ``os._exit`` (the ``BrokenProcessPool`` failure mode);
* ``hang@KEY``    — the worker sleeps far past any sane deadline, so
  only a ``--timeout`` kill can reclaim it;
* ``corrupt@KEY`` — the worker returns a result that cannot pass schema
  validation (truncated-JSON equivalent at the result boundary);
* ``interrupt@KEY`` — the *supervisor* raises ``KeyboardInterrupt`` the
  moment task ``KEY`` completes, exercising graceful shutdown and
  checkpoint/resume without an external ``kill``.

``KEY`` is the task id: the experiment name for ``repro-experiments``
(``crash@fig4``), the task index for ``repro-fuzz`` (``crash@3``).
Every fault fires **once per campaign**: the first injection claims a
marker file in a shared state directory (atomic ``O_CREAT|O_EXCL``, so
respawned workers agree), and the retried attempt then succeeds — which
is exactly what lets chaos-tested campaigns converge to the same final
manifest as an uninterrupted run.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.errors import ConfigError

__all__ = ["FAULT_KINDS", "CHAOS_ENV_VAR", "ChaosPlan"]

FAULT_KINDS = ("crash", "hang", "corrupt", "interrupt")

#: Environment variable consulted by both CLIs when ``--chaos`` is absent.
CHAOS_ENV_VAR = "REPRO_RUNTIME_CHAOS"

#: Exit code of a chaos-crashed worker (distinct from signal deaths).
CRASH_EXIT_CODE = 17

#: How long a chaos hang sleeps.  Long enough that only a ``--timeout``
#: kill plausibly ends it, short enough that arming ``hang@`` without a
#: deadline stalls a campaign rather than deadlocking it forever.
HANG_S = 600.0

#: Sentinel returned in place of the real result by ``corrupt@``; fails
#: any schema validation (it is not a result dict / findings list).
CORRUPT_RESULT = "\x00chaos:corrupt-result"


class ChaosPlan:
    """A parsed fault-injection spec plus its cross-process marker state."""

    def __init__(self, spec: str, state_dir: str | Path) -> None:
        self.spec = spec
        self.state_dir = str(state_dir)
        self.faults = self._parse(spec)

    @staticmethod
    def _parse(spec: str) -> tuple[tuple[str, str], ...]:
        faults: list[tuple[str, str]] = []
        for token in (part.strip() for part in spec.split(",")):
            if not token:
                continue
            kind, sep, key = token.partition("@")
            if not sep or not key or kind not in FAULT_KINDS:
                raise ConfigError(
                    f"bad chaos token {token!r}; expected fault@task with "
                    f"fault in {{{', '.join(FAULT_KINDS)}}}"
                )
            faults.append((kind, key))
        return tuple(faults)

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPlan":
        """Parse ``spec`` with a fresh private marker directory.

        The directory is per-campaign, so a ``--resume`` run with the
        same spec re-arms the faults — but only for tasks the checkpoint
        has not already completed, and retries absorb the re-injection.
        """
        plan = cls(spec, tempfile.mkdtemp(prefix="repro-chaos-"))
        if not plan.faults:
            raise ConfigError(f"chaos spec {spec!r} names no faults")
        return plan

    def cleanup(self) -> None:
        shutil.rmtree(self.state_dir, ignore_errors=True)

    def _claim(self, kind: str, key: str) -> bool:
        """Atomically claim one injection; True exactly once per fault."""
        marker = Path(self.state_dir) / f"{kind}@{key}.fired"
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        os.close(fd)
        return True

    def _armed(self, kind: str, task_id: object) -> bool:
        return any(
            fault_kind == kind and key == str(task_id)
            for fault_kind, key in self.faults
        )

    # -- worker-side faults -------------------------------------------------

    def before_task(self, task_id: object) -> None:
        """Crash or hang the calling worker if this task is targeted."""
        if self._armed("crash", task_id) and self._claim("crash", str(task_id)):
            os._exit(CRASH_EXIT_CODE)
        if self._armed("hang", task_id) and self._claim("hang", str(task_id)):
            time.sleep(HANG_S)

    def after_task(self, task_id: object, result: object) -> object:
        """Replace the result with unparseable garbage if targeted."""
        if self._armed("corrupt", task_id) and self._claim("corrupt", str(task_id)):
            return CORRUPT_RESULT
        return result

    # -- supervisor-side fault ----------------------------------------------

    def wants_interrupt(self, task_id: object) -> bool:
        """True once when the supervisor should fake a Ctrl-C after ``task_id``."""
        return self._armed("interrupt", task_id) and self._claim(
            "interrupt", str(task_id)
        )
