"""Shared CLI plumbing for the repro console scripts.

``repro-experiments``, ``repro-fuzz`` and ``repro-trace`` present one
surface: the same ``--version`` string, the same ``--help`` epilog
stating the exit-code contract (:mod:`repro.runtime.exitcodes`), and the
same formatter so the epilog's table survives argparse's re-wrapping.
Build parsers through :func:`build_parser` instead of calling
``argparse.ArgumentParser`` directly so the three tools cannot drift.
"""

from __future__ import annotations

import argparse

from repro.errors import ConfigError
from repro.runtime.exitcodes import (
    EXIT_FAILURES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    describe,
)

__all__ = [
    "EXIT_CODE_EPILOG",
    "build_parser",
    "require_range",
    "version_string",
]

#: The epilog every repro CLI appends to ``--help``.
EXIT_CODE_EPILOG = "\n".join(
    ["exit codes:"]
    + [
        f"  {code}  {describe(code)}"
        for code in (EXIT_OK, EXIT_FAILURES, EXIT_USAGE, EXIT_INTERRUPTED)
    ]
)


def version_string(prog: str) -> str:
    from repro import __version__

    return f"{prog} (repro) {__version__}"


def require_range(
    name: str,
    value: float | int,
    minimum: float | int | None = None,
    maximum: float | int | None = None,
) -> float | int:
    """Validate a numeric CLI argument up front; returns it unchanged.

    Raises :class:`repro.errors.ConfigError` — which every repro CLI
    maps to the usage exit code (2) — naming the flag and the accepted
    range, so a bad ``--width 99`` fails before any machine is built
    instead of surfacing as a deep traceback or a silently-clamped run.
    """
    if (minimum is not None and value < minimum) or (
        maximum is not None and value > maximum
    ):
        if minimum is not None and maximum is not None:
            span = f"in {minimum}..{maximum}"
        elif minimum is not None:
            span = f">= {minimum}"
        else:
            span = f"<= {maximum}"
        raise ConfigError(f"{name} must be {span}, got {value!r}")
    return value


def build_parser(
    prog: str,
    description: str,
    epilog: str | None = None,
) -> argparse.ArgumentParser:
    """An ``ArgumentParser`` with the shared ``--version`` and epilog.

    ``epilog`` (if given) is tool-specific text placed *above* the common
    exit-code table.
    """
    parts = [text for text in (epilog, EXIT_CODE_EPILOG) if text]
    parser = argparse.ArgumentParser(
        prog=prog,
        description=description,
        epilog="\n\n".join(parts),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=version_string(prog)
    )
    return parser
