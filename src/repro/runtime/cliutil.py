"""Shared CLI plumbing for the repro console scripts.

``repro-experiments``, ``repro-fuzz`` and ``repro-trace`` present one
surface: the same ``--version`` string, the same ``--help`` epilog
stating the exit-code contract (:mod:`repro.runtime.exitcodes`), and the
same formatter so the epilog's table survives argparse's re-wrapping.
Build parsers through :func:`build_parser` instead of calling
``argparse.ArgumentParser`` directly so the three tools cannot drift.
"""

from __future__ import annotations

import argparse

from repro.runtime.exitcodes import (
    EXIT_FAILURES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    describe,
)

__all__ = ["EXIT_CODE_EPILOG", "build_parser", "version_string"]

#: The epilog every repro CLI appends to ``--help``.
EXIT_CODE_EPILOG = "\n".join(
    ["exit codes:"]
    + [
        f"  {code}  {describe(code)}"
        for code in (EXIT_OK, EXIT_FAILURES, EXIT_USAGE, EXIT_INTERRUPTED)
    ]
)


def version_string(prog: str) -> str:
    from repro import __version__

    return f"{prog} (repro) {__version__}"


def build_parser(
    prog: str,
    description: str,
    epilog: str | None = None,
) -> argparse.ArgumentParser:
    """An ``ArgumentParser`` with the shared ``--version`` and epilog.

    ``epilog`` (if given) is tool-specific text placed *above* the common
    exit-code table.
    """
    parts = [text for text in (epilog, EXIT_CODE_EPILOG) if text]
    parser = argparse.ArgumentParser(
        prog=prog,
        description=description,
        epilog="\n\n".join(parts),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=version_string(prog)
    )
    return parser
