"""Shared CLI plumbing for the repro console scripts.

The six repro console scripts present one surface: the same
``--version`` string, the same ``--help`` epilog stating the exit-code
contract (:mod:`repro.runtime.exitcodes`), the same formatter so the
epilog's table survives argparse's re-wrapping, and the same
``--engine`` flag selecting the execution engine every simulated
machine in the process (and its pool workers) uses.  Build parsers
through :func:`build_parser` instead of calling
``argparse.ArgumentParser`` directly so the tools cannot drift, and
call :func:`apply_engine` right after ``parse_args``.
"""

from __future__ import annotations

import argparse

from repro.errors import ConfigError
from repro.runtime.exitcodes import (
    EXIT_FAILURES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    describe,
)

__all__ = [
    "EXIT_CODE_EPILOG",
    "apply_engine",
    "build_parser",
    "require_range",
    "version_string",
]

#: The epilog every repro CLI appends to ``--help``.
EXIT_CODE_EPILOG = "\n".join(
    ["exit codes:"]
    + [
        f"  {code}  {describe(code)}"
        for code in (EXIT_OK, EXIT_FAILURES, EXIT_USAGE, EXIT_INTERRUPTED)
    ]
)


def version_string(prog: str) -> str:
    from repro import __version__

    return f"{prog} (repro) {__version__}"


def require_range(
    name: str,
    value: float | int,
    minimum: float | int | None = None,
    maximum: float | int | None = None,
) -> float | int:
    """Validate a numeric CLI argument up front; returns it unchanged.

    Raises :class:`repro.errors.ConfigError` — which every repro CLI
    maps to the usage exit code (2) — naming the flag and the accepted
    range, so a bad ``--width 99`` fails before any machine is built
    instead of surfacing as a deep traceback or a silently-clamped run.
    """
    if (minimum is not None and value < minimum) or (
        maximum is not None and value > maximum
    ):
        if minimum is not None and maximum is not None:
            span = f"in {minimum}..{maximum}"
        elif minimum is not None:
            span = f">= {minimum}"
        else:
            span = f"<= {maximum}"
        raise ConfigError(f"{name} must be {span}, got {value!r}")
    return value


def build_parser(
    prog: str,
    description: str,
    epilog: str | None = None,
) -> argparse.ArgumentParser:
    """An ``ArgumentParser`` with the shared ``--version`` and epilog.

    ``epilog`` (if given) is tool-specific text placed *above* the common
    exit-code table.
    """
    parts = [text for text in (epilog, EXIT_CODE_EPILOG) if text]
    parser = argparse.ArgumentParser(
        prog=prog,
        description=description,
        epilog="\n\n".join(parts),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=version_string(prog)
    )
    from repro.cpu.engine import ENGINES

    parser.add_argument(
        "--engine", choices=ENGINES, default=None, metavar="NAME",
        help="execution engine for simulated machines: "
             f"{', '.join(ENGINES)} (default: interpreter, or "
             "$REPRO_ENGINE when set)",
    )
    return parser


def apply_engine(args) -> None:
    """Install ``--engine`` as the process-wide default, if given.

    Mirrors the choice into ``$REPRO_ENGINE`` (see
    :mod:`repro.cpu.engine`), which is how supervised pool workers and
    recorded-trace subprocesses inherit it without per-call plumbing.
    A CLI run without ``--engine`` changes nothing, so the environment
    variable alone keeps working.
    """
    engine = getattr(args, "engine", None)
    if engine is not None:
        from repro.cpu.engine import set_default_engine

        set_default_engine(engine)
