"""The exit-code contract shared by ``repro-experiments`` and ``repro-fuzz``.

Both CLIs report campaign outcomes through the same four codes so shell
drivers (the Makefile smoke targets, CI) can treat them uniformly:

========================  =====  ==================================================
constant                  value  meaning
========================  =====  ==================================================
:data:`EXIT_OK`           0      campaign completed clean
:data:`EXIT_FAILURES`     1      completed, but with regressions/failed tasks
:data:`EXIT_USAGE`        2      bad invocation (argparse, unknown name/mitigation)
:data:`EXIT_INTERRUPTED`  3      SIGINT/SIGTERM; a resumable checkpoint was written
========================  =====  ==================================================

``EXIT_FAILURES`` covers fuzzing regressions (architectural divergences,
mitigated leaks) *and* tasks that exhausted their retry budget — either
way the campaign finished but its result is not clean.  After an
``EXIT_INTERRUPTED`` the same command line plus ``--resume`` continues
from the checkpoint.
"""

from __future__ import annotations

__all__ = ["EXIT_OK", "EXIT_FAILURES", "EXIT_USAGE", "EXIT_INTERRUPTED", "describe"]

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 3

_MEANINGS = {
    EXIT_OK: "campaign completed clean",
    EXIT_FAILURES: "campaign completed with regressions or failed tasks",
    EXIT_USAGE: "bad invocation",
    EXIT_INTERRUPTED: "interrupted; checkpoint written (re-run with --resume)",
}


def describe(code: int) -> str:
    """Human-readable meaning of a campaign exit code."""
    return _MEANINGS.get(code, f"unknown exit code {code}")
