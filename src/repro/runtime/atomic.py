"""Atomic file persistence: tmp file + fsync + ``os.replace``.

Every on-disk JSON document the campaign engines produce — result-cache
entries, corpus entries, experiment artifacts, campaign manifests,
checkpoints, findings JSONL — goes through these two helpers, so a
SIGKILL at any instant leaves either the previous complete file or the
new complete file, never a truncated one.  The tmp file is created with
:func:`tempfile.mkstemp` in the destination directory (same filesystem,
so the final ``os.replace`` is atomic; unique name, so two campaigns
sharing a cache or corpus directory cannot clobber each other's
half-written staging files).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str | Path, text: str, *, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically and durably; returns the path.

    The content is flushed and fsynced before the rename, so after this
    returns the file is either absent/old (crash before the replace) or
    complete — a reader can never observe a partial write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str | Path, payload: Any, *, indent: int | None = 2) -> Path:
    """Serialize ``payload`` canonically (sorted keys) and write it atomically.

    The one JSON persistence primitive: the result cache, the corpus,
    experiment artifacts, campaign manifests and checkpoints all call
    this, so their durability guarantees cannot diverge.
    """
    text = json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    return atomic_write_text(path, text)
