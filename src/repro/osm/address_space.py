"""Per-process virtual address spaces (page tables).

A page mapping carries the physical frame, permissions, and the flags the
isolation experiments of Section III-C/IV-A manipulate: *copy-on-write*
(fork) and *shared* (mmap).  Translation raises
:class:`repro.errors.SegmentationFault` / :class:`ProtectionFault` like a
hardware page-fault would; copy-on-write **write** faults are surfaced as
:class:`CowFault` for the kernel to resolve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProtectionFault, ReproError, SegmentationFault
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE

__all__ = ["Perm", "PageMapping", "CowFault", "AddressSpace", "PAGE_SHIFT", "PAGE_SIZE"]


class Perm(enum.Flag):
    """Page permissions."""

    NONE = 0
    R = enum.auto()
    W = enum.auto()
    X = enum.auto()
    RW = R | W
    RX = R | X
    RWX = R | W | X


@dataclass
class PageMapping:
    """One page-table entry."""

    frame: int
    perms: Perm
    cow: bool = False
    shared: bool = False


#: Memoized ``Perm`` member -> raw bit value (see ``translate``).
_PERM_BITS: dict[Perm, int] = {perm: perm.value for perm in Perm}
_W_BIT = Perm.W.value


class CowFault(ReproError):
    """A write touched a copy-on-write page; the kernel must copy it."""

    def __init__(self, va_page: int) -> None:
        super().__init__(f"copy-on-write fault at page {va_page:#x}")
        self.va_page = va_page


class AddressSpace:
    """A sparse page table: va_page -> :class:`PageMapping`."""

    def __init__(self) -> None:
        self._pages: dict[int, PageMapping] = {}

    # ------------------------------------------------------------------
    # Mapping management (kernel-only operations)
    # ------------------------------------------------------------------
    def map_page(
        self,
        va_page: int,
        frame: int,
        perms: Perm,
        cow: bool = False,
        shared: bool = False,
    ) -> None:
        self._pages[va_page] = PageMapping(frame, perms, cow=cow, shared=shared)

    def unmap_page(self, va_page: int) -> None:
        self._pages.pop(va_page, None)

    def mapping(self, va_page: int) -> PageMapping | None:
        return self._pages.get(va_page)

    def pages(self) -> dict[int, PageMapping]:
        return dict(self._pages)

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate(self, vaddr: int, access: Perm = Perm.R) -> int:
        """Translate a virtual address, enforcing permissions.

        Raises ``SegmentationFault`` for unmapped pages, ``ProtectionFault``
        for permission violations, and ``CowFault`` when a write hits a
        copy-on-write page (kernel resolves it and retries).
        """
        va_page = vaddr >> PAGE_SHIFT
        entry = self._pages.get(va_page)
        if entry is None:
            raise SegmentationFault(vaddr, access=_describe(access))
        # The permission check runs once per simulated memory access, so
        # it works on plain ints: Flag.__and__ / Flag.value resolve
        # through enum machinery that dominates this function's cost.
        # _PERM_BITS memoizes member -> value (Flag members, including
        # combination pseudo-members, are singletons, so identity-keyed
        # lookups are exact).
        wanted = _PERM_BITS.get(access)
        if wanted is None:
            wanted = _PERM_BITS[access] = access.value
        granted = _PERM_BITS.get(entry.perms)
        if granted is None:
            granted = _PERM_BITS[entry.perms] = entry.perms.value
        if wanted & ~granted:
            raise ProtectionFault(vaddr, access=_describe(access))
        if wanted & _W_BIT and entry.cow:
            raise CowFault(va_page)
        return (entry.frame << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    def translate_nofault(self, vaddr: int) -> int | None:
        """Permission-blind translation (the PTEditor/pagemap primitive).

        Returns None for unmapped addresses instead of faulting.  Only
        privileged callers may use this; the kernel enforces that.
        """
        entry = self._pages.get(vaddr >> PAGE_SHIFT)
        if entry is None:
            return None
        return (entry.frame << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    def __len__(self) -> int:
        return len(self._pages)

    def __repr__(self) -> str:
        return f"AddressSpace(pages={len(self._pages)})"


def _describe(access: Perm) -> str:
    if access & Perm.W:
        return "write"
    if access & Perm.X:
        return "execute"
    return "load"
