"""Simulated processes.

A process is an address space plus bookkeeping: pid, security domain,
simple region allocators for code/data/mmap virtual ranges, and the
scheduling state the kernel manipulates.  All memory operations go
through the kernel so copy-on-write and permission checks behave.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError
from repro.mem.physical import PAGE_SIZE
from repro.osm.address_space import AddressSpace
from repro.osm.domains import SecurityDomain

__all__ = ["ProcessState", "Process", "CODE_BASE", "DATA_BASE", "MMAP_BASE"]

CODE_BASE = 0x0000_0040_0000
CODE_LIMIT = 0x0020_0000_0000
DATA_BASE = 0x0020_0000_0000
DATA_LIMIT = 0x7F00_0000_0000
MMAP_BASE = 0x7F00_0000_0000
MMAP_LIMIT = 0x8000_0000_0000


class ProcessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    ZOMBIE = "zombie"


class Process:
    """One simulated process (or kernel thread / VM guest process)."""

    def __init__(
        self,
        pid: int,
        name: str,
        domain: SecurityDomain = SecurityDomain.USER,
    ) -> None:
        self.pid = pid
        self.name = name
        self.domain = domain
        self.address_space = AddressSpace()
        self.state = ProcessState.READY
        self.parent_pid: int | None = None
        self._next_code = CODE_BASE
        self._next_data = DATA_BASE
        self._next_mmap = MMAP_BASE

    @property
    def privileged(self) -> bool:
        return self.domain.privileged

    # ------------------------------------------------------------------
    # Virtual-range reservation (the kernel performs the actual mapping)
    # ------------------------------------------------------------------
    def reserve_range(self, pages: int, kind: str = "data") -> int:
        """Reserve a page-aligned virtual range; returns its base address."""
        if pages < 1:
            raise ConfigError("a region needs at least one page")
        if kind == "code":
            base, self._next_code = self._next_code, self._next_code + pages * PAGE_SIZE
            limit = CODE_LIMIT
        elif kind == "data":
            base, self._next_data = self._next_data, self._next_data + pages * PAGE_SIZE
            limit = DATA_LIMIT
        elif kind == "mmap":
            base, self._next_mmap = self._next_mmap, self._next_mmap + pages * PAGE_SIZE
            limit = MMAP_LIMIT
        else:
            raise ConfigError(f"unknown region kind: {kind!r}")
        if base + pages * PAGE_SIZE > limit:
            raise ConfigError(f"{kind} region exhausted its address window")
        return base

    def clone_layout_into(self, child: "Process") -> None:
        """Give a forked child the same allocation cursors as the parent,
        so identical post-fork allocations land at identical IVAs (the
        copy-on-write experiment of Section III-C.1 depends on this)."""
        child._next_code = self._next_code
        child._next_data = self._next_data
        child._next_mmap = self._next_mmap

    def __repr__(self) -> str:
        return (
            f"Process(pid={self.pid}, name={self.name!r}, "
            f"domain={self.domain.value}, state={self.state.value})"
        )
