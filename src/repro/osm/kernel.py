"""The simulated kernel: frames, processes, fork/mmap/mprotect, scheduling.

This is the substrate for the paper's Section III-C selection experiments
(fork + copy-on-write, mprotect-triggered remap, shared mmap) and the
Section IV-A isolation experiments (context-switch and sleep flush
semantics, cross-domain scheduling on one hardware thread).

Frame allocation is randomized (deterministically, via the core's seeded
RNG) because the predictor-selection hash consumes *physical* addresses:
an unprivileged attacker must not be able to predict them, which is
exactly why the paper's attacks search for collisions by probing.
"""

from __future__ import annotations

from collections import Counter

from repro.cpu.core import Core
from repro.cpu.thread import HardwareThread
from repro.errors import ConfigError, ProtectionFault, ReproError
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE
from repro.osm.address_space import CowFault, Perm
from repro.osm.domains import SecurityDomain
from repro.osm.process import Process, ProcessState

__all__ = ["Kernel"]

_FRAME_POOL_LO = 0x0000_0010
_FRAME_POOL_HI = 0x0100_0000  # 24-bit frame numbers: plenty of hash variety


class Kernel:
    """Owns processes, physical frames and the scheduling of hw threads."""

    def __init__(
        self,
        core: Core,
        flush_ssbp_on_switch: bool = False,
        resalt_on_switch: bool = False,
    ) -> None:
        self.core = core
        self.memory = core.memory
        self.rng = core.rng
        #: Section VI-B mitigation: flush SSBP on every context switch.
        self.flush_ssbp_on_switch = flush_ssbp_on_switch
        #: Section VI-B mitigation: randomized selection — re-key the
        #: predictor hash on every context switch/system call, so
        #: collisions found by code sliding go stale before use.
        self.resalt_on_switch = resalt_on_switch
        self._processes: dict[int, Process] = {}
        self._next_pid = 1
        self._used_frames: set[int] = set()
        self._frame_refs: Counter[int] = Counter()
        self.stats = Counter()

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------
    def allocate_frame(self) -> int:
        """Pick an unused physical frame at random (deterministic RNG)."""
        for _ in range(64):
            frame = self.rng.randrange(_FRAME_POOL_LO, _FRAME_POOL_HI)
            if frame not in self._used_frames:
                self._used_frames.add(frame)
                self._frame_refs[frame] = 1
                return frame
        raise ConfigError("physical frame pool exhausted")

    def allocate_frame_run(self, count: int, base_frame: int | None = None) -> int:
        """Claim ``count`` physically *contiguous* frames; returns the base.

        With ``base_frame`` the run is placed exactly there (the caller
        models an allocator whose placement is the secret under study);
        otherwise a free run is picked at random.  Contiguous physical
        runs are what hugepage/CMA-style allocations produce, and their
        base is exactly the kind of address the SPOILER-style probe of
        :mod:`repro.attacks.aslr` goes after.
        """
        if count < 1:
            raise ConfigError(f"frame run length must be >= 1, got {count}")
        for _ in range(64):
            base = (
                base_frame
                if base_frame is not None
                else self.rng.randrange(_FRAME_POOL_LO, _FRAME_POOL_HI - count)
            )
            run = range(base, base + count)
            if base < _FRAME_POOL_LO or base + count > _FRAME_POOL_HI:
                raise ConfigError(f"frame run {base:#x}+{count} outside the pool")
            if all(frame not in self._used_frames for frame in run):
                for frame in run:
                    self._used_frames.add(frame)
                    self._frame_refs[frame] = 1
                return base
            if base_frame is not None:
                raise ConfigError(f"frame run at {base_frame:#x} is not free")
        raise ConfigError("no free contiguous frame run found")

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def create_process(
        self, name: str, domain: SecurityDomain = SecurityDomain.USER
    ) -> Process:
        process = Process(self._next_pid, name, domain)
        self._processes[process.pid] = process
        self._next_pid += 1
        self.stats["process_created"] += 1
        return process

    def process(self, pid: int) -> Process:
        return self._processes[pid]

    def fork(self, parent: Process) -> Process:
        """Clone the parent with copy-on-write pages (Section III-C.1).

        Shared mappings stay shared; private pages keep their frame but
        are marked COW in both parent and child, so the first write by
        either side copies the page to a fresh frame — changing its
        physical address, and with it the predictor selection hash.
        """
        child = self.create_process(f"{parent.name}-child", parent.domain)
        child.parent_pid = parent.pid
        parent.clone_layout_into(child)
        for va_page, mapping in parent.address_space.pages().items():
            if mapping.shared:
                child.address_space.map_page(
                    va_page, mapping.frame, mapping.perms, shared=True
                )
            else:
                mapping.cow = True
                child.address_space.map_page(
                    va_page, mapping.frame, mapping.perms, cow=True
                )
            self._frame_refs[mapping.frame] += 1
        self.stats["fork"] += 1
        return child

    # ------------------------------------------------------------------
    # Mapping syscalls
    # ------------------------------------------------------------------
    def map_anonymous(
        self,
        process: Process,
        pages: int,
        perms: Perm = Perm.RW,
        kind: str = "data",
        vaddr: int | None = None,
    ) -> int:
        """Anonymous private mapping; returns the base virtual address."""
        base = process.reserve_range(pages, kind) if vaddr is None else vaddr
        for index in range(pages):
            frame = self.allocate_frame()
            process.address_space.map_page((base >> PAGE_SHIFT) + index, frame, perms)
        self.stats["map_anonymous"] += 1
        return base

    def map_contiguous(
        self,
        process: Process,
        pages: int,
        perms: Perm = Perm.RW,
        kind: str = "data",
        base_frame: int | None = None,
    ) -> tuple[int, int]:
        """Map ``pages`` backed by one contiguous physical frame run.

        Returns ``(base_va, base_frame)``.  Unlike :meth:`map_anonymous`
        the physical layout is sequential — page ``i`` sits in frame
        ``base_frame + i`` — which is the structure a loaded kernel or a
        hugepage-backed region has, and the structure the ASLR
        derandomization attack exploits.
        """
        base_frame = self.allocate_frame_run(pages, base_frame)
        base = process.reserve_range(pages, kind)
        for index in range(pages):
            process.address_space.map_page(
                (base >> PAGE_SHIFT) + index, base_frame + index, perms
            )
        self.stats["map_contiguous"] += 1
        return base, base_frame

    def map_shared(
        self,
        process: Process,
        source: Process,
        source_vaddr: int,
        pages: int,
        perms: Perm | None = None,
        kind: str = "mmap",
    ) -> int:
        """Map the source's frames into ``process`` (mmap MAP_SHARED).

        The two processes end up with (generally different) IVAs backed by
        identical IPAs — the last step of the paper's selection experiment.
        """
        base = process.reserve_range(pages, kind)
        for index in range(pages):
            src_mapping = source.address_space.mapping(
                (source_vaddr >> PAGE_SHIFT) + index
            )
            if src_mapping is None:
                raise ReproError("source range is not fully mapped")
            src_mapping.shared = True
            process.address_space.map_page(
                (base >> PAGE_SHIFT) + index,
                src_mapping.frame,
                perms if perms is not None else src_mapping.perms,
                shared=True,
            )
            self._frame_refs[src_mapping.frame] += 1
        self.stats["map_shared"] += 1
        return base

    def mprotect(
        self, process: Process, vaddr: int, pages: int, perms: Perm
    ) -> None:
        """Change page permissions (keeps COW/shared flags intact)."""
        for index in range(pages):
            mapping = process.address_space.mapping((vaddr >> PAGE_SHIFT) + index)
            if mapping is None:
                raise ProtectionFault(vaddr + index * PAGE_SIZE, access="mprotect")
            mapping.perms = perms
        self.stats["mprotect"] += 1

    # ------------------------------------------------------------------
    # Memory access with COW resolution
    # ------------------------------------------------------------------
    def translate(
        self,
        process: Process,
        vaddr: int,
        access: Perm = Perm.R,
        thread: HardwareThread | None = None,
    ) -> int:
        """Translate on behalf of a process, resolving COW write faults."""
        while True:
            try:
                paddr = process.address_space.translate(vaddr, access)
            except CowFault as fault:
                self._resolve_cow(process, fault.va_page, thread)
                continue
            return paddr

    def _resolve_cow(
        self, process: Process, va_page: int, thread: HardwareThread | None
    ) -> None:
        mapping = process.address_space.mapping(va_page)
        assert mapping is not None and mapping.cow
        if self._frame_refs[mapping.frame] > 1:
            new_frame = self.allocate_frame()
            self.memory.copy_frame(mapping.frame, new_frame)
            self._frame_refs[mapping.frame] -= 1
            mapping.frame = new_frame
        mapping.cow = False
        if thread is not None:
            thread.tlb.invalidate(va_page)
        self.stats["cow_break"] += 1

    def read(self, process: Process, vaddr: int, length: int) -> bytes:
        out = bytearray()
        while length:
            paddr = self.translate(process, vaddr, Perm.R)
            chunk = min(length, PAGE_SIZE - (vaddr & (PAGE_SIZE - 1)))
            out += self.memory.read(paddr, chunk)
            vaddr += chunk
            length -= chunk
        return bytes(out)

    def write(
        self, process: Process, vaddr: int, data: bytes, force: bool = False
    ) -> None:
        """Write process memory; ``force=True`` is the loader path that
        ignores the W permission (but still honours COW)."""
        view = memoryview(data)
        while view:
            access = Perm.W
            if force:
                mapping = process.address_space.mapping(vaddr >> PAGE_SHIFT)
                if mapping is not None and mapping.cow:
                    self._resolve_cow(process, vaddr >> PAGE_SHIFT, None)
                paddr = process.address_space.translate_nofault(vaddr)
                if paddr is None:
                    raise ProtectionFault(vaddr, access="loader-write")
            else:
                paddr = self.translate(process, vaddr, access)
            chunk = min(len(view), PAGE_SIZE - (vaddr & (PAGE_SIZE - 1)))
            self.memory.write(paddr, view[:chunk].tobytes())
            vaddr += chunk
            view = view[chunk:]

    def physical_address(self, process: Process, vaddr: int, caller: Process) -> int:
        """The PTEditor/pagemap primitive: IVA -> IPA, privileged only."""
        if not caller.privileged:
            raise ProtectionFault(vaddr, access="pagemap")
        paddr = process.address_space.translate_nofault(vaddr)
        if paddr is None:
            raise ProtectionFault(vaddr, access="pagemap")
        return paddr

    # ------------------------------------------------------------------
    # Scheduling and flush semantics (Section IV-A)
    # ------------------------------------------------------------------
    def schedule(self, process: Process, thread_id: int = 0) -> None:
        """Run ``process`` on a hardware thread.

        Switching to a *different* process flushes PSFP (and the TLB);
        SSBP survives — Vulnerability 1.  Rescheduling the same process
        is a no-op.
        """
        thread = self.core.thread(thread_id)
        if thread.current_pid == process.pid:
            return
        previous = (
            self._processes.get(thread.current_pid)
            if thread.current_pid is not None
            else None
        )
        if previous is not None and previous.state is ProcessState.RUNNING:
            previous.state = ProcessState.READY
        thread.on_context_switch(process.pid, flush_ssbp=self.flush_ssbp_on_switch)
        self._maybe_resalt(thread)
        process.state = ProcessState.RUNNING
        self.stats["context_switch"] += 1

    def preempt(self, process: Process, thread_id: int = 0) -> None:
        """Involuntary switch to ``process`` (timer tick / interloper).

        Flush semantics are identical to a voluntary switch — the
        hardware cannot tell why the kernel switched — but the event is
        accounted separately on both the kernel and the hardware thread,
        because preemption *frequency* is what the interference model
        sweeps and the robustness experiments report.
        """
        thread = self.core.thread(thread_id)
        if thread.current_pid != process.pid:
            thread.preemptions += 1
            self.stats["preemption"] += 1
        self.schedule(process, thread_id)

    def syscall(self, process: Process, thread_id: int = 0) -> None:
        """A system call (or sched_yield) round-trips through the kernel:
        the paper observes this flushes PSFP but not SSBP."""
        thread = self.core.thread(thread_id)
        thread.unit.on_context_switch(flush_ssbp=self.flush_ssbp_on_switch)
        self._maybe_resalt(thread)
        self.stats["syscall"] += 1

    def sleep(self, process: Process, thread_id: int = 0) -> None:
        """``sleep`` suspends the process; both predictors are flushed."""
        thread = self.core.thread(thread_id)
        process.state = ProcessState.SLEEPING
        if thread.current_pid == process.pid:
            thread.on_suspend()
            thread.current_pid = None
        self.stats["sleep"] += 1

    def _maybe_resalt(self, thread: HardwareThread) -> None:
        if self.resalt_on_switch:
            thread.unit.hash_salt = self.rng.getrandbits(48)

    def wake(self, process: Process) -> None:
        if process.state is ProcessState.SLEEPING:
            process.state = ProcessState.READY

    def __repr__(self) -> str:
        return (
            f"Kernel(processes={len(self._processes)}, "
            f"flush_ssbp_on_switch={self.flush_ssbp_on_switch})"
        )
