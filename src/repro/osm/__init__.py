"""OS model: address spaces, processes, kernel, security domains.

Named ``osm`` ("OS model") rather than ``os`` to avoid shadowing the
standard library module.
"""

from repro.osm.address_space import AddressSpace, CowFault, PageMapping, Perm
from repro.osm.domains import DOMAIN_PAIRS, SecurityDomain
from repro.osm.kernel import Kernel
from repro.osm.process import CODE_BASE, DATA_BASE, MMAP_BASE, Process, ProcessState

__all__ = [
    "AddressSpace",
    "CODE_BASE",
    "CowFault",
    "DATA_BASE",
    "DOMAIN_PAIRS",
    "Kernel",
    "MMAP_BASE",
    "PageMapping",
    "Perm",
    "Process",
    "ProcessState",
    "SecurityDomain",
]
