"""Security domains used in the isolation analysis (Section IV-A).

The paper probes three pairs of domains: a user process in the host OS, a
process inside a VM, and a kernel thread.  A domain is an attribute of a
process; crossing domains in the simulation means scheduling a process of
a different domain on the same hardware thread (or the sibling SMT
thread) and observing what predictor state survives.
"""

from __future__ import annotations

import enum

__all__ = ["SecurityDomain", "DOMAIN_PAIRS"]


class SecurityDomain(enum.Enum):
    """Where a process runs."""

    USER = "user"
    KERNEL = "kernel"
    VM_GUEST = "vm-guest"

    @property
    def privileged(self) -> bool:
        """Kernel threads may use PTEditor-like translation primitives."""
        return self is SecurityDomain.KERNEL


#: The three cross-domain pairs the paper evaluates.
DOMAIN_PAIRS: tuple[tuple[SecurityDomain, SecurityDomain], ...] = (
    (SecurityDomain.USER, SecurityDomain.USER),
    (SecurityDomain.USER, SecurityDomain.KERNEL),
    (SecurityDomain.USER, SecurityDomain.VM_GUEST),
)
