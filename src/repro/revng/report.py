"""A one-call reverse-engineering campaign (the paper's Section III).

:class:`ReverseEngineeringCampaign` composes the toolkit into the full
black-box workflow and produces a :class:`PredictorDossier` — the set of
facts the paper establishes about an unknown machine's speculative
memory access predictors:

* the timing levels and their separability;
* state-machine agreement with the TABLE I model;
* PSFP's entry count (abrupt eviction threshold);
* SSBP's eviction profile (gradual curve);
* the selection-hash fold stride.

Intended use: point it at any :class:`repro.cpu.machine.Machine` —
including one with altered predictor parameters — and see what a
black-box analyst would conclude.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exec_types import TimingClass
from repro.cpu.machine import Machine
from repro.revng.hash_recovery import collect_colliding_pairs, infer_stride
from repro.revng.organization import OrganizationExperiment
from repro.revng.state_infer import ModelValidator
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier

__all__ = ["PredictorDossier", "ReverseEngineeringCampaign"]


@dataclass
class PredictorDossier:
    """Everything the campaign concluded about the machine."""

    timing_levels: dict[str, float] = field(default_factory=dict)
    timing_margin: float = 0.0
    model_agreement: float = 0.0
    psf_present: bool = True
    psfp_entries: int | None = None
    ssbp_eviction_rates: dict[int, float] = field(default_factory=dict)
    hash_stride: int | None = None

    def summary(self) -> str:
        lines = ["Predictor dossier:"]
        lines.append(
            "  predictive store forwarding: "
            + ("present" if self.psf_present else "NOT present (SSB only)")
        )
        lines.append("  timing levels (cycles): " + ", ".join(
            f"{name}={mean:.0f}"
            for name, mean in sorted(self.timing_levels.items(), key=lambda kv: kv[1])
        ))
        lines.append(f"  smallest level gap: {self.timing_margin:.1f} cycles")
        lines.append(f"  TABLE I model agreement: {self.model_agreement:.2%}")
        lines.append(f"  PSFP entries (eviction threshold): {self.psfp_entries}")
        lines.append("  SSBP eviction: " + ", ".join(
            f"{size}->{rate:.0%}" for size, rate in sorted(self.ssbp_eviction_rates.items())
        ))
        lines.append(f"  selection hash: XOR fold at stride {self.hash_stride}")
        return "\n".join(lines)


class ReverseEngineeringCampaign:
    """Runs the Section III workflow end to end on one machine."""

    def __init__(self, machine: Machine | None = None) -> None:
        self.machine = machine or Machine(seed=303)
        self.harness = StldHarness(machine=self.machine)
        self.classifier = TimingClassifier(self.harness)

    def detect_psf(self) -> bool:
        """Raw-timing PSF detector (the first thing the analyst asks):
        after an aliasing mispredict, do sustained aliasing pairs ever
        drop *below* the stall level?  Only a predictive forward can run
        faster than waiting for the store's address generation."""
        from repro.revng.sequences import StldToken

        scratch = -777
        token_n = StldToken(False, scratch, scratch)
        token_a = StldToken(True, scratch, scratch)
        bypass = min(self.harness.run_token(token_n) for _ in range(3))
        for _ in range(4):  # train through the initial mispredicts
            self.harness.run_token(token_a)
        sustained = min(self.harness.run_token(token_a) for _ in range(10))
        # A predictive forward completes near the bypass latency (the
        # data moves before address generation); without PSF, sustained
        # aliasing is pinned at the stall level, well above it.
        return sustained < bypass * 1.2

    def run(
        self,
        validation_sequences: int = 10,
        psfp_sizes: tuple[int, ...] = (8, 10, 11, 12, 13),
        ssbp_sizes: tuple[int, ...] = (8, 16, 32),
        eviction_trials: int = 8,
        collision_pairs: int = 48,
    ) -> PredictorDossier:
        dossier = PredictorDossier()
        dossier.psf_present = self.detect_psf()

        calibration = self.classifier.calibrate(
            psf_supported=dossier.psf_present,
            require_all=dossier.psf_present,
        )
        dossier.timing_levels = {
            cls.name: mean for cls, mean in calibration.means.items()
        }
        dossier.timing_margin = self.classifier.margin()

        if dossier.psf_present:
            validator = ModelValidator(self.harness, self.classifier)
            report = validator.validate_random(sequences=validation_sequences)
            dossier.model_agreement = report.agreement

        organization = OrganizationExperiment(self.harness, self.classifier)
        if dossier.psf_present:
            psfp_curve = organization.psfp_curve(
                list(psfp_sizes), trials=eviction_trials
            )
            dossier.psfp_entries = psfp_curve.threshold(0.5)
        ssbp_curve = organization.ssbp_curve(
            list(ssbp_sizes), trials=max(eviction_trials, 12)
        )
        dossier.ssbp_eviction_rates = dict(ssbp_curve.rates)

        pairs = collect_colliding_pairs(count=collision_pairs)
        dossier.hash_stride = infer_stride(pairs)
        return dossier

    @property
    def separable(self) -> bool:
        """Whether timing probing is viable at all on this machine."""
        if self.classifier.calibration is None:
            return False
        means = self.classifier.calibration.means
        gap = abs(
            means[TimingClass.BYPASS] - means[TimingClass.STALL_CACHE]
        )
        return gap > 2.0
