"""Sequence DSL for store-load pair experiments.

The paper describes experiments as compact sequences such as ``(7n, a)``:
seven non-aliasing stld executions followed by one aliasing execution.
Counter-organization experiments additionally annotate each stld with the
hashed values of its load and store IPAs, written :math:`n_x^y` (load hash
``x``, store hash ``y``).

This module provides a textual form of that notation:

``"7n, a"``
    seven ``n`` then one ``a``, all with load/store hash ids 0.
``"6a:0:1, 35n"``
    six aliasing pairs with load id 0 and store id 1 (:math:`a_0^1`),
    then 35 plain ``n``.

Execution-type strings use the same run-length notation: ``"4E, 3H"``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.exec_types import ExecType
from repro.errors import ReproError

__all__ = [
    "StldToken",
    "SequenceSyntaxError",
    "parse",
    "to_bools",
    "format_sequence",
    "parse_types",
    "format_types",
]


class SequenceSyntaxError(ReproError):
    """A sequence or type string could not be parsed."""


@dataclass(frozen=True)
class StldToken:
    """One stld execution: aliasing or not, plus its hash-id annotations.

    ``load_id`` and ``store_id`` are symbolic identifiers (the subscripts
    and superscripts of the paper's :math:`n_x^y` notation), not hash
    values; experiments map ids to concrete IPAs.
    """

    aliasing: bool
    load_id: int = 0
    store_id: int = 0

    @property
    def kind(self) -> str:
        return "a" if self.aliasing else "n"

    def __str__(self) -> str:
        if self.load_id == 0 and self.store_id == 0:
            return self.kind
        return f"{self.kind}:{self.load_id}:{self.store_id}"


_TOKEN_RE = re.compile(
    r"^\s*(?P<count>\d+)?\s*(?P<kind>[na])"
    r"(?::(?P<load>\d+):(?P<store>\d+))?\s*$"
)


def parse(text: str) -> list[StldToken]:
    """Parse a sequence string into a flat list of tokens.

    >>> [str(t) for t in parse("2n, a:0:1")]
    ['n', 'n', 'a:0:1']
    """
    tokens: list[StldToken] = []
    for chunk in _split(text):
        match = _TOKEN_RE.match(chunk)
        if match is None:
            raise SequenceSyntaxError(f"bad sequence token: {chunk!r}")
        count = int(match.group("count") or 1)
        token = StldToken(
            aliasing=match.group("kind") == "a",
            load_id=int(match.group("load") or 0),
            store_id=int(match.group("store") or 0),
        )
        tokens.extend([token] * count)
    return tokens


def _split(text: str) -> Iterator[str]:
    stripped = text.strip()
    if stripped.startswith("(") and stripped.endswith(")"):
        stripped = stripped[1:-1]
    for chunk in stripped.split(","):
        chunk = chunk.strip()
        if chunk:
            yield chunk


def to_bools(text_or_tokens: str | Iterable[StldToken]) -> list[bool]:
    """Reduce a sequence to aliasing booleans (for the pure state machine).

    Raises :class:`SequenceSyntaxError` if any token carries a non-zero
    hash id, because those require a multi-entry simulation.
    """
    tokens = parse(text_or_tokens) if isinstance(text_or_tokens, str) else list(text_or_tokens)
    for token in tokens:
        if token.load_id != 0 or token.store_id != 0:
            raise SequenceSyntaxError(
                f"token {token} selects a non-default entry; "
                "use a PredictorUnit-level experiment instead"
            )
    return [token.aliasing for token in tokens]


def format_sequence(tokens: Sequence[StldToken]) -> str:
    """Render tokens back into run-length notation."""
    return ", ".join(_runs(list(map(str, tokens))))


def parse_types(text: str) -> list[ExecType]:
    """Parse an execution-type string like ``"4E, 3H"``.

    >>> parse_types("2H, G") == [ExecType.H, ExecType.H, ExecType.G]
    True
    """
    result: list[ExecType] = []
    for chunk in _split(text):
        match = re.match(r"^(\d+)?\s*([A-H])$", chunk)
        if match is None:
            raise SequenceSyntaxError(f"bad type token: {chunk!r}")
        count = int(match.group(1) or 1)
        result.extend([ExecType(match.group(2))] * count)
    return result


def format_types(types: Sequence[ExecType]) -> str:
    """Render execution types in the paper's run-length notation.

    >>> format_types([ExecType.H, ExecType.H, ExecType.G])
    '2H, G'
    """
    return ", ".join(_runs([t.value for t in types]))


def _runs(symbols: list[str]) -> Iterator[str]:
    index = 0
    while index < len(symbols):
        symbol = symbols[index]
        run = 1
        while index + run < len(symbols) and symbols[index + run] == symbol:
            run += 1
        yield symbol if run == 1 else f"{run}{symbol}"
        index += run
