"""Predictor organization experiments: eviction-set sizing (paper Fig 5).

The paper sizes PSFP and SSBP by training a *base entry*, priming the
structure with ``k`` other entries, and probing whether the base entry
survived.  PSFP shows an abrupt threshold at 12 (fully associative, LRU);
SSBP shows a gradual curve (complex set-based selection) that crosses 50%
around 16 and reaches ~90% at 32.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.revng.probes import PredictorProber
from repro.revng.sequences import StldToken
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier

__all__ = ["EvictionCurve", "OrganizationExperiment"]

#: Private id range for the pool of priming variants.
_POOL_BASE = 2000


@dataclass
class EvictionCurve:
    """Eviction rate per eviction-set size (one Fig 5 series)."""

    predictor: str
    rates: dict[int, float] = field(default_factory=dict)

    def threshold(self, level: float = 0.5) -> int | None:
        """Smallest eviction size whose rate reaches ``level``."""
        for size in sorted(self.rates):
            if self.rates[size] >= level:
                return size
        return None


class OrganizationExperiment:
    """Runs the Fig 5 eviction-rate measurements on a harness."""

    def __init__(
        self,
        harness: StldHarness,
        classifier: TimingClassifier,
        pool_size: int = 48,
        seed: int = 99,
        fresh_primes: bool = True,
    ) -> None:
        self.harness = harness
        self.classifier = classifier
        self.prober = PredictorProber(harness, classifier)
        self.rng = random.Random(seed)
        #: With ``fresh_primes`` every trial places brand-new priming
        #: stlds (independent random hashes — statistically clean, like
        #: the paper's randomly chosen eviction sets).  Otherwise a fixed
        #: pool is sampled, which is faster but correlates trials.
        self.fresh_primes = fresh_primes
        #: Recycled id range for fresh primes: ids are forgotten (and
        #: re-placed at new random hashes) every trial, because only
        #: 4096 distinct load hashes exist.
        self._fresh_ids_base = _POOL_BASE + 100_000
        self.pool = list(range(_POOL_BASE, _POOL_BASE + pool_size))
        if not fresh_primes:
            for vid in self.pool:
                # Force placement now so trial timing is uniform.
                self.harness.run_token(StldToken(False, load_id=vid, store_id=vid))

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Suspend/resume: flush both predictors between trials."""
        kernel = self.harness.kernel
        kernel.sleep(self.harness.process, self.harness.thread_id)
        kernel.wake(self.harness.process)
        kernel.schedule(self.harness.process, self.harness.thread_id)

    def _prime(self, size: int) -> None:
        """Run one aliasing pair (a G event) on ``size`` priming variants
        with random, pairwise-distinct hashes."""
        if self.fresh_primes:
            ids = range(self._fresh_ids_base, self._fresh_ids_base + size)
            self.harness.forget_ids(set(ids))
        else:
            ids = self.rng.sample(self.pool, size)
        for vid in ids:
            self.harness.run_token(StldToken(True, load_id=vid, store_id=vid))

    # ------------------------------------------------------------------
    def psfp_trial(self, eviction_size: int) -> bool:
        """One PSFP trial; returns True when the base entry was evicted."""
        self._flush()
        self.prober.train_psfp(load_id=0, store_id=0)
        self._prime(eviction_size)
        return not self.prober.psfp_trained(load_id=0, store_id=0)

    def ssbp_trial(self, eviction_size: int) -> bool:
        """One SSBP trial; returns True when the base entry was evicted."""
        self._flush()
        self.prober.charge_c3(load_id=0, store_id=0)
        self._prime(eviction_size)
        return not self.prober.c3_is_charged(load_id=0)

    # ------------------------------------------------------------------
    def psfp_curve(
        self, sizes: list[int] | None = None, trials: int = 10
    ) -> EvictionCurve:
        sizes = sizes if sizes is not None else [4, 8, 10, 11, 12, 13, 16]
        curve = EvictionCurve(predictor="PSFP")
        for size in sizes:
            evicted = sum(self.psfp_trial(size) for _ in range(trials))
            curve.rates[size] = evicted / trials
        return curve

    def ssbp_curve(
        self, sizes: list[int] | None = None, trials: int = 20
    ) -> EvictionCurve:
        sizes = sizes if sizes is not None else [2, 4, 8, 16, 24, 32, 40]
        curve = EvictionCurve(predictor="SSBP")
        for size in sizes:
            evicted = sum(self.ssbp_trial(size) for _ in range(trials))
            curve.rates[size] = evicted / trials
        return curve
