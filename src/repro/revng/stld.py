"""The stld microbenchmark (paper Listing 1) and its driving harness.

``build_stld`` produces the paper's probe routine: a store whose address
generation is delayed by a chain of 20 multiplies, immediately followed
by a load, followed by a dependent consumer chain that amplifies the
load's completion time into the routine's total time (the paper leans on
execution-port pressure for the same amplification).

:class:`StldHarness` drives stld variants on a :class:`Machine` exactly
the way the paper drives them on silicon: it maps a data buffer, places
stld copies at controlled instruction physical addresses (the privileged
PTEditor-style placement used in the reverse-engineering phase), executes
sequences like ``(7n, a)`` and reports per-invocation timings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hashfn import collision_offset, ipa_hash
from repro.cpu.isa import Halt, ImulImm, Load, Mov, Program, Store
from repro.cpu.machine import Machine
from repro.errors import CollisionNotFound, ConfigError
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE
from repro.osm.address_space import Perm
from repro.osm.process import Process
from repro.revng.sequences import StldToken, parse

__all__ = [
    "build_stld",
    "load_instruction_index",
    "store_instruction_index",
    "StldVariant",
    "StldHarness",
]

#: Registers of the stld routine (mirroring the paper's rdi/rsi usage).
STORE_ADDR_REG = "rdi"
LOAD_ADDR_REG = "rsi"
DATA_REG = "rdx"

_AGEN_IMULS = 20
_CONSUMER_IMULS = 13


def build_stld(
    agen_imuls: int = _AGEN_IMULS, consumer_imuls: int = _CONSUMER_IMULS
) -> Program:
    """The probe routine: delayed store, racing load, consumer chain."""
    instructions = [Mov("t0", STORE_ADDR_REG)]
    instructions += [ImulImm("t0", "t0", 1)] * agen_imuls
    instructions.append(Store(base="t0", src=DATA_REG, width=8))
    instructions.append(Load("rax", base=LOAD_ADDR_REG, width=8))
    instructions.append(Mov("acc", "rax"))
    instructions += [ImulImm("acc", "acc", 1)] * consumer_imuls
    instructions.append(Halt())
    return Program(instructions, name="stld")


def store_instruction_index(program: Program) -> int:
    """Index of the (single) store inside an stld program."""
    for index, instruction in enumerate(program.instructions):
        if isinstance(instruction, Store):
            return index
    raise ConfigError("program has no store")


def load_instruction_index(program: Program) -> int:
    """Index of the (single) load inside an stld program."""
    for index, instruction in enumerate(program.instructions):
        if isinstance(instruction, Load):
            return index
    raise ConfigError("program has no load")


@dataclass
class StldVariant:
    """One placed stld copy with its achieved predictor-selection hashes."""

    program: Program
    load_iva: int
    store_iva: int
    load_hash: int
    store_hash: int


class StldHarness:
    """Drives stld microbenchmarks against the simulated machine."""

    def __init__(
        self,
        machine: Machine | None = None,
        process: Process | None = None,
        aliasing_distance: int = 64,
        thread_id: int = 0,
    ) -> None:
        self.machine = machine or Machine(seed=2024)
        self.kernel = self.machine.kernel
        self.thread_id = thread_id
        self.process = process or self.kernel.create_process("revng")
        self.aliasing_distance = aliasing_distance
        buf = self.kernel.map_anonymous(self.process, pages=2)
        #: The load always reads here; an aliasing store writes the same
        #: address, a non-aliasing store writes ``aliasing_distance`` away
        #: (the paper requires a difference greater than 4).
        self.load_va = buf + 0x80
        self.alias_store_va = self.load_va
        self.disjoint_store_va = self.load_va + aliasing_distance
        self._variants: dict[tuple[int, int], StldVariant] = {}
        self._load_hash_by_id: dict[int, int] = {}
        self._store_hash_by_id: dict[int, int] = {}
        self._template = build_stld()
        self._ensure_variant(StldToken(aliasing=False))  # the base stld
        self._warm()

    # ------------------------------------------------------------------
    # Variant placement (privileged, PTEditor-style)
    # ------------------------------------------------------------------
    @property
    def salt(self) -> int:
        return self.machine.core.hash_salt

    def variant(self, load_id: int = 0, store_id: int = 0) -> StldVariant:
        return self._variants[(load_id, store_id)]

    def forget_ids(self, ids: set[int]) -> None:
        """Release id -> hash bindings (and their variants).

        Experiments that need an endless supply of random-hash stlds
        (e.g. fresh eviction sets per trial) recycle a bounded id range;
        only 4096 distinct load hashes exist, so unbounded *unique* ids
        would exhaust the space.
        """
        for key in [k for k in self._variants if k[0] in ids or k[1] in ids]:
            del self._variants[key]
        for mapping in (self._load_hash_by_id, self._store_hash_by_id):
            for bound in [i for i in mapping if i in ids]:
                del mapping[bound]

    def _frame_of(self, vaddr: int) -> int:
        mapping = self.process.address_space.mapping(vaddr >> PAGE_SHIFT)
        assert mapping is not None
        return mapping.frame

    def _hashes_at(self, base_iva: int) -> tuple[int, int, int, int]:
        program = self._template.relocate(base_iva)
        load_iva = program.iva(load_instruction_index(program))
        store_iva = program.iva(store_instruction_index(program))
        load_ipa = self.process.address_space.translate_nofault(load_iva)
        store_ipa = self.process.address_space.translate_nofault(store_iva)
        assert load_ipa is not None and store_ipa is not None
        return (
            load_iva,
            store_iva,
            ipa_hash(load_ipa, self.salt),
            ipa_hash(store_ipa, self.salt),
        )

    def _ensure_variant(self, token: StldToken) -> StldVariant:
        key = (token.load_id, token.store_id)
        cached = self._variants.get(key)
        if cached is not None:
            return cached
        variant = self._place_variant(token.load_id, token.store_id)
        self._variants[key] = variant
        self._load_hash_by_id.setdefault(token.load_id, variant.load_hash)
        self._store_hash_by_id.setdefault(token.store_id, variant.store_hash)
        return variant

    def _place_variant(
        self, load_id: int, store_id: int, max_attempts: int = 20_000
    ) -> StldVariant:
        """Place an stld copy whose hashes honour the id constraints.

        An id already bound to a hash is an *equality* constraint; a new
        id must land on a hash different from every other id of that axis.
        The in-page offset is the single degree of freedom, so an equality
        constraint anchors the placement and everything else is verified
        (retrying across fresh regions until it holds).
        """
        want_load = self._load_hash_by_id.get(load_id)
        want_store = self._store_hash_by_id.get(store_id)
        if want_load is not None and want_store is not None:
            # With a fixed store->load byte distance the two hashes are
            # linked: hash(store) = hash(load) ^ o ^ (o - distance) for
            # the load's page offset o, which spans only a handful of
            # values.  Arbitrary (load, store) hash pairs are therefore
            # unreachable — the paper's Fig 7 finding that collisions
            # require matching IPA distances.  Reuse an existing variant
            # or pick a fresh id instead.
            raise CollisionNotFound(
                f"cannot satisfy two hash equalities at once "
                f"(load_id={load_id}, store_id={store_id}): the fixed "
                "store-load distance links the hashes (paper Fig 7)"
            )
        other_loads = {
            h for i, h in self._load_hash_by_id.items() if i != load_id
        }
        other_stores = {
            h for i, h in self._store_hash_by_id.items() if i != store_id
        }
        load_off = self._template.relocate(0).iva(
            load_instruction_index(self._template)
        )
        store_off = self._template.relocate(0).iva(
            store_instruction_index(self._template)
        )
        for _ in range(max_attempts):
            region = self.kernel.map_anonymous(
                self.process, pages=3, perms=Perm.RX, kind="code"
            )
            anchor_page = region + PAGE_SIZE  # middle page: room both ways
            frame = self._frame_of(anchor_page)
            if want_load is not None:
                offset = collision_offset(want_load, frame, self.salt)
                base_iva = anchor_page + offset - load_off
            elif want_store is not None:
                offset = collision_offset(want_store, frame, self.salt)
                base_iva = anchor_page + offset - store_off
            else:
                base_iva = anchor_page
            if base_iva < region or base_iva + self._template.byte_size > (
                region + 3 * PAGE_SIZE
            ):
                continue
            load_iva, store_iva, load_hash, store_hash = self._hashes_at(base_iva)
            if want_load is not None and load_hash != want_load:
                continue
            if want_store is not None and store_hash != want_store:
                continue
            if want_load is None and load_hash in other_loads:
                continue
            if want_store is None and store_hash in other_stores:
                continue
            program = self.machine.place_program(
                self.process, self._template, base_iva
            )
            return StldVariant(
                program=program,
                load_iva=load_iva,
                store_iva=store_iva,
                load_hash=load_hash,
                store_hash=store_hash,
            )
        raise CollisionNotFound(
            f"could not place stld variant (load_id={load_id}, store_id={store_id})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _warm(self) -> None:
        """Warm the data lines with predictor-neutral runs (type H)."""
        for _ in range(3):
            self.run_token(StldToken(aliasing=False))

    def regs_for(self, token: StldToken) -> dict[str, int]:
        store_va = self.alias_store_va if token.aliasing else self.disjoint_store_va
        return {
            STORE_ADDR_REG: store_va,
            LOAD_ADDR_REG: self.load_va,
            DATA_REG: 0xDD,
        }

    def run_token(self, token: StldToken) -> int:
        """Execute one stld; returns its (noisy) measured cycles."""
        variant = self._ensure_variant(token)
        result = self.machine.run(
            self.process,
            variant.program,
            self.regs_for(token),
            thread_id=self.thread_id,
        )
        return self._measure(result.cycles)

    def run_token_with_pmc(self, token: StldToken) -> tuple[int, dict[str, int]]:
        """Execute one stld; returns (cycles, per-event PMC deltas).

        The deltas are counted organically by the pipeline (dispatches,
        forwards, stall tokens, rollbacks) — the Fig 2 attribution
        methodology.
        """
        thread = self.machine.core.thread(self.thread_id)
        snapshot = thread.pmc.snapshot()
        cycles = self.run_token(token)
        return cycles, thread.pmc.delta_since(snapshot)

    def _measure(self, cycles: int) -> int:
        """RDPRU-style reading: the true cycle count plus bounded noise."""
        noise = self.machine.core.model.timer_noise
        if not noise:
            return cycles
        jitter = self.machine.core.rng.uniform(-noise, noise)
        return max(0, round(cycles * (1.0 + jitter)))

    def run_sequence(self, sequence: str | list[StldToken]) -> list[int]:
        """Execute a sequence string like ``"7n, a"``; returns timings."""
        tokens = parse(sequence) if isinstance(sequence, str) else sequence
        return [self.run_token(token) for token in tokens]

    def run_events(self, sequence: str | list[StldToken]):
        """Oracle mode: execute a sequence and return the ground-truth
        execution types recorded by the pipeline (one per stld)."""
        tokens = parse(sequence) if isinstance(sequence, str) else sequence
        types = []
        for token in tokens:
            variant = self._ensure_variant(token)
            result = self.machine.run(
                self.process,
                variant.program,
                self.regs_for(token),
                thread_id=self.thread_id,
            )
            stld_events = [
                event
                for event in result.events
                if event.load_ipa
                == self.process.address_space.translate_nofault(variant.load_iva)
            ]
            assert len(stld_events) == 1, "stld must produce exactly one event"
            types.append(stld_events[0].exec_type)
        return types
