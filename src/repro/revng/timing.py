"""Timing-based execution-type classification (paper Section III-B).

The paper identifies six execution-time levels and attributes them to the
eight execution types.  :class:`TimingClassifier` reproduces the method:
it drives scratch stld variants into *known* predictor states (verified
against the TABLE I reference model), records the measured cycles of each
known type, and derives per-class timing centroids.  Unknown measurements
are then classified by nearest centroid.

A and B (and E and F) are indistinguishable by time — the paper separates
them with the inferred state machine, which
:mod:`repro.revng.state_infer` models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.counters import CounterState
from repro.core.exec_types import TIMING_CLASS, TimingClass
from repro.core.state_machine import run_sequence as model_run
from repro.errors import ReproError
from repro.revng.sequences import StldToken, parse
from repro.revng.stld import StldHarness

__all__ = [
    "CALIBRATION_SEQUENCE",
    "CalibrationResult",
    "CentroidClassifier",
    "TimingClassifier",
    "mad",
    "median",
]

#: A sequence that visits every timing class from a fresh entry:
#: 3H, G, 4A, 5C, D, C, D (reaching Block), 3E, 2A.
CALIBRATION_SEQUENCE = "3n, a, 4a, 5a, n, a, n, 3n, 2a"


def median(values: "list[float] | list[int]") -> float:
    """Median without :mod:`statistics` (kept dependency-light)."""
    if not values:
        raise ReproError("median of an empty sample")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: "list[float] | list[int]", center: float | None = None) -> float:
    """Median absolute deviation — the outlier-robust spread estimate
    the hardened calibration thresholds on (a single preempted probe can
    be thousands of cycles off; it moves a mean, not a median)."""
    if not values:
        return 0.0
    center = median(values) if center is None else center
    return median([abs(v - center) for v in values])


@dataclass
class CalibrationResult:
    """Per-class timing statistics gathered during calibration."""

    samples: dict[TimingClass, list[int]] = field(default_factory=dict)

    def add(self, timing_class: TimingClass, cycles: int) -> None:
        self.samples.setdefault(timing_class, []).append(cycles)

    @property
    def means(self) -> dict[TimingClass, float]:
        return {
            cls: sum(values) / len(values)
            for cls, values in self.samples.items()
            if values
        }

    def spread(self, timing_class: TimingClass) -> float:
        values = self.samples.get(timing_class, [])
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5

    @property
    def medians(self) -> dict[TimingClass, float]:
        """Outlier-robust per-class centers (the hardened fit path)."""
        return {
            cls: median(values)
            for cls, values in self.samples.items()
            if values
        }

    def mad(self, timing_class: TimingClass) -> float:
        """Outlier-robust per-class spread."""
        return mad(self.samples.get(timing_class, []))


class CentroidClassifier:
    """Nearest-centroid timing classification (the shared mechanism).

    Both the privileged reverse-engineering classifier and the
    unprivileged attacker classifier reduce to this: per-class timing
    centroids learned from measurements of known states.
    """

    def __init__(self) -> None:
        self.calibration: CalibrationResult | None = None
        self.robust = False
        self._centroids: list[tuple[float, TimingClass]] = []
        self._scales: dict[TimingClass, float] = {}

    def fit(self, calibration: CalibrationResult, robust: bool = False) -> None:
        """Learn centroids from ``calibration``.

        The default fit uses per-class means — the paper's method, and
        exact on a quiet machine.  ``robust=True`` switches to per-class
        medians with MAD scales, which a handful of preemption-inflated
        samples cannot drag; the hardened attack paths use it whenever
        an interference model is attached.
        """
        self.calibration = calibration
        self.robust = robust
        centers = calibration.medians if robust else calibration.means
        # Sort by centroid only: a coarse timer can quantize two classes
        # onto the same reading (their order is then arbitrary).
        self._centroids = sorted(
            ((center, cls) for cls, center in centers.items()),
            key=lambda pair: pair[0],
        )
        self._scales = {cls: calibration.mad(cls) for cls in centers}

    def classify(self, cycles: int) -> TimingClass:
        """Nearest-centroid classification of one measurement."""
        if not self._centroids:
            raise ReproError("classifier is not calibrated; call calibrate()")
        best = min(self._centroids, key=lambda pair: abs(pair[0] - cycles))
        return best[1]

    def classify_all(self, measurements: list[int]) -> list[TimingClass]:
        return [self.classify(cycles) for cycles in measurements]

    def classify_with_confidence(self, cycles: int) -> tuple[TimingClass, float]:
        """Nearest-centroid classification plus a confidence in [0, 1].

        Confidence is the relative margin between the nearest and the
        runner-up centroid: 1.0 when the reading sits on a centroid,
        0.0 when it is equidistant between two — the per-read signal the
        hardened protocols aggregate into per-byte confidence.
        """
        if not self._centroids:
            raise ReproError("classifier is not calibrated; call calibrate()")
        ranked = sorted(
            self._centroids, key=lambda pair: abs(pair[0] - cycles)
        )
        best = ranked[0]
        if len(ranked) < 2:
            return best[1], 1.0
        d_best = abs(best[0] - cycles)
        d_next = abs(ranked[1][0] - cycles)
        if d_best + d_next == 0:
            return best[1], 0.0
        return best[1], (d_next - d_best) / (d_next + d_best)

    def margin(self) -> float:
        """Smallest gap between adjacent class centroids (robustness)."""
        if len(self._centroids) < 2:
            return 0.0
        return min(
            self._centroids[i + 1][0] - self._centroids[i][0]
            for i in range(len(self._centroids) - 1)
        )

    def separability(self) -> float:
        """Worst adjacent-pair gap over combined noise scale.

        For every adjacent centroid pair the gap is divided by the sum
        of the two classes' MAD scales (floored at one cycle, the timer
        granularity).  Values well above 1 mean the classes are cleanly
        separated at this noise level; the robust calibration loop
        retries while this check fails.
        """
        if len(self._centroids) < 2:
            return 0.0
        worst = float("inf")
        for i in range(len(self._centroids) - 1):
            low, low_cls = self._centroids[i]
            high, high_cls = self._centroids[i + 1]
            scale = max(
                1.0, self._scales.get(low_cls, 0.0) + self._scales.get(high_cls, 0.0)
            )
            worst = min(worst, (high - low) / scale)
        return worst


class TimingClassifier(CentroidClassifier):
    """Maps measured stld cycles to timing classes on a privileged harness."""

    def __init__(self, harness: StldHarness) -> None:
        super().__init__()
        self.harness = harness

    def calibrate(
        self,
        variants: int = 3,
        psf_supported: bool = True,
        require_all: bool = True,
    ) -> CalibrationResult:
        """Drive scratch stld variants through known states and record
        each type's timing.  The scratch variants use private (negative)
        hash ids so they cannot collide with experiment variants, and the
        predictors are flushed afterwards (a ``sleep`` flushes both).

        On a PSF-less core (Zen 2), pass ``psf_supported=False`` so the
        expected labels follow the SSBP-only dynamics, and
        ``require_all=False`` since the PSF classes never occur there.
        """
        result = CalibrationResult()
        tokens_template = parse(CALIBRATION_SEQUENCE)
        expected_types, _ = model_run(
            CounterState(),
            [token.aliasing for token in tokens_template],
            psf_supported,
        )
        for variant_index in range(variants):
            scratch_id = -(10 + variant_index)
            tokens = [
                StldToken(token.aliasing, load_id=scratch_id, store_id=scratch_id)
                for token in tokens_template
            ]
            cycles = self.harness.run_sequence(tokens)
            for exec_type, measured in zip(expected_types, cycles):
                result.add(TIMING_CLASS[exec_type], measured)
        if require_all and set(result.means) != set(TimingClass):
            missing = set(TimingClass) - set(result.means)
            raise ReproError(f"calibration missed timing classes: {missing}")
        self.fit(result)
        self.flush_training_state()
        return result

    def flush_training_state(self) -> None:
        """Suspend/resume the harness process: flushes both predictors
        (Section IV-A), clearing the calibration's training residue."""
        kernel = self.harness.kernel
        kernel.sleep(self.harness.process, self.harness.thread_id)
        kernel.wake(self.harness.process)
        kernel.schedule(self.harness.process, self.harness.thread_id)
