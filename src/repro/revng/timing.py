"""Timing-based execution-type classification (paper Section III-B).

The paper identifies six execution-time levels and attributes them to the
eight execution types.  :class:`TimingClassifier` reproduces the method:
it drives scratch stld variants into *known* predictor states (verified
against the TABLE I reference model), records the measured cycles of each
known type, and derives per-class timing centroids.  Unknown measurements
are then classified by nearest centroid.

A and B (and E and F) are indistinguishable by time — the paper separates
them with the inferred state machine, which
:mod:`repro.revng.state_infer` models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.counters import CounterState
from repro.core.exec_types import TIMING_CLASS, TimingClass
from repro.core.state_machine import run_sequence as model_run
from repro.errors import ReproError
from repro.revng.sequences import StldToken, parse
from repro.revng.stld import StldHarness

__all__ = [
    "CALIBRATION_SEQUENCE",
    "CalibrationResult",
    "CentroidClassifier",
    "TimingClassifier",
]

#: A sequence that visits every timing class from a fresh entry:
#: 3H, G, 4A, 5C, D, C, D (reaching Block), 3E, 2A.
CALIBRATION_SEQUENCE = "3n, a, 4a, 5a, n, a, n, 3n, 2a"


@dataclass
class CalibrationResult:
    """Per-class timing statistics gathered during calibration."""

    samples: dict[TimingClass, list[int]] = field(default_factory=dict)

    def add(self, timing_class: TimingClass, cycles: int) -> None:
        self.samples.setdefault(timing_class, []).append(cycles)

    @property
    def means(self) -> dict[TimingClass, float]:
        return {
            cls: sum(values) / len(values)
            for cls, values in self.samples.items()
            if values
        }

    def spread(self, timing_class: TimingClass) -> float:
        values = self.samples.get(timing_class, [])
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5


class CentroidClassifier:
    """Nearest-centroid timing classification (the shared mechanism).

    Both the privileged reverse-engineering classifier and the
    unprivileged attacker classifier reduce to this: per-class timing
    centroids learned from measurements of known states.
    """

    def __init__(self) -> None:
        self.calibration: CalibrationResult | None = None
        self._centroids: list[tuple[float, TimingClass]] = []

    def fit(self, calibration: CalibrationResult) -> None:
        self.calibration = calibration
        # Sort by centroid only: a coarse timer can quantize two classes
        # onto the same reading (their order is then arbitrary).
        self._centroids = sorted(
            ((mean, cls) for cls, mean in calibration.means.items()),
            key=lambda pair: pair[0],
        )

    def classify(self, cycles: int) -> TimingClass:
        """Nearest-centroid classification of one measurement."""
        if not self._centroids:
            raise ReproError("classifier is not calibrated; call calibrate()")
        best = min(self._centroids, key=lambda pair: abs(pair[0] - cycles))
        return best[1]

    def classify_all(self, measurements: list[int]) -> list[TimingClass]:
        return [self.classify(cycles) for cycles in measurements]

    def margin(self) -> float:
        """Smallest gap between adjacent class centroids (robustness)."""
        if len(self._centroids) < 2:
            return 0.0
        return min(
            self._centroids[i + 1][0] - self._centroids[i][0]
            for i in range(len(self._centroids) - 1)
        )


class TimingClassifier(CentroidClassifier):
    """Maps measured stld cycles to timing classes on a privileged harness."""

    def __init__(self, harness: StldHarness) -> None:
        super().__init__()
        self.harness = harness

    def calibrate(
        self,
        variants: int = 3,
        psf_supported: bool = True,
        require_all: bool = True,
    ) -> CalibrationResult:
        """Drive scratch stld variants through known states and record
        each type's timing.  The scratch variants use private (negative)
        hash ids so they cannot collide with experiment variants, and the
        predictors are flushed afterwards (a ``sleep`` flushes both).

        On a PSF-less core (Zen 2), pass ``psf_supported=False`` so the
        expected labels follow the SSBP-only dynamics, and
        ``require_all=False`` since the PSF classes never occur there.
        """
        result = CalibrationResult()
        tokens_template = parse(CALIBRATION_SEQUENCE)
        expected_types, _ = model_run(
            CounterState(),
            [token.aliasing for token in tokens_template],
            psf_supported,
        )
        for variant_index in range(variants):
            scratch_id = -(10 + variant_index)
            tokens = [
                StldToken(token.aliasing, load_id=scratch_id, store_id=scratch_id)
                for token in tokens_template
            ]
            cycles = self.harness.run_sequence(tokens)
            for exec_type, measured in zip(expected_types, cycles):
                result.add(TIMING_CLASS[exec_type], measured)
        if require_all and set(result.means) != set(TimingClass):
            missing = set(TimingClass) - set(result.means)
            raise ReproError(f"calibration missed timing classes: {missing}")
        self.fit(result)
        self.flush_training_state()
        return result

    def flush_training_state(self) -> None:
        """Suspend/resume the harness process: flushes both predictors
        (Section IV-A), clearing the calibration's training residue."""
        kernel = self.harness.kernel
        kernel.sleep(self.harness.process, self.harness.thread_id)
        kernel.wake(self.harness.process)
        kernel.schedule(self.harness.process, self.harness.thread_id)
