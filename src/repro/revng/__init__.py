"""Reverse-engineering toolkit: the paper's black-box methodology.

Tools for probing the simulated hardware exactly the way the paper probes
silicon: stld sequences and their run-length notation, timing-based
execution-type classification, counter readout by probing, eviction-set
sizing, state-machine validation, and hash-function recovery.
"""

from repro.revng.hash_recovery import (
    collect_colliding_pairs,
    fold_hash,
    infer_stride,
    recover_fold_hash,
    stride_parity_ok,
)
from repro.revng.organization import EvictionCurve, OrganizationExperiment
from repro.revng.probes import PredictorProber
from repro.revng.report import PredictorDossier, ReverseEngineeringCampaign
from repro.revng.sequences import (
    SequenceSyntaxError,
    StldToken,
    format_sequence,
    format_types,
    parse,
    parse_types,
    to_bools,
)
from repro.revng.state_infer import ModelValidator, ValidationReport, refine_types
from repro.revng.stld import (
    StldHarness,
    StldVariant,
    build_stld,
    load_instruction_index,
    store_instruction_index,
)
from repro.revng.timing import (
    CALIBRATION_SEQUENCE,
    CalibrationResult,
    CentroidClassifier,
    TimingClassifier,
)

__all__ = [
    "CALIBRATION_SEQUENCE",
    "PredictorDossier",
    "ReverseEngineeringCampaign",
    "CalibrationResult",
    "EvictionCurve",
    "ModelValidator",
    "OrganizationExperiment",
    "PredictorProber",
    "SequenceSyntaxError",
    "StldHarness",
    "StldToken",
    "StldVariant",
    "CentroidClassifier",
    "TimingClassifier",
    "ValidationReport",
    "build_stld",
    "collect_colliding_pairs",
    "fold_hash",
    "format_sequence",
    "format_types",
    "infer_stride",
    "load_instruction_index",
    "parse",
    "parse_types",
    "recover_fold_hash",
    "refine_types",
    "store_instruction_index",
    "stride_parity_ok",
    "to_bools",
]
