"""Black-box counter readout through timing (paper Sections III/IV).

These probes recover predictor state the way the paper does on silicon —
by executing stld sequences and classifying their timings — never by
peeking at the simulator's internals.

* ``read_c3``: count STALL_CACHE (type F) observations while draining a
  load-hash entry with non-aliasing pairs; the F-run length *is* C3 when
  the probing pair's own PSFP entry is fresh (C0 = 0).  Destructive.
* ``psfp_trained``: the paper's ``phi(5n)`` probe — a trained entry
  answers ``(4E, H)``, an evicted one ``(5H)``.  Destructive (drains C0).
* ``charge_c3`` / ``clear_c3``: the training sequences of Section IV-A.
"""

from __future__ import annotations

from repro.core.exec_types import TimingClass
from repro.revng.sequences import StldToken
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier

__all__ = ["PredictorProber"]

#: Non-aliasing probes needed to fully drain C3 (max 32) plus slack.
_C3_DRAIN = 40


class PredictorProber:
    """Timing-only predictor state readout on a calibrated harness."""

    #: Probe store ids are allocated from a private descending range so a
    #: probing pair never aliases an experiment's PSFP entry.
    _next_probe_store = -50_000

    def __init__(self, harness: StldHarness, classifier: TimingClassifier) -> None:
        self.harness = harness
        self.classifier = classifier
        self._probe_store_for_load: dict[int, int] = {}

    def _probe_store_id(self, load_id: int) -> int:
        """A per-load-id store id with no hash-equality constraint (a
        fresh one per load id avoids the linked-hash restriction of
        double-equality placements)."""
        store_id = self._probe_store_for_load.get(load_id)
        if store_id is None:
            store_id = PredictorProber._next_probe_store
            PredictorProber._next_probe_store -= 1
            self._probe_store_for_load[load_id] = store_id
        return store_id

    # ------------------------------------------------------------------
    # SSBP (C3) probes
    # ------------------------------------------------------------------
    def read_c3(self, load_id: int = 0, probe_store_id: int | None = None) -> int:
        """Destructively read C3 of the entry selected by ``load_id``.

        Probes with a store hash whose PSFP pair is untrained, so every
        stalled observation is an F (C3-driven) and the F-run length
        equals C3.
        """
        if probe_store_id is None:
            probe_store_id = self._probe_store_id(load_id)
        token = StldToken(False, load_id=load_id, store_id=probe_store_id)
        count = 0
        for _ in range(_C3_DRAIN):
            cycles = self.harness.run_token(token)
            if self.classifier.classify(cycles) is TimingClass.STALL_CACHE:
                count += 1
            else:
                break
        return count

    def c3_is_charged(self, load_id: int = 0, probe_store_id: int | None = None) -> bool:
        """One-shot (cheap, nearly non-destructive: drains C3 by one)."""
        if probe_store_id is None:
            probe_store_id = self._probe_store_id(load_id)
        token = StldToken(False, load_id=load_id, store_id=probe_store_id)
        cycles = self.harness.run_token(token)
        return self.classifier.classify(cycles) is TimingClass.STALL_CACHE

    def charge_c3(self, load_id: int = 0, store_id: int = 0) -> None:
        """Section IV-A SSBP training: ``(7n, a, 7n, a, 7n, a)`` drives the
        entry's C4 to saturation and charges C3 to 15."""
        tokens = []
        for _ in range(3):
            tokens += [StldToken(False, load_id, store_id)] * 7
            tokens += [StldToken(True, load_id, store_id)]
        self.harness.run_sequence(tokens)

    def clear_c3(self, load_id: int = 0, probe_store_id: int | None = None) -> None:
        """Drain C3 with non-aliasing pairs from an untrained store hash
        (the paper's ``40 n_0^{j_0}`` step)."""
        if probe_store_id is None:
            probe_store_id = self._probe_store_id(load_id)
        token = StldToken(False, load_id=load_id, store_id=probe_store_id)
        for _ in range(_C3_DRAIN):
            self.harness.run_token(token)

    # ------------------------------------------------------------------
    # PSFP (C0) probes
    # ------------------------------------------------------------------
    def psfp_trained(self, load_id: int = 0, store_id: int = 0) -> bool:
        """The paper's ``phi(5n)`` probe for a PSFP entry.

        Requires C3 of the load's SSBP entry to be clear, as in the
        paper's experiment (otherwise the F-tail masks the answer).
        Destructive: drains C0.
        """
        token = StldToken(False, load_id=load_id, store_id=store_id)
        classes = [
            self.classifier.classify(self.harness.run_token(token))
            for _ in range(5)
        ]
        return classes[0] in (TimingClass.STALL_CACHE, TimingClass.ROLLBACK_FORWARD)

    def train_psfp(self, load_id: int = 0, store_id: int = 0) -> None:
        """Section IV-A PSFP training: charge C0 and clear C3 so the
        probe sequence ``phi(5n) = (4E, H)`` answers cleanly."""
        self.charge_c3(load_id, store_id)
        # The final G left C0 = 4 and C3 = 15.  Draining C3 through an
        # *untrained* store hash leaves the trained PSFP pair intact
        # (its C0 updates are dropped for the probing pair, which has no
        # live entry), exactly like the paper's ``40 n_0^{j_0}`` step.
        self.clear_c3(load_id)
