"""State-machine inference and validation (paper Section III-B.2/3).

The paper builds the TABLE I model by feeding arbitrary ``a``/``n``
sequences to the hardware and reconciling observed timings with a
counter model until more than 99.8% of random sequences match.  This
module reproduces the *validation* half of that loop: it runs random
sequences on the (black-box) simulated hardware, classifies timings, and
scores agreement against the reference model — and it refines the
timing-ambiguous classes (A/B and E/F) using the tracked model state,
which is how the paper tells those types apart.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.counters import CounterState
from repro.core.exec_types import TIMING_CLASS, ExecType, TimingClass
from repro.core.state_machine import transition
from repro.revng.sequences import StldToken
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier

__all__ = ["ValidationReport", "ModelValidator", "refine_types"]


def refine_types(
    classes: list[TimingClass], inputs: list[bool], start: CounterState = CounterState()
) -> list[ExecType]:
    """Resolve the A/B and E/F ambiguity using the tracked model state.

    The model threads the counter state along the sequence; for a
    STALL_FORWARD or STALL_CACHE observation the model's ``C3`` decides
    between the S1 (A/E) and S2 (B/F) flavours, exactly as the paper
    resolves them.
    """
    refined: list[ExecType] = []
    state = start
    for timing_class, aliasing in zip(classes, inputs):
        result = transition(state, aliasing)
        members = timing_class.members
        if len(members) == 1:
            refined.append(members[0])
        elif result.exec_type in members:
            refined.append(result.exec_type)
        else:
            # Observation disagrees with the model; report the sticky
            # flavour if the model says C3 is charged.
            sticky = state.c3 > 0
            refined.append(members[1] if sticky else members[0])
        state = result.state
    return refined


@dataclass
class ValidationReport:
    """Agreement between model-predicted and observed timing classes."""

    total: int = 0
    matches: int = 0
    mismatches: list[tuple[int, TimingClass, TimingClass]] = field(
        default_factory=list
    )
    sequences: int = 0

    @property
    def agreement(self) -> float:
        return self.matches / self.total if self.total else 1.0


class ModelValidator:
    """Scores the TABLE I model against black-box timing observations."""

    def __init__(self, harness: StldHarness, classifier: TimingClassifier) -> None:
        self.harness = harness
        self.classifier = classifier

    def validate_random(
        self,
        sequences: int = 20,
        length: int = 40,
        seed: int = 0,
        scratch_base: int = -1000,
    ) -> ValidationReport:
        """The paper's Section III-B.3 experiment: random ``a``/``n``
        sequences, model-vs-hardware agreement (paper: > 99.8%).

        Each sequence runs on a fresh scratch variant (private ids), so
        it starts from the Initialize state like the model does.
        """
        rng = random.Random(seed)
        report = ValidationReport()
        for sequence_index in range(sequences):
            scratch = scratch_base - sequence_index
            inputs = [rng.random() < 0.5 for _ in range(length)]
            tokens = [
                StldToken(aliasing, load_id=scratch, store_id=scratch)
                for aliasing in inputs
            ]
            observed = self.classifier.classify_all(
                self.harness.run_sequence(tokens)
            )
            state = CounterState()
            for position, (timing_class, aliasing) in enumerate(
                zip(observed, inputs)
            ):
                result = transition(state, aliasing)
                expected = TIMING_CLASS[result.exec_type]
                report.total += 1
                if expected is timing_class:
                    report.matches += 1
                else:
                    report.mismatches.append((position, expected, timing_class))
                state = result.state
            report.sequences += 1
        return report

    def validate_sequence(self, sequence: str) -> ValidationReport:
        """Validate one explicit sequence on the base stld variant."""
        from repro.revng.sequences import parse

        tokens = parse(sequence)
        inputs = [token.aliasing for token in tokens]
        observed = self.classifier.classify_all(self.harness.run_sequence(tokens))
        report = ValidationReport(sequences=1)
        state = CounterState()
        for position, (timing_class, aliasing) in enumerate(zip(observed, inputs)):
            result = transition(state, aliasing)
            expected = TIMING_CLASS[result.exec_type]
            report.total += 1
            if expected is timing_class:
                report.matches += 1
            else:
                report.mismatches.append((position, expected, timing_class))
            state = result.state
        return report
