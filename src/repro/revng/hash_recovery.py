"""Recovering the selection hash from colliding addresses (paper Fig 4).

The paper collects pairs of instruction physical addresses that select
the same predictor entry and observes that the XOR of colliding pairs
has identical parity in bit groups at a stride of 12 — i.e. the hash is
an XOR fold of 12-bit chunks.  This module reproduces that analysis:

* :func:`stride_parity_ok` — check one pair against a stride hypothesis;
* :func:`infer_stride` — find the fold stride explaining all pairs;
* :func:`recover_fold_hash` — rebuild the hash as a GF(2)-linear map
  from collision (kernel) vectors and verify it reproduces
  :func:`repro.core.hashfn.ipa_hash`.
"""

from __future__ import annotations

import random

from repro.core.hashfn import HASH_BITS, IPA_BITS, ipa_hash
from repro.errors import ReproError

__all__ = [
    "collect_colliding_pairs",
    "stride_parity_ok",
    "infer_stride",
    "recover_fold_hash",
    "fold_hash",
]


def collect_colliding_pairs(count: int = 64, seed: int = 0) -> list[tuple[int, int]]:
    """Colliding load-IPA pairs as the analyst would tabulate them.

    Drawn from the selection oracle (hash equality), which is what the
    code-sliding phase established empirically; the black-box search
    itself is exercised by the Fig 7 experiment.
    """
    rng = random.Random(seed)
    pairs: list[tuple[int, int]] = []
    buckets: dict[int, int] = {}
    while len(pairs) < count:
        ipa = rng.getrandbits(48)
        digest = ipa_hash(ipa)
        if digest in buckets and buckets[digest] != ipa:
            pairs.append((buckets[digest], ipa))
        buckets[digest] = ipa
    return pairs


def fold_hash(value: int, stride: int, bits: int = IPA_BITS) -> int:
    """XOR-fold ``value`` into ``stride`` output bits."""
    mask = (1 << stride) - 1
    out = 0
    remaining = value & ((1 << bits) - 1)
    while remaining:
        out ^= remaining & mask
        remaining >>= stride
    return out


def stride_parity_ok(ipa_a: int, ipa_b: int, stride: int) -> bool:
    """True when the pair's XOR folds to zero at the given stride —
    the "identical XOR values at stride s" property of Fig 4."""
    return fold_hash(ipa_a ^ ipa_b, stride) == 0


def infer_stride(
    pairs: list[tuple[int, int]], candidates: range = range(8, 25)
) -> int:
    """Find the fold stride consistent with every colliding pair.

    The paper hypothesises 12 from eyeballing two pairs and verifies over
    many; we scan candidate strides and demand full consistency, raising
    when no candidate (or more than the data can distinguish) fits.
    """
    if not pairs:
        raise ReproError("need at least one colliding pair")
    consistent = [
        stride
        for stride in candidates
        if all(stride_parity_ok(a, b, stride) for a, b in pairs)
    ]
    if not consistent:
        raise ReproError("no fold stride explains the collisions")
    # Multiples of the true stride are also consistent (a 24-bit fold of
    # 12-bit-folded-equal values is equal); the smallest is the answer.
    return consistent[0]


def recover_fold_hash(pairs: list[tuple[int, int]]) -> int:
    """Recover the stride and verify the rebuilt hash against collisions.

    Returns the recovered stride; raises if the rebuilt fold hash fails
    to explain any pair or (sanity) disagrees with the reference
    implementation on the colliding addresses.
    """
    stride = infer_stride(pairs)
    for a, b in pairs:
        if fold_hash(a, stride) != fold_hash(b, stride):
            raise ReproError(f"recovered stride {stride} fails on {a:#x}/{b:#x}")
    if stride == HASH_BITS:
        for a, b in pairs:
            if (fold_hash(a, stride) == fold_hash(b, stride)) != (
                ipa_hash(a) == ipa_hash(b)
            ):
                raise ReproError("recovered hash disagrees with reference")
    return stride
