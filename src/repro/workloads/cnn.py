"""CNN inference workloads for the SSBP fingerprinting study (Fig 11).

The paper fingerprints six CNN models by the SSBP residue their
inference loops leave behind: each model's layer structure executes
store-load pairs at model-specific instruction addresses with
model-specific aliasing behaviour, so the distribution of C3 values
across SSBP entries is a stable signature.

A model here is a list of layers; each layer owns one store-load pair
site (its inner loop) and a per-inference activity profile — how many
aliasing (read-modify-write accumulations: convolutions, residual adds)
and non-aliasing (streaming: pooling, im2col copies) executions it
performs.  The counts are derived from the real architectures' layer
structure (depths, channel widths), scaled to simulation size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.osm.process import Process
from repro.revng.stld import DATA_REG, LOAD_ADDR_REG, STORE_ADDR_REG, build_stld

__all__ = ["LayerSpec", "CnnModel", "CNN_MODELS", "CnnVictim", "model_names"]


@dataclass(frozen=True)
class LayerSpec:
    """One layer's per-inference stld activity."""

    name: str
    aliasing_runs: int
    streaming_runs: int


@dataclass(frozen=True)
class CnnModel:
    """A model: an ordered list of layers."""

    name: str
    layers: tuple[LayerSpec, ...]

    @property
    def total_runs(self) -> int:
        return sum(l.aliasing_runs + l.streaming_runs for l in self.layers)


def _conv_stack(prefix: str, blocks: list[tuple[int, int]]) -> tuple[LayerSpec, ...]:
    """Build a conv-stack profile from (aliasing, streaming) per block."""
    return tuple(
        LayerSpec(f"{prefix}{i}", aliasing, streaming)
        for i, (aliasing, streaming) in enumerate(blocks)
    )


#: Six models, as in Fig 11.  Aliasing/streaming counts echo each
#: architecture: VGG's plain deep conv stacks are accumulation-heavy;
#: GoogLeNet's inception branches add many small streaming layers;
#: ResNet's residual adds mix both; SE-ResNet adds squeeze-excite
#: (pooling + FC) streaming on top; AlexNet is shallow; MobileNetV2's
#: depthwise separable convs are streaming-dominated.
CNN_MODELS: dict[str, CnnModel] = {
    model.name: model
    for model in (
        CnnModel(
            "vgg16",
            _conv_stack(
                "conv",
                [(8, 2)] * 10 + [(6, 2)] * 3 + [(2, 6)] * 3,  # 13 conv + 3 fc
            ),
        ),
        CnnModel(
            "googlenet",
            _conv_stack(
                "incep",
                [(3, 5)] * 9 + [(2, 3)] * 9 + [(1, 7)] * 4,
            ),
        ),
        CnnModel(
            "resnet18",
            _conv_stack(
                "block",
                [(5, 3)] * 8 + [(4, 4)] * 4 + [(1, 2)] * 2,
            ),
        ),
        CnnModel(
            "seresnet18",
            _conv_stack(
                "seblock",
                [(5, 3)] * 8 + [(4, 4)] * 4 + [(2, 8)] * 6,  # + SE bottlenecks
            ),
        ),
        CnnModel(
            "alexnet",
            _conv_stack("conv", [(7, 3)] * 5 + [(3, 4)] * 3),
        ),
        CnnModel(
            "mobilenetv2",
            _conv_stack("dwconv", [(1, 6)] * 17 + [(2, 3)] * 2),
        ),
    )
}


def model_names() -> list[str]:
    return list(CNN_MODELS)


class CnnVictim:
    """A victim process running CNN inference passes.

    Each layer's inner loop is an stld placed at its own code address;
    an inference pass executes every layer's aliasing and streaming
    accesses in order, leaving the model's SSBP signature behind.
    """

    def __init__(
        self, machine: Machine, model: CnnModel, process: Process | None = None
    ) -> None:
        self.machine = machine
        self.model = model
        self.process = process or machine.kernel.create_process(
            f"cnn-{model.name}"
        )
        buffer_base = machine.kernel.map_anonymous(self.process, pages=2)
        self._alias_va = buffer_base + 0x40
        self._stream_va = buffer_base + 0x240
        template = build_stld()
        self._layer_programs: list[Program] = [
            machine.load_program(self.process, template)
            for _ in model.layers
        ]

    def _run_layer(self, program: Program, aliasing: bool) -> None:
        store_va = self._alias_va if aliasing else self._stream_va
        self.machine.run(
            self.process,
            program,
            {
                STORE_ADDR_REG: store_va,
                LOAD_ADDR_REG: self._alias_va,
                DATA_REG: 1,
            },
        )

    def inference_pass(self) -> None:
        """One forward pass: every layer fires its access pattern."""
        for layer, program in zip(self.model.layers, self._layer_programs):
            for _ in range(layer.aliasing_runs):
                self._run_layer(program, aliasing=True)
            for _ in range(layer.streaming_runs):
                self._run_layer(program, aliasing=False)
