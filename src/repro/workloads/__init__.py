"""Workloads: SPEC2017-like instruction mixes and CNN inference victims."""

from repro.workloads.cnn import (
    CNN_MODELS,
    CnnModel,
    CnnVictim,
    LayerSpec,
    model_names,
)
from repro.workloads.spec2017 import (
    SPEC2017,
    WorkloadSpec,
    build_workload,
    workload_names,
)

__all__ = [
    "CNN_MODELS",
    "CnnModel",
    "CnnVictim",
    "LayerSpec",
    "SPEC2017",
    "WorkloadSpec",
    "build_workload",
    "model_names",
    "workload_names",
]
