"""SPEC CPU 2017-like workloads for the SSBD overhead study (Fig 12).

The paper measures SSBD's cost on ten SPECrate benchmarks.  SSBD's cost
mechanism is specific: every load that would otherwise *bypass* an
unresolved older store must stall until the store's address generation —
so a benchmark's overhead is governed by how often its loads race
pending stores whose addresses resolve late, and how rarely those pairs
actually alias (aliasing pairs stall either way).

Each synthetic workload is an instruction mix characterized by:

* ``racing_loads`` — fraction of operations that are a delayed-store +
  load pair (the SSBD-sensitive pattern);
* ``aliasing`` — fraction of racing pairs that truly alias;
* ``agen_depth`` — multiply-chain length feeding store addresses
  (deeper chains mean longer SSBD stalls);
* ``footprint_pages`` — data working set (cache-miss-bound benchmarks
  amortize the stalls, shrinking relative overhead);
* ``alu_ratio`` — plain compute padding between memory operations.

The per-benchmark values are calibrated so the *shape* of Fig 12 holds:
``perlbench`` and ``exchange2`` (branchy, store-forward-heavy integer
codes) exceed 20% overhead, while memory-bound ``mcf``/``xz`` barely
notice SSBD.  Absolute percentages are simulation-scale, not silicon.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.cpu.isa import (
    Alu,
    AluImm,
    Halt,
    ImulImm,
    Load,
    Mfence,
    Mov,
    MovImm,
    Program,
    Store,
)

__all__ = ["WorkloadSpec", "SPEC2017", "build_workload", "workload_names"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Characterization of one SPECrate-like benchmark."""

    name: str
    racing_loads: float
    aliasing: float
    agen_depth: int
    footprint_pages: int
    alu_ratio: float

    def __post_init__(self) -> None:
        if not 0 <= self.racing_loads <= 1:
            raise ValueError("racing_loads is a fraction")
        if not 0 <= self.aliasing <= 1:
            raise ValueError("aliasing is a fraction")


#: The ten SPECrate benchmarks of Fig 12.
SPEC2017: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec("perlbench", racing_loads=0.12, aliasing=0.02,
                     agen_depth=6, footprint_pages=8, alu_ratio=0.30),
        WorkloadSpec("gcc", racing_loads=0.10, aliasing=0.18,
                     agen_depth=5, footprint_pages=24, alu_ratio=0.40),
        WorkloadSpec("mcf", racing_loads=0.04, aliasing=0.25,
                     agen_depth=4, footprint_pages=128, alu_ratio=0.20),
        WorkloadSpec("omnetpp", racing_loads=0.09, aliasing=0.15,
                     agen_depth=5, footprint_pages=48, alu_ratio=0.35),
        WorkloadSpec("xalancbmk", racing_loads=0.10, aliasing=0.12,
                     agen_depth=4, footprint_pages=32, alu_ratio=0.35),
        WorkloadSpec("x264", racing_loads=0.07, aliasing=0.30,
                     agen_depth=5, footprint_pages=40, alu_ratio=0.50),
        WorkloadSpec("deepsjeng", racing_loads=0.07, aliasing=0.18,
                     agen_depth=4, footprint_pages=16, alu_ratio=0.45),
        WorkloadSpec("leela", racing_loads=0.08, aliasing=0.20,
                     agen_depth=4, footprint_pages=12, alu_ratio=0.50),
        WorkloadSpec("exchange2", racing_loads=0.26, aliasing=0.03,
                     agen_depth=7, footprint_pages=4, alu_ratio=0.35),
        WorkloadSpec("xz", racing_loads=0.05, aliasing=0.22,
                     agen_depth=4, footprint_pages=96, alu_ratio=0.30),
    )
}


def workload_names() -> list[str]:
    return list(SPEC2017)


def _pow2_mask(footprint_bytes: int) -> int:
    """Largest power-of-two window inside the footprint, 8-byte aligned."""
    window = 1
    while window * 2 <= footprint_bytes:
        window *= 2
    return (window - 1) & ~7


def prefill(kernel, process, base: int, pages: int, seed: int = 0) -> None:
    """Fill the workload's data region with pseudo-random pointers so the
    chase below visits a spread of addresses."""
    rng = random.Random(seed ^ 0x5EC0)
    payload = bytes(rng.randrange(256) for _ in range(pages * 4096))
    kernel.write(process, base, payload)


def build_workload(
    spec: WorkloadSpec,
    data_base: int,
    operations: int = 400,
    seed: int = 0,
) -> Program:
    """Emit a program realizing the spec's instruction mix.

    The SSBD-sensitive pattern is a pointer chase: each racing block's
    store address derives (through the AGEN multiply chain) from the
    previously loaded value, and the next load continues the chase — so
    a serialized load lengthens the program's critical path the way it
    would in store-forwarding-heavy integer code.  Compute padding uses
    independent registers (it models the OoO machine's ability to hide
    latency under parallel work).  A fence every 24 operations bounds
    store-queue pressure the way natural serialization points would.

    Call :func:`prefill` on the data region first.
    """
    # zlib.crc32 is stable across processes (str hash is randomized).
    rng = random.Random((zlib.crc32(spec.name.encode()) & 0xFFFF) * 65_537 + seed)
    footprint = spec.footprint_pages * 4096
    mask = _pow2_mask(footprint)
    instructions: list = [
        MovImm("base", data_base),
        MovImm("pv", rng.randrange(0, footprint, 8)),
        MovImm("acc", 1),
    ]

    for op_index in range(operations):
        roll = rng.random()
        if roll < spec.racing_loads:
            # Pointer-chase racing block: store address from the chased
            # value through the AGEN chain; the load continues the chase.
            instructions.append(AluImm("pt", "pv", mask, "and"))
            instructions.append(Alu("sa", "base", "pt", "add"))
            instructions.append(Mov("sd", "sa"))
            instructions.extend(
                ImulImm("sd", "sd", 1) for _ in range(spec.agen_depth)
            )
            instructions.append(Store(base="sd", src="pv", width=8))
            if rng.random() < spec.aliasing:
                instructions.append(Mov("la", "sa"))
            else:
                instructions.append(AluImm("pt2", "pv", 64 + 8 * op_index % 2048, "add"))
                instructions.append(AluImm("pt2", "pt2", mask, "and"))
                instructions.append(Alu("la", "base", "pt2", "add"))
            instructions.append(Load("pv", base="la", width=8))
        elif roll < spec.racing_loads + spec.alu_ratio:
            # Independent compute padding (no serial chain).
            scratch = f"t{op_index % 6}"
            instructions.append(AluImm(scratch, "base", op_index, "add"))
            instructions.append(ImulImm(scratch, scratch, 3))
        else:
            # Plain streaming access at a static offset.
            offset = rng.randrange(0, footprint - 8, 8)
            instructions.append(AluImm("la", "base", offset, "add"))
            if rng.random() < 0.4:
                instructions.append(Store(base="la", src="acc", width=8))
            else:
                instructions.append(Load("sv", base="la", width=8))
        if op_index % 24 == 23:
            instructions.append(Mfence())
    instructions.append(Halt())
    return Program(instructions, name=f"spec-{spec.name}")
