"""Trace exporters: Chrome trace-event JSON and plain-text timelines.

``to_chrome_trace`` produces the Trace Event Format that both
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) open
directly: complete ("X") slices for instruction lifetimes and STLD
windows, instant ("i") markers for squash/restore/fault edges, and
counter ("C") tracks for live predictor counters.  Simulated cycles map
1:1 onto microseconds — the timeline ruler reads as cycles.

``to_timeline`` renders the same trace as an aligned per-instruction
text table for terminals and diffs in bug reports.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["to_chrome_trace", "to_timeline", "summarize_events"]

#: Events that mark a point in time rather than a span.
_INSTANT_KINDS = {"squash", "restore", "fault", "branch-predict", "branch-resolve"}


def _pid_tid(event: dict[str, Any]) -> tuple[int, int]:
    # One Perfetto "process" per simulation; one row per hardware thread.
    return 0, event.get("thread", 0)


def to_chrome_trace(header: dict[str, Any], events: list[dict[str, Any]]) -> dict[str, Any]:
    """Convert a recorded trace to a Chrome trace-event JSON object."""
    out: list[dict[str, Any]] = []
    threads = sorted({event.get("thread", 0) for event in events})
    for thread in threads:
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": thread,
                "args": {"name": f"hw-thread {thread}"},
            }
        )

    # Pair dispatch -> commit per (thread, index) occurrence to build
    # instruction slices; unpaired dispatches (squashed wrong-path work)
    # become zero-length transient slices.
    open_dispatch: dict[tuple[int, int], dict[str, Any]] = {}
    for event in events:
        kind = event["kind"]
        pid, tid = _pid_tid(event)
        cycle = event.get("cycle", 0)
        if kind == "dispatch":
            key = (tid, event["index"])
            open_dispatch[key] = event
            continue
        if kind == "commit":
            key = (tid, event["index"])
            started = open_dispatch.pop(key, None)
            begin = started.get("cycle", cycle) if started else cycle
            out.append(
                {
                    "name": f"[{event['index']}] {event['op']}",
                    "cat": "instruction",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": begin,
                    "dur": max(cycle - begin, 1),
                    "args": {"index": event["index"], "retired": event["retired"]},
                }
            )
            continue
        if kind == "predictor-transition":
            base = {"pid": pid, "tid": tid, "ts": cycle, "ph": "C"}
            counters = event.get("counters_after", [])
            out.append(
                {
                    **base,
                    "name": f"psfp c0-c2 t{tid}",
                    "args": {f"c{i}": v for i, v in enumerate(counters[:3])},
                }
            )
            out.append(
                {
                    **base,
                    "name": f"ssbp c3-c4 t{tid}",
                    "args": {f"c{i + 3}": v for i, v in enumerate(counters[3:])},
                }
            )
            out.append(
                {
                    "name": f"{event['exec_type']}: {event['state_before']}"
                    f" -> {event['state_after']}",
                    "cat": "predictor",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": cycle,
                    "args": {
                        "store_hash": event["store_hash"],
                        "load_hash": event["load_hash"],
                        "aliasing": event["aliasing"],
                    },
                }
            )
            continue
        if kind in _INSTANT_KINDS:
            args = {
                k: v
                for k, v in event.items()
                if k not in ("kind", "seq", "cycle", "thread")
            }
            out.append(
                {
                    "name": kind,
                    "cat": "pipeline",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": cycle,
                    "args": args,
                }
            )
            continue
        # STLD speculation outcomes: short slices from predict to complete
        # are more readable than instants; we only know the completion
        # cycle, so render a point slice carrying the payload.
        args = {
            k: v for k, v in event.items() if k not in ("kind", "seq", "cycle", "thread")
        }
        out.append(
            {
                "name": kind,
                "cat": "stld",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": cycle,
                "dur": 1,
                "args": args,
            }
        )
    # Leftover dispatches never committed: squashed wrong-path work.
    for (tid, index), event in sorted(open_dispatch.items()):
        out.append(
            {
                "name": f"[{index}] {event['op']} (squashed)",
                "cat": "transient",
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": event.get("cycle", 0),
                "dur": 1,
                "args": {"index": index},
            }
        )
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {k: v for k, v in header.items() if k != "kind"},
    }


def to_timeline(header: dict[str, Any], events: list[dict[str, Any]]) -> str:
    """Render a trace as an aligned plain-text per-event timeline."""
    lines = []
    context = ", ".join(
        f"{key}={value}"
        for key, value in sorted(header.items())
        if key not in ("kind", "schema")
    )
    lines.append(f"# trace schema {header.get('schema')}" + (f" ({context})" if context else ""))
    lines.append(f"{'SEQ':>6} {'CYCLE':>8} {'T':>2} {'KIND':<20} DETAIL")
    for event in events:
        detail = ", ".join(
            f"{key}={value}"
            for key, value in event.items()
            if key not in ("seq", "cycle", "thread", "kind")
        )
        lines.append(
            f"{event.get('seq', 0):>6} {event.get('cycle', 0):>8} "
            f"{event.get('thread', 0):>2} {event['kind']:<20} {detail}"
        )
    return "\n".join(lines) + "\n"


def summarize_events(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Rollup used by ``repro-trace summarize``: counts per kind plus the
    headline speculation facts a triager wants first."""
    kinds: dict[str, int] = {}
    exec_types: dict[str, int] = {}
    squashes: dict[str, int] = {}
    transitions: dict[str, int] = {}
    for event in events:
        kind = event["kind"]
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "predictor-transition":
            exec_types[event["exec_type"]] = exec_types.get(event["exec_type"], 0) + 1
            edge = f"{event['state_before']} -> {event['state_after']}"
            transitions[edge] = transitions.get(edge, 0) + 1
        elif kind == "squash":
            squashes[event["reason"]] = squashes.get(event["reason"], 0) + 1
    last = events[-1] if events else None
    return {
        "events": sum(kinds.values()),
        "kinds": dict(sorted(kinds.items())),
        "exec_types": dict(sorted(exec_types.items())),
        "squashes": dict(sorted(squashes.items())),
        "table1_edges": dict(sorted(transitions.items())),
        "last_cycle": last.get("cycle", 0) if last else 0,
    }


def write_chrome_trace(path: str, header: dict[str, Any], events: list[dict[str, Any]]) -> None:
    from ..runtime import atomic_write_text

    atomic_write_text(path, json.dumps(to_chrome_trace(header, events), indent=2) + "\n")
