"""Record traces of catalog experiments, fuzz cases, and attack demos.

Three target grammars, shared by ``repro-trace record`` and the
``--trace-findings`` path in ``repro-fuzz``:

* ``<experiment>`` — any name from the ``repro-experiments`` catalog
  (the driver's own machines pick the tracer up at construction);
* ``case:<generator>:<seed>:<blocks>`` — a fuzz-corpus style program run
  through the pipeline executor (honours ``--mitigation``/``--model``);
* ``stl`` — a compact Spectre-STL gadget driver (Listing 2): mistrain
  the PSFP with aliasing victim calls, then one attack call with the
  out-of-bounds index.  Recording it under ``none`` and ``ssbd`` and
  diffing the traces shows the exact event where the mitigation bites —
  the triage workflow docs/observability.md walks through.

Every recording runs in a deterministic context (fixed seeds, simulated
time only), so the same target records byte-identical traces on every
run and under any ``--jobs`` fan-out; ``make trace-smoke`` enforces it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from . import deactivate, activate
from .sinks import JsonlSink, trace_header

__all__ = [
    "RECORD_BUILTINS",
    "record_target",
    "record_many",
    "target_slug",
    "trace_path",
]

#: Non-experiment targets understood by :func:`record_target`.
RECORD_BUILTINS = ("stl",)

#: Mistraining calls before the attack call in the ``stl`` demo.
_STL_TRAINING_RUNS = 6
#: The out-of-bounds index used by the attack call (paper's Listing 2
#: driver uses array2[idx*4096] with idx far outside the probe range).
_STL_ATTACK_IDX = 300


def target_slug(target: str, mitigation: str = "none") -> str:
    """Filesystem-safe name for one recording (unique per mitigation)."""
    base = target.replace(":", "-")
    return f"{base}-{mitigation}" if _mitigation_applies(target) else base


def trace_path(out_dir: str | Path, target: str, mitigation: str = "none") -> Path:
    return Path(out_dir) / f"{target_slug(target, mitigation)}.trace.jsonl"


def _mitigation_applies(target: str) -> bool:
    return target in RECORD_BUILTINS or target.startswith("case:")


def _parse_case(target: str) -> tuple[str, int, int]:
    parts = target.split(":")
    if len(parts) != 4:
        raise ValueError(
            f"bad case target {target!r}: expected case:<generator>:<seed>:<blocks>"
        )
    _, generator, seed, blocks = parts
    return generator, int(seed), int(blocks)


def _run_stl_demo(seed: int, mitigation: str) -> None:
    """Drive the Spectre-STL gadget: mistrain, then attack once.

    Mistraining runs call the victim with ``idx = 0`` so the delayed
    store aliases the gadget's first load (type G then A events, walking
    the pair toward PSF-enabled).  The attack call uses the out-of-bounds
    index: unmitigated, the load predictively forwards the attacker value
    ``x`` (stld-forward, then a type-D squash once the store address
    resolves); under SSBD the predictor is pinned in Block and the same
    load stalls (stld-stall, type A/E) — the first trace divergence.
    """
    from ..attacks.victim_gadgets import spectre_stl_gadget
    from ..cpu.isa import Clflush, Halt, MovImm, Program
    from ..cpu.machine import Machine

    machine = Machine(seed=seed)
    if mitigation == "ssbd":
        machine.core.set_ssbd(True)
    elif mitigation != "none":
        raise ValueError(f"stl target supports mitigations none/ssbd, not {mitigation!r}")
    kernel = machine.kernel
    process = kernel.create_process("victim")
    array1 = kernel.map_anonymous(process, pages=2)
    array2 = kernel.map_anonymous(process, pages=512)
    idx_slot = kernel.map_anonymous(process, pages=1)
    victim = machine.load_program(process, spectre_stl_gadget())
    flush_idx = machine.load_program(
        process,
        Program([MovImm("p", idx_slot), Clflush(base="p"), Halt()], name="flush-idx"),
    )

    def run_victim(x: int) -> None:
        machine.run(process, flush_idx)  # delay the store's address gen
        machine.run(
            process,
            victim,
            {"x": x, "idx_ptr": idx_slot, "array1": array1, "array2": array2},
        )

    kernel.write(process, idx_slot, (0).to_bytes(8, "little"))
    for _ in range(_STL_TRAINING_RUNS):
        run_victim(0x40)
    kernel.write(process, idx_slot, _STL_ATTACK_IDX.to_bytes(8, "little"))
    run_victim(0x41)


def record_target(
    target: str,
    out_dir: str | Path,
    *,
    seed: int | None = None,
    mitigation: str = "none",
    model: str | None = None,
) -> dict[str, Any]:
    """Record one target's trace to ``out_dir``; returns a result row.

    The returned dict (``target``, ``path``, ``events``, ``seed``) is
    JSON-safe and deterministic, so campaign fan-out over targets can be
    compared across ``--jobs`` like any other artifact.
    """
    path = trace_path(out_dir, target, mitigation)
    context: dict[str, Any] = {"target": target}
    if _mitigation_applies(target):
        context["mitigation"] = mitigation

    if target.startswith("case:"):
        generator, case_seed, blocks = _parse_case(target)
        used_seed = case_seed if seed is None else seed
        context.update(generator=generator, seed=used_seed, blocks=blocks)
        if model is not None:
            context["model"] = model
        sink = JsonlSink(path, trace_header(**context))
        tracer = activate(sink)
        try:
            from ..fuzz.harness import execute_program
            from ..fuzz.gen import build_program

            execute_program(
                build_program(generator, used_seed, blocks),
                seed=used_seed,
                model=model,
                mitigation=mitigation,
                use_pipeline=True,
            )
        finally:
            deactivate()
    elif target in RECORD_BUILTINS:
        used_seed = 1337 if seed is None else seed
        context["seed"] = used_seed
        sink = JsonlSink(path, trace_header(**context))
        tracer = activate(sink)
        try:
            _run_stl_demo(used_seed, mitigation)
        finally:
            deactivate()
    else:
        from ..experiments.runner import effective_seed, run_experiment

        used_seed = effective_seed(target, seed)  # raises on unknown names
        context["seed"] = used_seed
        sink = JsonlSink(path, trace_header(**context))
        tracer = activate(sink)
        try:
            run_experiment(target, used_seed)
        finally:
            deactivate()

    return {
        "target": target,
        "path": str(path),
        "events": tracer.events_emitted,
        "seed": used_seed,
    }


def _record_task(payload: dict[str, Any]) -> dict[str, Any]:
    """Supervised-pool worker: record one target (picklable entry point)."""
    return record_target(
        payload["target"],
        payload["out_dir"],
        seed=payload["seed"],
        mitigation=payload["mitigation"],
        model=payload["model"],
    )


def record_many(
    targets: Sequence[str],
    out_dir: str | Path,
    *,
    seed: int | None = None,
    mitigation: str = "none",
    model: str | None = None,
    jobs: int = 1,
    progress=None,
) -> list[dict[str, Any]]:
    """Record several targets, optionally fanned out across processes.

    Each worker records into its own trace file (written atomically), so
    results are byte-identical whatever ``jobs`` is.  Rows come back in
    ``targets`` order.
    """
    from ..runtime.supervisor import run_supervised

    tasks = [
        (
            target,
            {
                "target": target,
                "out_dir": str(out_dir),
                "seed": seed,
                "mitigation": mitigation,
                "model": model,
            },
        )
        for target in targets
    ]
    rows: dict[str, dict[str, Any]] = {}
    report = run_supervised(
        tasks,
        _record_task,
        jobs=jobs,
        on_result=lambda name, row: rows.__setitem__(name, row),
        progress=progress,
    )
    if report.failures:
        first = report.failures[0]
        raise RuntimeError(
            f"recording failed for {len(report.failures)} target(s); "
            f"first: {first.task}: {first.message}"
        )
    return [rows[target] for target in targets if target in rows]
