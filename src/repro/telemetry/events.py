"""Typed trace events emitted by the pipeline and predictor units.

Every event is a frozen dataclass with a stable ``kind`` string and a
hand-written :meth:`to_dict` (no ``dataclasses.asdict`` reflection on
the hot path).  The serialized form is the trace wire format:

    {"seq": N, "cycle": C, "thread": T, "kind": "...", ...payload}

``seq`` is a per-trace monotonic sequence number assigned by the
:class:`~repro.telemetry.sinks.Tracer`; ``cycle`` is the simulated
pipeline cycle at emission.  Both are fully deterministic, which is
what makes byte-identical traces across ``--jobs`` and first-divergence
diffing (:mod:`repro.telemetry.diff`) possible.

Schema changes bump :data:`TRACE_SCHEMA`; readers refuse newer schemas.
docs/observability.md documents every kind and field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

__all__ = [
    "TRACE_SCHEMA",
    "TraceEvent",
    "DispatchEvent",
    "CommitEvent",
    "BranchPredictEvent",
    "BranchResolveEvent",
    "StldPredictEvent",
    "StldForwardEvent",
    "StldStallEvent",
    "StldBypassEvent",
    "SquashEvent",
    "RestoreEvent",
    "FaultEvent",
    "PredictorTransitionEvent",
    "EVENT_KINDS",
    "event_from_dict",
]

#: Bump when an event gains/loses/renames fields.
TRACE_SCHEMA = 1


@dataclass(frozen=True)
class TraceEvent:
    """Base class: common envelope fields shared by every event."""

    kind: ClassVar[str] = "event"

    cycle: int
    thread: int

    def payload(self) -> dict[str, Any]:  # pragma: no cover - overridden
        return {}

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "cycle": self.cycle,
            "thread": self.thread,
            "kind": self.kind,
        }
        data.update(self.payload())
        return data


@dataclass(frozen=True)
class DispatchEvent(TraceEvent):
    """An instruction entered the execution window."""

    kind: ClassVar[str] = "dispatch"

    index: int
    op: str

    def payload(self) -> dict[str, Any]:
        return {"index": self.index, "op": self.op}


@dataclass(frozen=True)
class CommitEvent(TraceEvent):
    """An instruction retired architecturally."""

    kind: ClassVar[str] = "commit"

    index: int
    op: str
    retired: int

    def payload(self) -> dict[str, Any]:
        return {"index": self.index, "op": self.op, "retired": self.retired}


@dataclass(frozen=True)
class BranchPredictEvent(TraceEvent):
    """Direction prediction at branch dispatch (2-bit counter read)."""

    kind: ClassVar[str] = "branch-predict"

    index: int
    iva: int
    predicted_taken: bool

    def payload(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "iva": self.iva,
            "predicted_taken": self.predicted_taken,
        }


@dataclass(frozen=True)
class BranchResolveEvent(TraceEvent):
    """Branch outcome known; mispredicts open a transient window."""

    kind: ClassVar[str] = "branch-resolve"

    index: int
    iva: int
    taken: bool
    mispredicted: bool

    def payload(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "iva": self.iva,
            "taken": self.taken,
            "mispredicted": self.mispredicted,
        }


@dataclass(frozen=True)
class StldPredictEvent(TraceEvent):
    """STLD predictor consulted for a load with an older in-flight store.

    ``covers`` is the ground truth (store range covers the load);
    ``aliasing``/``psf_forward`` are the PSFP/SSBP outputs that decide
    which of the three execution paths (forward / stall / bypass) runs.
    """

    kind: ClassVar[str] = "stld-predict"

    index: int
    store_ipa: int
    load_ipa: int
    aliasing: bool
    psf_forward: bool
    sticky: bool
    covers: bool

    def payload(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "store_ipa": self.store_ipa,
            "load_ipa": self.load_ipa,
            "aliasing": self.aliasing,
            "psf_forward": self.psf_forward,
            "sticky": self.sticky,
            "covers": self.covers,
        }


@dataclass(frozen=True)
class StldForwardEvent(TraceEvent):
    """PSF forwarded store data to a dependent load speculatively."""

    kind: ClassVar[str] = "stld-forward"

    index: int
    value: int
    correct: bool

    def payload(self) -> dict[str, Any]:
        return {"index": self.index, "value": self.value, "correct": self.correct}


@dataclass(frozen=True)
class StldStallEvent(TraceEvent):
    """Load stalled until older store addresses resolved (predict-alias)."""

    kind: ClassVar[str] = "stld-stall"

    index: int
    ready_cycle: int

    def payload(self) -> dict[str, Any]:
        return {"index": self.index, "ready_cycle": self.ready_cycle}


@dataclass(frozen=True)
class StldBypassEvent(TraceEvent):
    """Load speculatively bypassed older stores and read memory (SSB)."""

    kind: ClassVar[str] = "stld-bypass"

    index: int
    value: int
    correct: bool

    def payload(self) -> dict[str, Any]:
        return {"index": self.index, "value": self.value, "correct": self.correct}


@dataclass(frozen=True)
class SquashEvent(TraceEvent):
    """A transient window closed with a flush (mispredict or fault)."""

    kind: ClassVar[str] = "squash"

    reason: str  # "branch" | "fault" | "memory"
    from_index: int
    penalty: int

    def payload(self) -> dict[str, Any]:
        return {
            "reason": self.reason,
            "from_index": self.from_index,
            "penalty": self.penalty,
        }


@dataclass(frozen=True)
class RestoreEvent(TraceEvent):
    """Architectural state restored after a squash; refetch resumes."""

    kind: ClassVar[str] = "restore"

    index: int
    retired: int

    def payload(self) -> dict[str, Any]:
        return {"index": self.index, "retired": self.retired}


@dataclass(frozen=True)
class FaultEvent(TraceEvent):
    """A load faulted; transient successors execute until the window stops."""

    kind: ClassVar[str] = "fault"

    index: int
    vaddr: int
    window_stop: int

    def payload(self) -> dict[str, Any]:
        return {"index": self.index, "vaddr": self.vaddr, "window_stop": self.window_stop}


@dataclass(frozen=True)
class PredictorTransitionEvent(TraceEvent):
    """A PSFP/SSBP access moved the TABLE I counter state machine.

    One event per predictor access: ``state_before``/``state_after`` are
    TABLE I state names, ``counters_*`` the live (c0..c4) tuples, and
    ``exec_type`` the A–H classification of the access.  Replaying a
    trace's transition events reproduces the TABLE I edge list.
    """

    kind: ClassVar[str] = "predictor-transition"

    store_hash: int
    load_hash: int
    aliasing: bool
    exec_type: str
    state_before: str
    state_after: str
    counters_before: tuple[int, ...]
    counters_after: tuple[int, ...]

    def payload(self) -> dict[str, Any]:
        return {
            "store_hash": self.store_hash,
            "load_hash": self.load_hash,
            "aliasing": self.aliasing,
            "exec_type": self.exec_type,
            "state_before": self.state_before,
            "state_after": self.state_after,
            "counters_before": list(self.counters_before),
            "counters_after": list(self.counters_after),
        }


#: kind -> event class, for readers.
EVENT_KINDS: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        DispatchEvent,
        CommitEvent,
        BranchPredictEvent,
        BranchResolveEvent,
        StldPredictEvent,
        StldForwardEvent,
        StldStallEvent,
        StldBypassEvent,
        SquashEvent,
        RestoreEvent,
        FaultEvent,
        PredictorTransitionEvent,
    )
}


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    """Rehydrate a serialized event (inverse of ``to_dict``).

    Unknown kinds raise ``ValueError`` — a schema guard, not a silent
    skip, because diffing against partially-understood traces would
    report bogus divergences.
    """
    kind = data.get("kind")
    cls = EVENT_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown trace event kind: {kind!r}")
    fields = {k: v for k, v in data.items() if k not in ("kind", "seq")}
    if cls is PredictorTransitionEvent:
        fields["counters_before"] = tuple(fields["counters_before"])
        fields["counters_after"] = tuple(fields["counters_after"])
    return cls(**fields)
