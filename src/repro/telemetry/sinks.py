"""Trace sinks: where emitted events go.

A :class:`Tracer` wraps one sink and assigns the per-trace monotonic
``seq`` number.  The pipeline holds at most one tracer reference
(``Pipeline.trace``); when no tracer is active the reference is ``None``
and instrumented call sites skip event construction entirely — that is
the zero-overhead-when-disabled contract (no event objects, no sink
dispatch, one ``is not None`` test per site).

Two sinks ship:

* :class:`RingBufferSink` — bounded in-memory deque; the flight recorder
  used by tests and by ``--trace-findings`` (trace the repro, then dump).
* :class:`JsonlSink` — buffers serialized lines and writes the whole
  trace atomically on close (one fsync'd rename, see
  ``repro.runtime.atomic``), so concurrent workers can record traces
  into a shared directory without torn files.  Line 1 is a header
  carrying the schema version and recording context; every subsequent
  line is one event.  Serialization is canonical (sorted keys, compact
  separators) so identical event streams give byte-identical files.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Protocol

from ..runtime import atomic_write_text
from .events import TRACE_SCHEMA, TraceEvent, event_from_dict

__all__ = [
    "TraceSink",
    "Tracer",
    "RingBufferSink",
    "JsonlSink",
    "read_trace",
    "trace_header",
]


class TraceSink(Protocol):
    """Anything that can accept serialized trace events."""

    def emit(self, event: dict[str, Any]) -> None:
        """Accept one serialized event (the dict already carries seq)."""

    def close(self) -> None:
        """Flush/finalize.  Must be idempotent."""


def _canonical(data: dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def trace_header(**context: Any) -> dict[str, Any]:
    """The first line of every persisted trace.

    ``context`` carries recording provenance (target, seed, mitigation,
    cpu model); only deterministic values belong here — no wall times,
    no pids — so recorded traces stay byte-comparable.
    """
    header = {"schema": TRACE_SCHEMA, "kind": "trace-header"}
    header.update(context)
    return header


class Tracer:
    """Assigns sequence numbers and forwards events to a sink."""

    __slots__ = ("sink", "seq", "events_emitted")

    def __init__(self, sink: TraceSink) -> None:
        self.sink = sink
        self.seq = 0
        self.events_emitted = 0

    def emit(self, event: TraceEvent) -> None:
        data = event.to_dict()
        data["seq"] = self.seq
        self.seq += 1
        self.events_emitted += 1
        self.sink.emit(data)

    def close(self) -> None:
        self.sink.close()


class RingBufferSink:
    """Keep the last ``capacity`` events in memory (flight recorder)."""

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: dict[str, Any]) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def close(self) -> None:
        pass

    def events(self) -> list[dict[str, Any]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink:
    """Buffer events and atomically write a JSONL trace file on close."""

    def __init__(self, path: str | Path, header: dict[str, Any] | None = None) -> None:
        self.path = Path(path)
        self._lines: list[str] = [_canonical(header or trace_header())]
        self._closed = False

    def emit(self, event: dict[str, Any]) -> None:
        self._lines.append(_canonical(event))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, "\n".join(self._lines) + "\n")

    def __len__(self) -> int:
        return len(self._lines) - 1  # header excluded


def read_trace(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load a JSONL trace: ``(header, events)`` as raw dicts.

    Raises ``ValueError`` on schema mismatch or structural damage so
    callers (diff, export) fail loudly rather than comparing garbage.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("kind") != "trace-header":
        raise ValueError(f"{path}: missing trace header line")
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: trace schema {schema} not supported (expected {TRACE_SCHEMA})"
        )
    events = [json.loads(line) for line in lines[1:] if line]
    return header, events


def events_from_dicts(raw: Iterable[dict[str, Any]]) -> list[TraceEvent]:
    """Rehydrate typed events from raw trace dicts."""
    return [event_from_dict(item) for item in raw]
