"""``repro-trace``: record, summarize, diff, and export pipeline traces.

The observability front end (docs/observability.md):

* ``record`` — run catalog experiments, fuzz cases or the ``stl`` demo
  with tracing on, writing ``<target>.trace.jsonl`` files;
* ``summarize`` — event rollups (kinds, exec types, TABLE I edges);
* ``diff`` — first divergence between two traces (exit 1 when found,
  so shell gates can assert sameness);
* ``export`` — Chrome trace-event/Perfetto JSON or a plain timeline.

Exit codes follow the shared contract (see ``--help``); ``diff`` maps
"traces differ" onto code 1, the same "completed but not clean" slot
the campaign CLIs use for findings.
"""

from __future__ import annotations

import json
import sys

from ..runtime import atomic_write_text, exitcodes
from ..runtime.cliutil import apply_engine, build_parser
from .diff import first_divergence
from .export import summarize_events, to_chrome_trace, to_timeline
from .record import record_many
from .sinks import read_trace

__all__ = ["main"]

_EPILOG = """\
targets for record:
  <experiment>                any name from `repro-experiments --list`
  case:<gen>:<seed>:<blocks>  a generated fuzz program (pipeline executor)
  stl                         the Spectre-STL gadget demo (mistrain + attack);
                              record it with --mitigation none and ssbd, then
                              diff the two traces"""


def main(argv: list[str] | None = None) -> int:
    parser = build_parser(
        "repro-trace",
        "Record and inspect microarchitectural traces of the simulator.",
        epilog=_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run targets with tracing on")
    rec.add_argument("targets", nargs="+", help="targets to record (see epilog)")
    rec.add_argument("--out", required=True, metavar="DIR",
                     help="directory receiving <target>.trace.jsonl files")
    rec.add_argument("--seed", type=int, default=None,
                     help="override the target's default seed")
    rec.add_argument("--mitigation", default="none",
                     help="mitigation for case:/stl targets (none|ssbd|fence)")
    rec.add_argument("--model", default=None,
                     help="CPU model for case: targets (TABLE III platform name)")
    rec.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                     help="record targets in parallel (default 1)")

    summ = sub.add_parser("summarize", help="event rollup of one trace")
    summ.add_argument("trace", help="a .trace.jsonl file")
    summ.add_argument("--json", action="store_true", help="machine-readable output")

    dif = sub.add_parser("diff", help="first divergence between two traces")
    dif.add_argument("left")
    dif.add_argument("right")
    dif.add_argument("--ignore", default="", metavar="FIELDS",
                     help="comma-separated payload fields to ignore (e.g. cycle)")
    dif.add_argument("--context", type=int, default=3,
                     help="shared-prefix events to show before the divergence")

    exp = sub.add_parser("export", help="convert a trace for visualization")
    exp.add_argument("trace", help="a .trace.jsonl file")
    exp.add_argument("--format", choices=("chrome", "timeline"), default="chrome",
                     help="chrome = Perfetto/chrome://tracing JSON; "
                          "timeline = aligned plain text")
    exp.add_argument("--out", default=None, metavar="PATH",
                     help="output file (default stdout)")

    args = parser.parse_args(argv)
    apply_engine(args)
    try:
        if args.command == "record":
            return _record(args)
        if args.command == "summarize":
            return _summarize(args)
        if args.command == "diff":
            return _diff(args)
        return _export(args)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return exitcodes.EXIT_USAGE


def _record(args) -> int:
    rows = record_many(
        args.targets,
        args.out,
        seed=args.seed,
        mitigation=args.mitigation,
        model=args.model,
        jobs=max(1, args.jobs),
        progress=lambda line: print(f"  .. {line}", file=sys.stderr),
    )
    for row in rows:
        print(f"{row['target']}: {row['events']} events -> {row['path']}")
    return exitcodes.EXIT_OK


def _summarize(args) -> int:
    header, events = read_trace(args.trace)
    summary = summarize_events(events)
    if args.json:
        print(json.dumps({"header": header, "summary": summary}, indent=2, sort_keys=True))
        return exitcodes.EXIT_OK
    context = ", ".join(
        f"{k}={v}" for k, v in sorted(header.items()) if k not in ("kind", "schema")
    )
    print(f"trace: {args.trace} ({context})")
    print(f"events: {summary['events']} (last cycle {summary['last_cycle']})")
    for section in ("kinds", "exec_types", "squashes", "table1_edges"):
        table = summary[section]
        if not table:
            continue
        print(f"{section.replace('_', ' ')}:")
        for key, count in table.items():
            print(f"  {count:>7}  {key}")
    return exitcodes.EXIT_OK


def _diff(args) -> int:
    _, left = read_trace(args.left)
    _, right = read_trace(args.right)
    ignore = tuple(f for f in args.ignore.split(",") if f)
    result = first_divergence(left, right, ignore=ignore, context=max(0, args.context))
    print(result.describe())
    return exitcodes.EXIT_OK if result.identical else exitcodes.EXIT_FAILURES


def _export(args) -> int:
    header, events = read_trace(args.trace)
    if args.format == "chrome":
        rendered = json.dumps(to_chrome_trace(header, events), indent=2) + "\n"
    else:
        rendered = to_timeline(header, events)
    if args.out is None:
        sys.stdout.write(rendered)
    else:
        atomic_write_text(args.out, rendered)
        print(f"wrote {args.out}")
    return exitcodes.EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
