"""First-divergence diffing between two recorded traces.

The triage primitive for "these two runs should have behaved the same":
mitigated vs unmitigated, ``Pipeline`` vs ``ReferenceInterpreter``-
shadowed run, seed A vs seed B of a flaky finding.  Because traces are
deterministic and sequence-numbered, the *first* event where the two
streams disagree is the root cause's earliest observable — everything
after it is fallout and usually noise.

``seq`` is ignored during comparison (it is positional already) and so
are fields listed in ``ignore`` — e.g. ``cycle`` when comparing across
CPU models with different latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceDiff", "first_divergence"]


@dataclass(frozen=True)
class TraceDiff:
    """The first point where two traces disagree (or proof they don't)."""

    #: Index into both event streams of the first mismatch (for a pure
    #: length mismatch, the length of the shorter stream); None when the
    #: traces are identical.
    index: int | None
    left: dict[str, Any] | None
    right: dict[str, Any] | None
    #: Field names that differ when both events exist and share a kind.
    fields: tuple[str, ...] = ()
    left_total: int = 0
    right_total: int = 0
    context: list[dict[str, Any]] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.index is None and self.left_total == self.right_total

    def describe(self) -> str:
        if self.identical:
            return f"traces identical ({self.left_total} events)"
        if self.index is None:
            longer = "left" if self.left_total > self.right_total else "right"
            return (
                f"common prefix identical; {longer} trace continues "
                f"({self.left_total} vs {self.right_total} events)"
            )
        lines = [
            f"first divergence at event {self.index} "
            f"({self.left_total} vs {self.right_total} events total)"
        ]
        if self.context:
            lines.append("  shared prefix tail:")
            for event in self.context:
                lines.append(f"    = {_brief(event)}")
        if self.left is not None and self.right is not None and self.fields:
            lines.append(f"  < {_brief(self.left)}")
            lines.append(f"  > {_brief(self.right)}")
            lines.append(f"  differing fields: {', '.join(self.fields)}")
        else:
            lines.append(f"  < {_brief(self.left) if self.left else '(stream ended)'}")
            lines.append(f"  > {_brief(self.right) if self.right else '(stream ended)'}")
        return "\n".join(lines)


def _brief(event: dict[str, Any]) -> str:
    detail = ", ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in ("seq", "kind")
    )
    return f"{event.get('kind', '?')}({detail})"


def first_divergence(
    left: list[dict[str, Any]],
    right: list[dict[str, Any]],
    ignore: tuple[str, ...] = (),
    context: int = 3,
) -> TraceDiff:
    """Locate the first event where ``left`` and ``right`` disagree.

    ``ignore`` names payload fields excluded from comparison (``seq`` is
    always excluded); ``context`` is how many shared-prefix events to
    keep for the report.
    """
    skip = set(ignore) | {"seq"}

    def normalize(event: dict[str, Any]) -> dict[str, Any]:
        return {key: value for key, value in event.items() if key not in skip}

    for index, (a, b) in enumerate(zip(left, right)):
        na, nb = normalize(a), normalize(b)
        if na == nb:
            continue
        fields = tuple(
            sorted(
                key
                for key in set(na) | set(nb)
                if na.get(key, _MISSING) != nb.get(key, _MISSING)
            )
        )
        return TraceDiff(
            index=index,
            left=a,
            right=b,
            fields=fields,
            left_total=len(left),
            right_total=len(right),
            context=left[max(0, index - context) : index],
        )
    if len(left) != len(right):
        shorter = min(len(left), len(right))
        return TraceDiff(
            index=shorter,
            left=left[shorter] if len(left) > shorter else None,
            right=right[shorter] if len(right) > shorter else None,
            left_total=len(left),
            right_total=len(right),
            context=left[max(0, shorter - context) : shorter],
        )
    return TraceDiff(
        index=None, left=None, right=None, left_total=len(left), right_total=len(right)
    )


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
