"""No-trace overhead guard (``python -m repro.telemetry.overhead``).

Telemetry's core promise is *zero overhead when disabled*: with no
tracer active every instrumented call site must reduce to one ``is not
None`` test.  This guard holds that promise in CI (``make trace-smoke``):

1. asserts no tracer is active and runs a fixed, seeded pipeline
   workload (the Fig 2 exec-type driver — branchy, store-load heavy,
   every instrumented path exercised);
2. takes the median of several repetitions and enforces a wall-clock
   budget (``--budget`` seconds, deliberately generous — the target is
   catching accidental always-on event construction, which is a
   multiple-x regression, not a few percent of scheduler noise);
3. re-runs the workload once *with* tracing into a ring buffer and
   asserts events actually flow — guarding against the inverse failure
   (instrumentation silently compiled out, so the "overhead" being
   measured is of nothing).

Exit 0 on pass, 1 on budget breach or broken instrumentation.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import current_tracer, recording
from .sinks import RingBufferSink

__all__ = ["measure", "main"]

DEFAULT_BUDGET_S = 20.0
DEFAULT_REPEATS = 3
_WORKLOAD_SEED = 2024


def _workload() -> None:
    from ..experiments.fig2_exec_types import run

    run(seed=_WORKLOAD_SEED)


def measure(repeats: int = DEFAULT_REPEATS) -> list[float]:
    """Wall-time samples of the seeded workload with telemetry disabled."""
    if current_tracer() is not None:
        raise RuntimeError("a tracer is active; the guard measures the disabled path")
    samples = []
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        _workload()
        samples.append(time.perf_counter() - started)
    return samples


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry.overhead",
        description="Assert the telemetry-disabled pipeline stays within budget.",
    )
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET_S,
                        metavar="SECONDS", help=f"median wall-clock budget "
                        f"(default {DEFAULT_BUDGET_S})")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS, metavar="N",
                        help=f"workload repetitions (default {DEFAULT_REPEATS})")
    args = parser.parse_args(argv)

    samples = sorted(measure(args.repeats))
    median = samples[len(samples) // 2]
    print(
        f"overhead-guard: telemetry disabled, median {median:.2f}s over "
        f"{len(samples)} run(s) (budget {args.budget:.2f}s)"
    )
    if median > args.budget:
        print(
            f"overhead-guard: FAIL — {median:.2f}s exceeds the {args.budget:.2f}s "
            "budget; check for event construction on the disabled path",
            file=sys.stderr,
        )
        return 1

    sink = RingBufferSink()
    with recording(sink):
        _workload()
    if len(sink) == 0:
        print(
            "overhead-guard: FAIL — tracing enabled but no events emitted; "
            "instrumentation is disconnected",
            file=sys.stderr,
        )
        return 1
    print(f"overhead-guard: instrumentation live ({len(sink)} events when enabled)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
