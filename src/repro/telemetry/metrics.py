"""Process-local metrics registry: counters, histograms, timers.

The observability counterpart of the event layer (:mod:`.events`): where
traces answer "what exactly happened, in order", metrics answer "how
much of it happened" at near-zero cost.  Instrumented call sites hold a
:class:`Counter`/:class:`Histogram`/:class:`Timer` object directly (one
attribute access + integer add per update, no name lookup), so metrics
stay cheap enough to leave enabled everywhere — the pipeline, the fuzz
harness and the runtime supervisor all update the process-global
registry unconditionally.

Determinism contract: counters and histograms are driven exclusively by
simulated quantities (instruction counts, cycles, rollbacks), so their
snapshots are byte-comparable across runs and across ``--jobs`` fan-out.
Timers measure wall time and are therefore *excluded* from any artifact
that must be deterministic (``snapshot(timers=False)``); the campaign
runners drop them under ``--stable-meta``.

Workers roll metrics up per task by snapshotting around the task and
shipping :func:`MetricsRegistry.delta_since` across the process
boundary — see ``repro.experiments.runner`` (``--metrics``) and
``repro.fuzz.cli`` (``--metrics``).
"""

from __future__ import annotations

import time
from typing import Any

__all__ = [
    "Counter",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "registry",
    "merge_snapshots",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Distribution summary: count/sum/min/max plus power-of-two buckets.

    Bucket ``i`` counts observations with ``value < 2**i`` (and at or
    above the previous bound); the layout is fixed so two histograms fed
    the same observations serialize identically.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    BUCKET_COUNT = 24  # up to 2**23 ≈ 8.4M cycles per observation

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: int | float | None = None
        self.max: int | float | None = None
        self.buckets = [0] * self.BUCKET_COUNT

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = 0
        bound = 1
        while value >= bound and bucket < self.BUCKET_COUNT - 1:
            bucket += 1
            bound <<= 1
        self.buckets[bucket] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.1f})"


class Timer:
    """Accumulated wall time over a code region (context manager).

    Wall times are inherently nondeterministic; timers are reported for
    humans and dropped from byte-comparable artifacts.
    """

    __slots__ = ("name", "count", "total_s", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started is not None:
            self.total_s += time.perf_counter() - self._started
            self._started = None
        self.count += 1

    def to_dict(self) -> dict[str, Any]:
        return {"count": self.count, "total_s": round(self.total_s, 6)}

    def __repr__(self) -> str:
        return f"Timer({self.name}: n={self.count}, {self.total_s:.3f}s)"


class MetricsRegistry:
    """A namespace of metrics, snapshot-able and diff-able.

    Names are dotted (``pipeline.runs``, ``supervisor.retries``); the
    first component is the owning subsystem by convention
    (docs/observability.md lists every instrumented name).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, Timer] = {}

    # ------------------------------------------------------------------
    # Instrument acquisition (idempotent; call sites cache the object)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def timer(self, name: str) -> Timer:
        found = self._timers.get(name)
        if found is None:
            found = self._timers[name] = Timer(name)
        return found

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, timers: bool = True) -> dict[str, Any]:
        """Serialize current values (sorted keys, JSON-safe).

        ``timers=False`` omits the wall-time section — the form embedded
        in deterministic artifacts.
        """
        data: dict[str, Any] = {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items()) if c.value
            },
            "histograms": {
                name: h.to_dict()
                for name, h in sorted(self._histograms.items())
                if h.count
            },
        }
        if timers:
            data["timers"] = {
                name: t.to_dict() for name, t in sorted(self._timers.items()) if t.count
            }
        return data

    def delta_since(self, snapshot: dict[str, Any], timers: bool = True) -> dict[str, Any]:
        """Difference of the current state against an earlier snapshot.

        The per-task rollup primitive: zero-valued counters and empty
        histograms are dropped so a task's delta names only what the
        task actually touched.

        Histogram deltas carry only ``count``/``sum``/``buckets``; the
        running ``min``/``max`` extremes cannot be differenced against a
        snapshot (they depend on what else the process executed before
        the window), so including them would make per-task deltas vary
        with worker scheduling and break the ``--jobs`` byte-identity
        contract.
        """
        base_counters = snapshot.get("counters", {})
        base_hists = snapshot.get("histograms", {})
        counters = {}
        for name, counter in sorted(self._counters.items()):
            diff = counter.value - base_counters.get(name, 0)
            if diff:
                counters[name] = diff
        histograms = {}
        for name, hist in sorted(self._histograms.items()):
            base = base_hists.get(name, {})
            count = hist.count - base.get("count", 0)
            if not count:
                continue
            histograms[name] = {
                "count": count,
                "sum": hist.total - base.get("sum", 0),
                "buckets": [
                    now - then
                    for now, then in zip(
                        hist.buckets, base.get("buckets", [0] * len(hist.buckets))
                    )
                ],
            }
        data: dict[str, Any] = {"counters": counters, "histograms": histograms}
        if timers:
            base_timers = snapshot.get("timers", {})
            deltas = {}
            for name, timer in sorted(self._timers.items()):
                base = base_timers.get(name, {})
                count = timer.count - base.get("count", 0)
                if count:
                    deltas[name] = {
                        "count": count,
                        "total_s": round(timer.total_s - base.get("total_s", 0.0), 6),
                    }
            data["timers"] = deltas
        return data

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()
        self._timers.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)}, timers={len(self._timers)})"
        )


#: The process-global registry every instrumented subsystem writes to.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Roll per-task metric deltas up into one campaign-level summary.

    Counters and histogram counts/sums add; histogram min/max combine
    when present (per-task deltas omit them, see
    :meth:`MetricsRegistry.delta_since`); timers add.  Used by the
    campaign manifest writer.
    """
    counters: dict[str, int] = {}
    histograms: dict[str, dict[str, Any]] = {}
    timers: dict[str, dict[str, Any]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            into = histograms.get(name)
            if into is None:
                histograms[name] = {
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist.get("min"),
                    "max": hist.get("max"),
                    "buckets": list(hist.get("buckets", [])),
                }
                continue
            into["count"] += hist["count"]
            into["sum"] += hist["sum"]
            if hist.get("min") is not None and (
                into["min"] is None or hist["min"] < into["min"]
            ):
                into["min"] = hist["min"]
            if hist.get("max") is not None and (
                into["max"] is None or hist["max"] > into["max"]
            ):
                into["max"] = hist["max"]
            for index, value in enumerate(hist.get("buckets", [])):
                if index < len(into["buckets"]):
                    into["buckets"][index] += value
                else:
                    into["buckets"].append(value)
        for name, timer in snap.get("timers", {}).items():
            into = timers.setdefault(name, {"count": 0, "total_s": 0.0})
            into["count"] += timer["count"]
            into["total_s"] = round(into["total_s"] + timer["total_s"], 6)
    for hist in histograms.values():
        if hist.get("min") is None:
            hist.pop("min", None)
        if hist.get("max") is None:
            hist.pop("max", None)
    merged: dict[str, Any] = {
        "counters": dict(sorted(counters.items())),
        "histograms": dict(sorted(histograms.items())),
    }
    if timers:
        merged["timers"] = dict(sorted(timers.items()))
    return merged
