"""Microarchitectural telemetry: event tracing, metrics, exporters.

The observability substrate for the simulator (docs/observability.md).
Three layers:

* **Events** (:mod:`.events`, :mod:`.sinks`) — typed, zero-overhead-
  when-disabled trace events emitted by ``repro.cpu.pipeline.Pipeline``
  (dispatch, branch predict/resolve, STLD predict/forward/stall/bypass,
  squash/restore, fault, commit) and by the PSFP/SSBP predictor unit
  (TABLE I state transitions, observed live).
* **Metrics** (:mod:`.metrics`) — process-local counters/histograms/
  timers instrumenting the pipeline, fuzz harness and runtime
  supervisor; rolled up per task into campaign manifests and findings.
* **Tools** (:mod:`.export`, :mod:`.diff`, :mod:`.record`, :mod:`.cli`)
  — Chrome trace-event/Perfetto export, plain-text timelines,
  first-divergence diffing, and the ``repro-trace`` console script.

Recording is opt-in via an explicit tracer activation::

    from repro import telemetry

    with telemetry.recording(telemetry.RingBufferSink()) as tracer:
        machine.run()            # pipelines created here emit events

When nothing is recording, ``current_tracer()`` is ``None`` and every
instrumented site reduces to one ``is not None`` test — no event
objects are built, no sink is touched.  ``make trace-smoke`` holds both
halves of that contract (byte-identical traces across ``--jobs``,
bounded overhead with telemetry off).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .events import (
    TRACE_SCHEMA,
    BranchPredictEvent,
    BranchResolveEvent,
    CommitEvent,
    DispatchEvent,
    FaultEvent,
    PredictorTransitionEvent,
    RestoreEvent,
    SquashEvent,
    StldBypassEvent,
    StldForwardEvent,
    StldPredictEvent,
    StldStallEvent,
    TraceEvent,
    event_from_dict,
)
from .metrics import MetricsRegistry, merge_snapshots, registry
from .sinks import JsonlSink, RingBufferSink, Tracer, TraceSink, read_trace, trace_header

__all__ = [
    "TRACE_SCHEMA",
    "TraceEvent",
    "DispatchEvent",
    "CommitEvent",
    "BranchPredictEvent",
    "BranchResolveEvent",
    "StldPredictEvent",
    "StldForwardEvent",
    "StldStallEvent",
    "StldBypassEvent",
    "SquashEvent",
    "RestoreEvent",
    "FaultEvent",
    "PredictorTransitionEvent",
    "event_from_dict",
    "TraceSink",
    "Tracer",
    "RingBufferSink",
    "JsonlSink",
    "read_trace",
    "trace_header",
    "MetricsRegistry",
    "registry",
    "merge_snapshots",
    "activate",
    "deactivate",
    "current_tracer",
    "recording",
]

#: The process-global active tracer (None = telemetry disabled).
_ACTIVE: Tracer | None = None


def activate(sink: TraceSink) -> Tracer:
    """Install a tracer over ``sink``; newly created pipelines pick it up.

    Raises if a tracer is already active — nested recordings would
    interleave two experiments into one seq-space and corrupt diffs.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a tracer is already active; deactivate() it first")
    _ACTIVE = Tracer(sink)
    return _ACTIVE


def deactivate() -> None:
    """Close and remove the active tracer (no-op when none is active)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


def current_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when telemetry is disabled."""
    return _ACTIVE


@contextmanager
def recording(sink: TraceSink) -> Iterator[Tracer]:
    """Scope a recording: activate on entry, close/deactivate on exit."""
    tracer = activate(sink)
    try:
        yield tracer
    finally:
        deactivate()
