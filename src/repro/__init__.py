"""repro — a simulation-backed reproduction of
"Uncovering and Exploiting AMD Speculative Memory Access Predictors for
Fun and Profit" (HPCA 2024).

The package models the AMD Zen 3 speculative memory-access machinery the
paper reverse engineers (PSFP and SSBP predictors, TABLE I state machine,
IPA-selection hash), a small out-of-order core with transient execution,
a Linux-like OS layer, and the paper's attacks (out-of-place Spectre-STL,
Spectre-CTL, SSBP fingerprinting) plus the mitigations it evaluates.

Quickstart::

    from repro import PredictorUnit, run_sequence, CounterState
    from repro.revng.sequences import parse, to_bools, format_types

    types, state = run_sequence(CounterState(), to_bools("7n, a, 7n"))
    print(format_types(types))   # -> "7H, G, 4E, 3H"

See README.md for the architecture overview and DESIGN.md for the
simulation-vs-silicon substitution map.
"""

from repro.core import (
    CounterState,
    CpuModel,
    ExecType,
    Prediction,
    PredictorUnit,
    Psfp,
    SpecCtrl,
    Ssbp,
    StateName,
    ZEN3_MODELS,
    default_model,
    get_model,
    ipa_hash,
    predict,
    run_sequence,
    transition,
)
from repro.cpu.machine import Machine
from repro.errors import (
    AttackError,
    CollisionNotFound,
    ConfigError,
    InvalidInstruction,
    ProtectionFault,
    ReproError,
    SegmentationFault,
    SimulationLimitExceeded,
)

__version__ = "1.0.0"

__all__ = [
    "AttackError",
    "CollisionNotFound",
    "ConfigError",
    "CounterState",
    "CpuModel",
    "ExecType",
    "InvalidInstruction",
    "Machine",
    "Prediction",
    "PredictorUnit",
    "ProtectionFault",
    "Psfp",
    "ReproError",
    "SegmentationFault",
    "SimulationLimitExceeded",
    "SpecCtrl",
    "Ssbp",
    "StateName",
    "ZEN3_MODELS",
    "__version__",
    "default_model",
    "get_model",
    "ipa_hash",
    "predict",
    "run_sequence",
    "transition",
]
