"""The in-place Spectre-STL baseline (the attack known before this paper).

Prior work [13, 26] could only exploit Spectre-STL *in place*: the
attacker must get the **victim's own store-load pair** executed over and
over (aliasing) to train the predictor before each leak, because no way
to reach the pair's predictor entry from attacker-controlled code was
known.  The paper's out-of-place attack replaces that with one training
pass on the attacker's own colliding stld.

This module implements the in-place baseline against the same gadget and
measures its cost in *victim invocations per leaked byte* — the quantity
the out-of-place attack improves (the paper: "only one execution of
victim_function is required for leaking each secret").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.flush_reload import FlushReloadChannel
from repro.attacks.victim_gadgets import spectre_stl_gadget
from repro.cpu.isa import Clflush, Halt, MovImm, Program
from repro.cpu.machine import Machine
from repro.osm.process import Process

__all__ = ["InPlaceLeakReport", "SpectreSTLInPlace"]

_ATTACK_IDX = 300
_TRAIN_RUNS = 8
#: Non-aliasing victim runs needed to drain a fully charged C3 (max 32).
_DRAIN_RUNS = 34


@dataclass
class InPlaceLeakReport:
    recovered: bytes
    expected: bytes
    victim_invocations: int

    @property
    def accuracy(self) -> float:
        if not self.expected:
            return 1.0
        good = sum(a == b for a, b in zip(self.recovered, self.expected))
        return good / len(self.expected)

    @property
    def invocations_per_byte(self) -> float:
        return self.victim_invocations / max(1, len(self.expected))


class SpectreSTLInPlace:
    """Train by running the victim itself with an aliasing index."""

    def __init__(self, machine: Machine | None = None) -> None:
        self.machine = machine or Machine(seed=4242)
        kernel = self.machine.kernel
        self.process: Process = kernel.create_process("inplace-victim")
        self.array1 = kernel.map_anonymous(self.process, pages=2)
        self.array2 = kernel.map_anonymous(self.process, pages=512)
        self.idx_slot = kernel.map_anonymous(self.process, pages=1)
        self.secret_va = kernel.map_anonymous(self.process, pages=4)
        kernel.write(self.process, self.array2, (0).to_bytes(8, "little"))
        self.victim = self.machine.load_program(self.process, spectre_stl_gadget())
        self.channel = FlushReloadChannel(self.machine, self.process, self.array2)
        self._flush_idx = self.machine.load_program(
            self.process,
            Program(
                [MovImm("p", self.idx_slot), Clflush(base="p"), Halt()],
                name="flush-idx",
            ),
        )
        self.victim_invocations = 0

    def _run_victim(self, x: int, idx: int, flush_idx: bool) -> None:
        kernel = self.machine.kernel
        kernel.write(self.process, self.idx_slot, idx.to_bytes(8, "little"))
        if flush_idx:
            self.machine.run(self.process, self._flush_idx)
        self.machine.run(
            self.process,
            self.victim,
            {
                "x": x & ((1 << 64) - 1),
                "idx_ptr": self.idx_slot,
                "array1": self.array1,
                "array2": self.array2,
            },
        )
        self.victim_invocations += 1

    def _train_in_place(self) -> None:
        """Drive the victim's own pair to the PSF state, using only
        victim invocations (the in-place constraint).

        A syscall clears the pair's PSFP half, but C3 residue from
        earlier rounds (C4 saturates after a few leaks) would pin the
        pair in the sticky states where C0 can never rise; non-aliasing
        victim runs (a disjoint ``idx``) drain it first.  Then ``idx=0``
        aliasing runs deliver the G and count C1 down until the pair
        forwards predictively.  This is why the in-place attack costs so
        many victim executions per byte."""
        self.machine.kernel.syscall(self.process)  # reset PSFP state
        for _ in range(_DRAIN_RUNS):
            self._run_victim(x=0, idx=_ATTACK_IDX, flush_idx=True)
        for _ in range(_TRAIN_RUNS):
            self._run_victim(x=0, idx=0, flush_idx=True)

    def _leak_byte(self, array1_offset: int) -> int | None:
        self._train_in_place()
        self.channel.flush_all()
        self._run_victim(x=array1_offset, idx=_ATTACK_IDX, flush_idx=True)
        hits = [
            slot
            for slot, t in enumerate(self.channel.reload_times())
            if t < self.channel.threshold and slot != 0
        ]
        if len(hits) == 1:
            return hits[0]
        if not hits:
            return 0
        return None

    def leak(self, secret: bytes) -> InPlaceLeakReport:
        kernel = self.machine.kernel
        kernel.write(self.process, self.secret_va, secret)
        self.victim_invocations = 0
        recovered = bytearray()
        for index in range(len(secret)):
            offset = self.secret_va + index - self.array1
            byte = self._leak_byte(offset)
            if byte is None:
                byte = self._leak_byte(offset) or 0
            recovered.append(byte)
        return InPlaceLeakReport(
            recovered=bytes(recovered),
            expected=secret,
            victim_invocations=self.victim_invocations,
        )
