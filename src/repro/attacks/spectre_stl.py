"""The out-of-place Spectre-STL attack (paper Section V-B).

The attack leaks a victim function's reachable memory one byte at a time,
inside one process (PSFP is flushed on context switches, so Spectre-STL
cannot cross processes — a paper finding this module embodies):

1. **Collision search** — the attacker slides its own stld until its load
   IPA hashes to the victim gadget load's predictor entry (detected via
   the SSBP stickiness the victim's aliasing runs leave behind), keeping
   the same store→load IPA distance as the gadget so the *store* tags can
   also coincide (Fig 7).  Candidates are validated by leaking a byte the
   attacker already knows; the paper reports >90% success within 16 pages.
2. **Mistraining** — the attacker drives the shared PSFP entry into the
   PSF-enabled state with its own stld (one G event, then aliasing runs
   until a predictive forward is observed).
3. **Leak** — the attacker flushes the victim's ``idx`` cache line (the
   store's address input), runs the victim once with ``x`` pointing at
   the secret, and recovers the byte with Flush+Reload: in the transient
   window ``x`` was forwarded to the gadget's first load, the second load
   fetched ``array1[x]``, and the third encoded it into a cache line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.collision import CollisionResult, SsbpCollisionFinder
from repro.attacks.flush_reload import FlushReloadChannel
from repro.attacks.victim_gadgets import spectre_stl_gadget
from repro.attacks.runtime import AttackerStld
from repro.cpu.isa import Clflush, Halt, MovImm, Program
from repro.cpu.machine import Machine
from repro.errors import AttackError, CollisionNotFound
from repro.osm.process import Process

__all__ = ["SpectreSTL", "LeakReport"]

#: Store index used in attack runs: disjoint from the first 256 probe
#: slots of array2 so the store never aliases the encoded line.
_ATTACK_IDX = 300
#: array1 offset whose byte the attacker controls, used to validate a
#: collision candidate by leaking a known value.
_VALIDATE_OFF = 0x180
_VALIDATE_BYTE = 0xA7
#: Architectural content of array2[0]: the squash replay re-encodes
#: array1[array2[0]]; pointing it at a zero byte pins the replay's cache
#: touch to slot 0, which reception accounts for.
_DECOY_SLOT = 0


@dataclass
class LeakReport:
    """Outcome of a leak campaign."""

    recovered: bytes
    expected: bytes
    cycles: int
    clock_ghz: float
    collision: CollisionResult | None = None
    validation_attempts: int = 0
    per_byte_errors: list[int] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        if not self.expected:
            return 1.0
        good = sum(a == b for a, b in zip(self.recovered, self.expected))
        return good / len(self.expected)

    @property
    def bytes_per_second(self) -> float:
        seconds = self.cycles / (self.clock_ghz * 1e9)
        return len(self.recovered) / seconds if seconds else float("inf")


class SpectreSTL:
    """Out-of-place Spectre-STL against a same-process victim gadget."""

    def __init__(
        self,
        machine: Machine | None = None,
        slide_pages: int = 16,
        gadget: Program | None = None,
        hardened: bool = True,
    ) -> None:
        self.machine = machine or Machine(seed=1337)
        #: ``hardened=True`` (default) lets every layer auto-select its
        #: robust protocol when a non-quiet interference model is
        #: attached; ``hardened=False`` pins the historical protocols —
        #: the pre-hardening comparison arm of the robustness curve.
        self.hardened = hardened
        kernel = self.machine.kernel
        self.process: Process = kernel.create_process("victim-with-attacker")
        # Victim state: array1 (byte pool the gadget indexes), array2
        # (doubles as the Flush+Reload probe array), the secret, and the
        # memory slot holding idx (flushed to delay the store).
        self.array1 = kernel.map_anonymous(self.process, pages=2)
        self.array2 = kernel.map_anonymous(self.process, pages=512)
        self.idx_slot = kernel.map_anonymous(self.process, pages=1)
        self.secret_va = kernel.map_anonymous(self.process, pages=4)
        kernel.write(self.process, self.idx_slot, _ATTACK_IDX.to_bytes(8, "little"))
        kernel.write(self.process, self.array1 + _VALIDATE_OFF, bytes([_VALIDATE_BYTE]))
        # array2[0] architectural value: points the squash replay at a
        # known-zero array1 byte (slot 0 decoy).
        kernel.write(self.process, self.array2, (0).to_bytes(8, "little"))
        # ``gadget`` lets callers transform the victim routine — the
        # mitigation evaluation passes a fenced variant (Section VI-A).
        self.victim = self.machine.load_program(
            self.process, gadget if gadget is not None else spectre_stl_gadget()
        )
        self.attacker = AttackerStld(
            self.machine,
            self.process,
            slide_pages=slide_pages,
            robust=None if hardened else False,
        )
        self.channel = FlushReloadChannel(
            self.machine,
            self.process,
            self.array2,
            calibration_samples=None if hardened else 1,
        )
        self._flush_idx_program = self.machine.load_program(
            self.process,
            Program(
                [MovImm("p", self.idx_slot), Clflush(base="p"), Halt()],
                name="flush-idx",
            ),
        )
        self.collision: CollisionResult | None = None
        self.validation_attempts = 0

    # ------------------------------------------------------------------
    # Victim invocation (the only interface the attacker has)
    # ------------------------------------------------------------------
    def run_victim(self, x: int, flush_idx: bool = True) -> None:
        if flush_idx:
            self.machine.run(self.process, self._flush_idx_program)
        self.machine.run(
            self.process,
            self.victim,
            {
                "x": x & ((1 << 64) - 1),
                "idx_ptr": self.idx_slot,
                "array1": self.array1,
                "array2": self.array2,
            },
        )

    def _charge_victim_load(self) -> None:
        """Charge the gadget load's SSBP stickiness so the collision scan
        has something to observe: aliasing victim runs (idx = 0) deliver
        G events; a syscall between them clears C0 so each run bypasses."""
        kernel = self.machine.kernel
        original = kernel.read(self.process, self.idx_slot, 8)
        kernel.write(self.process, self.idx_slot, (0).to_bytes(8, "little"))
        for _ in range(4):
            kernel.syscall(self.process)
            self.run_victim(x=0, flush_idx=True)
        kernel.write(self.process, self.idx_slot, original)

    # ------------------------------------------------------------------
    # Phase 1: collision search + validation
    # ------------------------------------------------------------------
    def find_collision(
        self, max_candidates: int = 16, max_attempts: int | None = None
    ) -> CollisionResult:
        """Find and validate an attacker stld colliding with the victim
        pair.  Load-hash candidates come from code sliding; each is
        validated by leaking a byte the attacker knows (store-tag match
        is not directly observable, Fig 7).  ``max_attempts`` caps each
        sliding scan — the give-up budget a real attacker sets against a
        victim whose entry never charges (e.g. a fenced gadget)."""
        finder = SsbpCollisionFinder(
            self.attacker,
            self._charge_victim_load,
            majority=None if self.hardened else False,
        )
        # The robust arm may rescan a failed range: a garbled screen read
        # skips the page's one true offset, but it is still inside the
        # same scan window, so a second pass over it usually lands.
        rescans_left = 2 if (self.hardened and self.attacker.robust_active()) else 0
        offset = 0
        for candidate_index in range(max_candidates):
            while True:
                try:
                    candidate = finder.find(
                        start_offset=offset, max_attempts=max_attempts
                    )
                    break
                except CollisionNotFound:
                    if rescans_left <= 0:
                        candidate = None
                        break
                    rescans_left -= 1
            if candidate is None:
                break
            offset = candidate.iva - self.attacker.slide_base + 1
            self.validation_attempts = candidate_index + 1
            if self._validate(candidate):
                self.collision = candidate
                return candidate
        raise AttackError(
            f"no PSFP collision validated in {self.validation_attempts} candidates"
        )

    def _validate(self, candidate: CollisionResult) -> bool:
        recovered = self.leak_byte(_VALIDATE_OFF, candidate)
        return recovered == _VALIDATE_BYTE

    # ------------------------------------------------------------------
    # Phase 2+3: per-byte mistrain and leak
    # ------------------------------------------------------------------
    def leak_byte(self, array1_offset: int, candidate: CollisionResult) -> int | None:
        return self.leak_byte_scored(array1_offset, candidate)[0]

    #: Confidence assigned to a decoy-only round: the byte is inferred
    #: from the *absence* of other hits, weaker evidence than a direct
    #: cache hit but far from a guess.
    _DECOY_CONFIDENCE = 0.4

    def leak_byte_scored(
        self, array1_offset: int, candidate: CollisionResult
    ) -> tuple[int | None, float]:
        """One leak round plus a calibrated per-read confidence in [0, 1].

        A clean single hit scores by how deep below the hit/miss
        threshold its reload time sits (1.0 at the calibrated hit
        center, 0.0 at the threshold); decoy-only rounds score a fixed
        intermediate confidence; failed training or ambiguous multi-hit
        rounds score 0.
        """
        if not self.attacker.train_psf(candidate.program):
            return None, 0.0
        self.channel.flush_all()
        self.run_victim(x=array1_offset)
        times = self.channel.reload_times()
        hits = [
            (slot, t)
            for slot, t in enumerate(times)
            if t < self.channel.threshold and slot != _DECOY_SLOT
        ]
        if len(hits) == 1:
            slot, t = hits[0]
            scale = max(1.0, self.channel.threshold - self.channel.hit_center)
            return slot, max(0.0, min(1.0, (self.channel.threshold - t) / scale))
        if not hits:
            # Only the decoy fired: the leaked byte was the decoy value.
            return _DECOY_SLOT, self._DECOY_CONFIDENCE
        return None, 0.0

    def recalibrate(self) -> None:
        """Refresh both timing calibrations against the drifted clock —
        the hardened extraction loop invokes this when per-byte
        confidence collapses mid-campaign."""
        self.attacker.calibrate()
        self.channel.recalibrate()

    def leak(self, secret: bytes) -> LeakReport:
        """Plant ``secret`` in victim memory and leak it byte by byte."""
        kernel = self.machine.kernel
        kernel.write(self.process, self.secret_va, secret)
        candidate = self.collision or self.find_collision()
        start_cycles = self.machine.core.thread(0).cycles
        recovered = bytearray()
        errors = []
        for index in range(len(secret)):
            offset = self.secret_va + index - self.array1
            byte = self.leak_byte(offset, candidate)
            if byte is None:  # retry once on a failed round
                byte = self.leak_byte(offset, candidate)
            recovered.append(byte if byte is not None else 0)
            if recovered[-1] != secret[index]:
                errors.append(index)
        cycles = self.machine.core.thread(0).cycles - start_cycles
        return LeakReport(
            recovered=bytes(recovered),
            expected=secret,
            cycles=cycles,
            clock_ghz=self.machine.core.model.clock_ghz,
            collision=candidate,
            validation_attempts=self.validation_attempts,
            per_byte_errors=errors,
        )
