"""Unprivileged attacker runtime.

Everything here uses only what the paper's threat model grants a normal
user: mapping its own memory, placing its own code at chosen *virtual*
addresses, executing ``clflush``/``mfence``/``rdpru``, and timing its own
execution.  No physical addresses, no PTEditor, no pagemap.

:class:`AttackerStld` wraps an stld probe routine plus a self-calibrated
timing classifier, which is all the attacks need to observe predictor
state from user space.
"""

from __future__ import annotations

from repro.core.counters import CounterState
from repro.core.exec_types import TIMING_CLASS, TimingClass
from repro.core.state_machine import run_sequence as model_run
from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.errors import ReproError
from repro.mem.physical import PAGE_SIZE
from repro.osm.address_space import Perm
from repro.osm.process import Process
from repro.revng.sequences import parse
from repro.revng.stld import DATA_REG, LOAD_ADDR_REG, STORE_ADDR_REG, build_stld
from repro.revng.timing import CALIBRATION_SEQUENCE, CalibrationResult, CentroidClassifier

__all__ = ["AttackerStld"]


class AttackerStld:
    """An attacker's stld probe kit inside one process.

    ``slide_pages`` executable pages are mapped for code sliding; probe
    programs can be placed at any byte offset inside them.
    """

    def __init__(
        self,
        machine: Machine,
        process: Process,
        thread_id: int = 0,
        slide_pages: int = 16,
        timer=None,
        template: Program | None = None,
        robust: bool | None = None,
    ) -> None:
        self.machine = machine
        self.process = process
        self.thread_id = thread_id
        #: Robustness override: None auto-selects (robust exactly when a
        #: non-quiet interference model is attached); False pins the
        #: historical protocol whatever the environment (the
        #: pre-hardening comparison arm), True forces the robust one.
        self._robust_override = robust
        #: Optional measurement transform (e.g. a coarse browser timer);
        #: receives true cycles, returns the attacker-visible reading.
        self.timer = timer
        #: The probe routine; a shorter stld (fewer delay/consumer
        #: multiplies) trades timing margin for probe throughput, which
        #: the full-space fingerprinting walk needs.
        self.template = template or build_stld()
        #: Consecutive bypass observations required before a drain is
        #: considered complete.  Jittery timers (the browser) misread an
        #: occasional stall as a bypass; demanding two in a row keeps a
        #: single misread from abandoning a drain with C3 still charged.
        #: Interference implies a jittery environment, so it bumps the
        #: default the same way.
        self.drain_confirmations = 2 if self.robust_active() else 1
        #: Robust calibrations retry with fresh slide spots until the
        #: classifier's separability check clears this bar (best attempt
        #: wins if none does — graceful degradation, not an abort).
        self.min_separability = 1.2
        #: Separability of the most recent calibration (None before the
        #: first robust fit; quiet fits do not compute it).
        self.calibration_separability: float | None = None
        self.slide_base = machine.kernel.map_anonymous(
            process, pages=slide_pages + 1, perms=Perm.RX, kind="code"
        )
        self.slide_pages = slide_pages
        buf = machine.kernel.map_anonymous(process, pages=2)
        self.load_va = buf + 0x100
        self.disjoint_store_va = self.load_va + 64
        self.classifier = CentroidClassifier()
        self._calibration_program = self.place_at(self.slide_base)
        self._calibrations = 0
        self.calibrate()

    # ------------------------------------------------------------------
    # Placement and execution
    # ------------------------------------------------------------------
    def place_at(self, iva: int) -> Program:
        """Relocate the probe stld to an exact IVA inside the slide region.

        The pipeline interprets instruction objects, so re-writing the
        code bytes at every slide offset is skipped (a real attacker
        memcpy's the machine code once per offset, Fig 3).
        """
        if not self.slide_base <= iva <= self.slide_limit:
            raise ReproError(f"IVA {iva:#x} outside the slide region")
        return self.template.relocate(iva)

    @property
    def slide_limit(self) -> int:
        return (
            self.slide_base
            + self.slide_pages * PAGE_SIZE
            - self.template.byte_size
        )

    def run(self, program: Program, aliasing: bool) -> int:
        """Execute one probe stld; returns measured cycles (RDPRU-style)."""
        store_va = self.load_va if aliasing else self.disjoint_store_va
        result = self.machine.run(
            self.process,
            program,
            {
                STORE_ADDR_REG: store_va,
                LOAD_ADDR_REG: self.load_va,
                DATA_REG: 0xDD,
            },
            thread_id=self.thread_id,
        )
        return self._measure(result.cycles)

    def _interference_active(self) -> bool:
        model = self.machine.interference
        return model is not None and not model.profile.is_quiet

    def robust_active(self) -> bool:
        """Whether the hardened measurement protocol is in effect."""
        if self._robust_override is not None:
            return self._robust_override
        return self._interference_active()

    def _measure(self, cycles: int) -> int:
        noise = self.machine.core.model.timer_noise
        if noise:
            jitter = self.machine.core.rng.uniform(-noise, noise)
            cycles = max(0, round(cycles * (1.0 + jitter)))
        interference = self.machine.interference
        if interference is not None:
            # Clock drift/jitter is a property of the environment; any
            # attacker-side timer (secure-timer quantization, browser
            # coarsening) reads the already-drifted clock, so the
            # interference transform composes *first*.
            cycles = interference.timer(cycles)
        if self.timer is not None:
            cycles = self.timer(cycles)
        return cycles

    def observe(self, program: Program, aliasing: bool) -> TimingClass:
        return self.classifier.classify(self.run(program, aliasing))

    def observe_with_confidence(
        self, program: Program, aliasing: bool
    ) -> tuple[TimingClass, float]:
        """One observation plus its per-read classification confidence."""
        return self.classifier.classify_with_confidence(
            self.run(program, aliasing)
        )

    # ------------------------------------------------------------------
    # Self-calibration (no privileged placement: any offsets will do,
    # because the state machine is the same whatever the entry)
    # ------------------------------------------------------------------
    def calibrate(
        self, spots: int = 3, robust: bool | None = None
    ) -> CalibrationResult:
        """Self-calibrate the timing classifier.

        ``robust=None`` auto-selects: the paper's mean-centroid fit on a
        quiet machine (byte-identical to the pre-interference stack),
        the median/MAD fit with a separability check whenever a
        non-quiet interference model is attached.  The robust path
        gathers twice the samples per attempt and retries on fresh
        slide spots while the separability check fails, keeping the
        best-separated calibration if no attempt clears the bar.
        """
        if robust is None:
            robust = self.robust_active()
        if not robust:
            result = self._calibrate_once(
                [self.slide_base + spot * 128 for spot in range(spots)]
            )
            self.classifier.fit(result)
            self._calibrations += 1
            return result
        width = spots * 2
        best: CalibrationResult | None = None
        best_separability = -1.0
        for attempt in range(3):
            offsets = [
                self.slide_base + (attempt * width + spot) * 128
                for spot in range(width)
            ]
            result = self._calibrate_once(offsets)
            self.classifier.fit(result, robust=True)
            separability = self.classifier.separability()
            if separability > best_separability:
                best, best_separability = result, separability
            if separability >= self.min_separability:
                break
        assert best is not None
        if self.classifier.calibration is not best:
            self.classifier.fit(best, robust=True)
        self.calibration_separability = best_separability
        self._calibrations += 1
        return best

    def _calibrate_once(self, offsets: list[int]) -> CalibrationResult:
        result = CalibrationResult()
        tokens = parse(CALIBRATION_SEQUENCE)
        psf = self.machine.core.model.psf_supported
        expected, _ = model_run(
            CounterState(), [token.aliasing for token in tokens], psf
        )
        for iva in offsets:
            # Warm the data lines with an untimed non-aliasing run.
            program = self.place_at(iva)
            self.run(program, aliasing=False)
            for exec_type, token in zip(expected, tokens):
                cycles = self.run(program, token.aliasing)
                result.add(TIMING_CLASS[exec_type], cycles)
        if psf and set(result.means) != set(TimingClass):
            raise ReproError("attacker calibration missed timing classes")
        self._drain_calibration_state(offsets)
        return result

    def _drain_calibration_state(self, offsets: list[int]) -> None:
        """The calibration spots end in the Block state, which only an
        eviction or PSFP flush clears; a syscall (PSFP flush) plus C3
        drains restore neutral ground — all unprivileged operations."""
        self.machine.kernel.syscall(self.process, self.thread_id)
        for iva in offsets:
            program = self.place_at(iva)
            for _ in range(36):
                self.run(program, aliasing=False)

    # ------------------------------------------------------------------
    # Common predictor manipulations (all timing-observable)
    # ------------------------------------------------------------------
    def drain_c3(self, program: Program, budget: int = 40) -> int:
        """Non-aliasing runs until the bypass class shows (for
        ``drain_confirmations`` consecutive observations); returns the
        count of sticky (stalled) observations drained."""
        drained = 0
        bypasses_in_a_row = 0
        for _ in range(budget):
            if self.observe(program, aliasing=False) is TimingClass.BYPASS:
                bypasses_in_a_row += 1
                if bypasses_in_a_row >= self.drain_confirmations:
                    return drained
            else:
                bypasses_in_a_row = 0
                drained += 1
        return drained

    def charge_c3(self, program: Program) -> None:
        """(7n, a) x 3: saturate C4 and charge C3 at this program's entry."""
        for _ in range(3):
            for _ in range(7):
                self.run(program, aliasing=False)
            self.run(program, aliasing=True)

    def pump_c4(self, program: Program) -> None:
        """Deliver G events until a charge is visible (C4 saturated)."""
        for _ in range(4):
            self.drain_c3(program)
            self.run(program, aliasing=True)  # G
        self.drain_c3(program)

    def train_psf(self, program: Program, budget: int = 24) -> bool:
        """Drive this pair's PSFP entry into the PSF-enabled state:
        drain C3, force a G, then aliasing runs until a predictive
        forward (type C) is observed."""
        self.machine.kernel.syscall(self.process, self.thread_id)  # PSFP flush
        self.drain_c3(program)
        self.run(program, aliasing=True)  # G: C0=4, C1=16, C2=2
        for _ in range(budget):
            if self.observe(program, aliasing=True) is TimingClass.PSF_FORWARD:
                return True
        return False
