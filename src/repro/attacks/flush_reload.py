"""The Flush+Reload cache covert channel [Yarom & Falkner, 50].

The Spectre-STL attack encodes the leaked byte as a touched cache line
inside a 256-slot, page-strided probe array; the attacker flushes every
slot, lets the victim run, then times a reload of each slot — the fast
one names the byte.
"""

from __future__ import annotations

from repro.cpu.isa import Clflush, Halt, Load, MovImm, Program
from repro.cpu.machine import Machine
from repro.errors import AttackError
from repro.osm.process import Process

__all__ = ["FlushReloadChannel"]


class FlushReloadChannel:
    """Flush+Reload over a page-strided probe array."""

    def __init__(
        self,
        machine: Machine,
        process: Process,
        base_va: int,
        slots: int = 256,
        stride: int = 4096,
        thread_id: int = 0,
    ) -> None:
        self.machine = machine
        self.process = process
        self.base_va = base_va
        self.slots = slots
        self.stride = stride
        self.thread_id = thread_id
        instructions = [MovImm("base", self.base_va)]
        instructions += [
            Clflush(base="base", offset=slot * self.stride)
            for slot in range(self.slots)
        ]
        instructions.append(Halt())
        self._flush_program = machine.load_program(
            process, Program(instructions, name="flush-all")
        )
        self._probe_program = machine.load_program(
            process,
            Program([Load("x", base="addr"), Halt()], name="reload"),
        )
        self.threshold = self._calibrate_threshold()

    # ------------------------------------------------------------------
    def _run(self, program: Program, regs: dict | None = None) -> int:
        result = self.machine.run(
            self.process, program, regs, thread_id=self.thread_id
        )
        return result.cycles

    def _probe(self, slot: int) -> int:
        return self._run(
            self._probe_program, {"addr": self.base_va + slot * self.stride}
        )

    def _calibrate_threshold(self) -> int:
        """Midpoint between a cached and a flushed reload of slot 0."""
        self._probe(0)        # fill
        hit = self._probe(0)  # cached
        self.flush_all()
        miss = self._probe(0)
        if miss <= hit:
            raise AttackError("flush+reload timing is not separable")
        return (hit + miss) // 2

    # ------------------------------------------------------------------
    def flush_all(self) -> None:
        """``clflush`` every slot (the attacker's pre-victim step)."""
        self._run(self._flush_program)

    def reload_times(self) -> list[int]:
        """Timed reload of every slot, in slot order."""
        return [self._probe(slot) for slot in range(self.slots)]

    def receive(self) -> int | None:
        """The slot whose reload was a cache hit, or None when no slot
        (or more than two slots) signals — a failed round."""
        times = self.reload_times()
        hits = [slot for slot, t in enumerate(times) if t < self.threshold]
        if len(hits) == 1:
            return hits[0]
        return None

    def __repr__(self) -> str:
        return (
            f"FlushReloadChannel(slots={self.slots}, stride={self.stride}, "
            f"threshold={self.threshold})"
        )
