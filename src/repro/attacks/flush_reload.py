"""The Flush+Reload cache covert channel [Yarom & Falkner, 50].

The Spectre-STL attack encodes the leaked byte as a touched cache line
inside a 256-slot, page-strided probe array; the attacker flushes every
slot, lets the victim run, then times a reload of each slot — the fast
one names the byte.
"""

from __future__ import annotations

from repro.cpu.isa import Clflush, Halt, Load, MovImm, Program
from repro.cpu.machine import Machine
from repro.errors import AttackError
from repro.osm.process import Process
from repro.revng.timing import mad, median

__all__ = ["FlushReloadChannel"]


class FlushReloadChannel:
    """Flush+Reload over a page-strided probe array."""

    def __init__(
        self,
        machine: Machine,
        process: Process,
        base_va: int,
        slots: int = 256,
        stride: int = 4096,
        thread_id: int = 0,
        calibration_samples: int | None = None,
    ) -> None:
        self.machine = machine
        self.process = process
        self.base_va = base_va
        self.slots = slots
        self.stride = stride
        self.thread_id = thread_id
        interference = machine.interference
        noisy = interference is not None and not interference.profile.is_quiet
        #: Hit/miss sample pairs per calibration.  One pair reproduces
        #: the original midpoint calibration exactly; a non-quiet
        #: interference model auto-selects the multi-sample median/MAD
        #: calibration, which a preempted probe cannot skew.
        self.calibration_samples = (
            calibration_samples
            if calibration_samples is not None
            else (7 if noisy else 1)
        )
        #: Calibrations performed (the first one included); extraction
        #: reports recalibrations as ``calibrations - 1``.
        self.calibrations = 0
        #: Hit/miss population centers from the latest calibration —
        #: the scale the per-read confidence score normalizes against.
        self.hit_center = 0.0
        self.miss_center = 0.0
        instructions = [MovImm("base", self.base_va)]
        instructions += [
            Clflush(base="base", offset=slot * self.stride)
            for slot in range(self.slots)
        ]
        instructions.append(Halt())
        self._flush_program = machine.load_program(
            process, Program(instructions, name="flush-all")
        )
        self._probe_program = machine.load_program(
            process,
            Program([Load("x", base="addr"), Halt()], name="reload"),
        )
        self.threshold = self._calibrate_threshold()

    # ------------------------------------------------------------------
    def _run(self, program: Program, regs: dict | None = None) -> int:
        result = self.machine.run(
            self.process, program, regs, thread_id=self.thread_id
        )
        cycles = result.cycles
        interference = self.machine.interference
        if interference is not None:
            cycles = interference.timer(cycles)
        return cycles

    def _probe(self, slot: int) -> int:
        return self._run(
            self._probe_program, {"addr": self.base_va + slot * self.stride}
        )

    def _calibrate_threshold(self) -> int:
        """Threshold between cached and flushed reloads of slot 0.

        With one sample pair this is the exact historical calibration:
        midpoint of a single hit and a single miss.  With more, hit and
        miss populations are summarized by medians and checked for
        median/MAD separability, so an interference burst landing on one
        probe cannot poison the threshold for the whole run.
        """
        self.calibrations += 1
        hits: list[int] = []
        misses: list[int] = []
        for _ in range(self.calibration_samples):
            self._probe(0)              # fill
            hits.append(self._probe(0))  # cached
            self.flush_all()
            misses.append(self._probe(0))
        hit_center = median(hits)
        miss_center = median(misses)
        scale = max(1.0, mad(hits) + mad(misses))
        if miss_center - hit_center <= (
            0.0 if self.calibration_samples == 1 else scale
        ):
            raise AttackError("flush+reload timing is not separable")
        self.hit_center = hit_center
        self.miss_center = miss_center
        return int((hit_center + miss_center) // 2)

    def recalibrate(self) -> int:
        """Re-derive the hit/miss threshold against the current clock
        (drift makes a stale threshold misclassify whole rounds)."""
        self.threshold = self._calibrate_threshold()
        return self.threshold

    # ------------------------------------------------------------------
    def flush_all(self) -> None:
        """``clflush`` every slot (the attacker's pre-victim step)."""
        self._run(self._flush_program)

    def reload_times(self) -> list[int]:
        """Timed reload of every slot, in slot order."""
        return [self._probe(slot) for slot in range(self.slots)]

    def receive(self) -> int | None:
        """The slot whose reload was a cache hit, or None when no slot
        (or more than two slots) signals — a failed round."""
        times = self.reload_times()
        hits = [slot for slot, t in enumerate(times) if t < self.threshold]
        if len(hits) == 1:
            return hits[0]
        return None

    def __repr__(self) -> str:
        return (
            f"FlushReloadChannel(slots={self.slots}, stride={self.stride}, "
            f"threshold={self.threshold})"
        )
