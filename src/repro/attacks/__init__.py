"""Attacks (paper Section V): Spectre-STL, Spectre-CTL, web, fingerprinting.

All attack code obeys the paper's threat model: an unprivileged attacker
with its own memory/code placement, ``clflush``/``rdpru``, and timing —
no physical addresses, no PTEditor (those privileged tools live in
:mod:`repro.revng`, the reverse-engineering phase).
"""

from repro.attacks.address_leak import AddressMappingLeak, RelativeHashLeak
from repro.attacks.aslr import AslrDerandomizer, AslrReport
from repro.attacks.capacity import (
    CapacityConfig,
    CapacityReport,
    build_channel,
    measure_capacity,
)
from repro.attacks.channels import (
    CacheLineChannel,
    NoisyChannel,
    StlPredictorChannel,
)
from repro.attacks.collision import CollisionResult, SsbpCollisionFinder
from repro.attacks.covert_channel import ChannelReport, SsbpCovertChannel
from repro.attacks.extraction import ExtractionReport, SecretExtraction, run_suite
from repro.attacks.fingerprint import SsbpFingerprinter, collect_dataset
from repro.attacks.flush_reload import FlushReloadChannel
from repro.attacks.victim_gadgets import (
    CTL_REGS,
    STL_REGS,
    spectre_ctl_gadget,
    spectre_stl_gadget,
)
from repro.attacks.runtime import AttackerStld
from repro.attacks.spectre_ctl import CtlLeakReport, SpectreCTL
from repro.attacks.spectre_stl import LeakReport, SpectreSTL
from repro.attacks.spectre_stl_inplace import InPlaceLeakReport, SpectreSTLInPlace
from repro.attacks.web import BrowserTimer, SpectreCTLWeb

__all__ = [
    "AddressMappingLeak",
    "AslrDerandomizer",
    "AslrReport",
    "AttackerStld",
    "BrowserTimer",
    "CTL_REGS",
    "CacheLineChannel",
    "CapacityConfig",
    "CapacityReport",
    "ChannelReport",
    "CollisionResult",
    "CtlLeakReport",
    "ExtractionReport",
    "FlushReloadChannel",
    "InPlaceLeakReport",
    "LeakReport",
    "NoisyChannel",
    "RelativeHashLeak",
    "STL_REGS",
    "SecretExtraction",
    "SpectreCTL",
    "SpectreCTLWeb",
    "SpectreSTL",
    "SpectreSTLInPlace",
    "SsbpCollisionFinder",
    "SsbpCovertChannel",
    "SsbpFingerprinter",
    "StlPredictorChannel",
    "build_channel",
    "collect_dataset",
    "measure_capacity",
    "run_suite",
    "spectre_ctl_gadget",
    "spectre_stl_gadget",
]
