"""The Spectre-CTL attack (paper Section V-C).

Spectre-CTL leaks memory *across process boundaries* using only SSBP —
no cache covert channel, no shared secret-dependent cache lines, no
multiplied-by-4096 gadget index:

1. **Collision search** — the attacker (its own process!) slides its stld
   until it collides with the victim gadget's first and third loads.
   SSBP survives context switches (Vulnerability 1), which is what makes
   the cross-process observation possible at all.
2. **Mistraining** — before each victim run the attacker drains the first
   load's C3 so SSBP predicts non-aliasing, and keeps the third load's
   C4 saturated so a single covert G event charges C3 to 15.
3. **Leak** — the attacker plants the secret's address in the victim's
   input buffer (``array2``, shared), evicts the victim's ``idx`` line to
   delay the store, and runs the victim with ``idx == idx2``.  The first
   load transiently reads the *stale* planted pointer, the second fetches
   the secret, and the third load races the still-pending store: it
   aliases (a G event, charging the attacker-observable C3) exactly when
   ``secret == idx``.  256 guesses per byte, probed through the SSBP
   side channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.collision import CollisionResult, SsbpCollisionFinder
from repro.attacks.victim_gadgets import spectre_ctl_gadget
from repro.attacks.runtime import AttackerStld
from repro.core.exec_types import TimingClass
from repro.cpu.isa import Clflush, Halt, MovImm, Program
from repro.cpu.machine import Machine
from repro.errors import AttackError, CollisionNotFound
from repro.osm.domains import SecurityDomain
from repro.osm.process import Process

__all__ = ["SpectreCTL", "CtlLeakReport"]

#: array1 offset whose byte the attacker knows (victim input echo);
#: used to steer the third load during its collision search.
_KNOWN_OFF = 0x180
_KNOWN_BYTE = 0xA7


@dataclass
class CtlLeakReport:
    """Outcome of a Spectre-CTL leak campaign."""

    recovered: bytes
    expected: bytes
    cycles: int
    clock_ghz: float
    load1_collision: CollisionResult | None = None
    load3_collision: CollisionResult | None = None
    missed_bytes: list[int] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        if not self.expected:
            return 1.0
        good = sum(a == b for a, b in zip(self.recovered, self.expected))
        return good / len(self.expected)

    @property
    def bytes_per_second(self) -> float:
        seconds = self.cycles / (self.clock_ghz * 1e9)
        return len(self.recovered) / seconds if seconds else float("inf")


class SpectreCTL:
    """Cross-process Spectre-CTL with the SSBP covert channel."""

    def __init__(
        self,
        machine: Machine | None = None,
        victim_domain: SecurityDomain = SecurityDomain.USER,
        slide_pages: int = 16,
    ) -> None:
        self.machine = machine or Machine(seed=2077)
        kernel = self.machine.kernel
        self.victim: Process = kernel.create_process("victim", victim_domain)
        self.attacker_process: Process = kernel.create_process("attacker")
        # Victim-private memory: array1 and the secret live behind the
        # process boundary.  array2 is the victim's *input buffer*,
        # shared with the attacker (mmap), holding the planted pointer
        # and the idx variable the attacker can flush.
        self.array1 = kernel.map_anonymous(self.victim, pages=2)
        self.secret_va = kernel.map_anonymous(self.victim, pages=4)
        self.array2 = kernel.map_anonymous(self.victim, pages=1)
        self.idx_slot = self.array2 + 0x800
        kernel.write(self.victim, self.array1 + _KNOWN_OFF, bytes([_KNOWN_BYTE]))
        self.attacker_array2 = kernel.map_shared(
            self.attacker_process, self.victim, self.array2, pages=1
        )
        self.gadget = self.machine.load_program(self.victim, spectre_ctl_gadget())
        self.attacker = self._create_attacker(slide_pages)
        self._flush_idx_program = self.machine.load_program(
            self.attacker_process,
            Program(
                [
                    MovImm("p", self.attacker_array2 + 0x800),
                    Clflush(base="p"),
                    Halt(),
                ],
                name="flush-idx",
            ),
        )
        self.load1_collision: CollisionResult | None = None
        self.load3_collision: CollisionResult | None = None
        #: Extra confirmations demanded of a covert hit (the browser
        #: variant verifies because its coarse timer can false-positive).
        self.verify_hits = 0
        #: Victim runs per charging choreography; noisy primitives
        #: (probabilistic eviction) need more to guarantee three G events.
        self.charge_runs = 4
        #: Consecutive sticky observations demanded during sliding.
        self.collision_verify_runs = 2

    def _create_attacker(self, slide_pages: int) -> AttackerStld:
        """Hook for variants that constrain the attacker's primitives."""
        return AttackerStld(
            self.machine, self.attacker_process, slide_pages=slide_pages
        )

    # ------------------------------------------------------------------
    # Attacker-side shared-memory helpers
    # ------------------------------------------------------------------
    def _plant(self, offset: int, value: int) -> None:
        self.machine.kernel.write(
            self.attacker_process,
            self.attacker_array2 + offset,
            value.to_bytes(8, "little"),
        )

    def _set_idx(self, idx: int) -> None:
        self.machine.kernel.write(
            self.attacker_process,
            self.attacker_array2 + 0x800,
            idx.to_bytes(8, "little"),
        )

    def _flush_idx(self) -> None:
        self.machine.run(self.attacker_process, self._flush_idx_program)

    def run_victim(self, idx2_off: int) -> None:
        """Invoke the victim function (schedules the victim's process —
        which flushes PSFP, as every context switch does)."""
        self.machine.run(
            self.victim,
            self.gadget,
            {
                "idx_ptr": self.idx_slot,
                "idx2_off": idx2_off,
                "array1": self.array1,
                "array2": self.array2,
            },
        )

    # ------------------------------------------------------------------
    # Collision-charging choreographies
    # ------------------------------------------------------------------
    def _charge_load1(self) -> None:
        """Aliasing victim runs (idx == idx2) G-train the first load.
        The planted pointer steers the third load AWAY from the store
        (plant -> known byte 0xA7, idx != 0xA7), so only load 1 charges."""
        idx = 0x10
        assert idx != _KNOWN_BYTE
        for _ in range(self.charge_runs):
            self._set_idx(idx)
            self._plant(idx, _KNOWN_OFF)
            self._flush_idx()
            self.run_victim(idx2_off=idx)

    def _charge_load3(self) -> None:
        """Runs with the planted pointer at the attacker-known byte and
        ``idx == that byte``: the third load aliases the pending store
        and G-trains.  Load 1 must *bypass* for the window to open, so
        its entry is drained before every run (and after, so the sliding
        scan does not trip over it)."""
        idx = _KNOWN_BYTE
        for _ in range(self.charge_runs):
            if self.load1_collision is not None:
                self.attacker.drain_c3(self.load1_collision.program)
            self._set_idx(idx)
            self._plant(idx, _KNOWN_OFF)
            self._flush_idx()
            self.run_victim(idx2_off=idx)
        if self.load1_collision is not None:
            self.attacker.drain_c3(self.load1_collision.program)

    # ------------------------------------------------------------------
    # Phase 1: find both collisions
    # ------------------------------------------------------------------
    def find_collisions(self) -> tuple[CollisionResult, CollisionResult]:
        finder1 = SsbpCollisionFinder(
            self.attacker, self._charge_load1, verify_runs=self.collision_verify_runs
        )
        self.load1_collision = finder1.find()
        self.attacker.drain_c3(self.load1_collision.program)

        finder3 = SsbpCollisionFinder(
            self.attacker, self._charge_load3, verify_runs=self.collision_verify_runs
        )
        offset = 0
        while True:
            candidate = finder3.find(start_offset=offset)
            offset = candidate.iva - self.attacker.slide_base + 1
            if not self._is_load1_entry(candidate):
                break
        self.load3_collision = candidate
        self.attacker.drain_c3(candidate.program)
        return self.load1_collision, self.load3_collision

    def _is_load1_entry(self, candidate: CollisionResult) -> bool:
        """Disambiguate: drain the candidate, recharge ONLY load 1, and
        see whether the candidate observes the charge."""
        self.attacker.drain_c3(candidate.program)
        self._charge_load1()
        sticky = (
            self.attacker.observe(candidate.program, aliasing=False)
            is TimingClass.STALL_CACHE
        )
        self.attacker.drain_c3(candidate.program)
        return sticky

    # ------------------------------------------------------------------
    # Phase 2+3: leak
    # ------------------------------------------------------------------
    def _covert_hit(self) -> bool:
        assert self.load3_collision is not None
        observed = self.attacker.observe(
            self.load3_collision.program, aliasing=False
        )
        if observed in (TimingClass.STALL_CACHE, TimingClass.STALL_FORWARD):
            self.attacker.drain_c3(self.load3_collision.program)
            return True
        return False

    def _trial(self, idx: int, planted: int) -> bool:
        """One guess: mistrain, plant, open the window, run, probe."""
        assert self.load1_collision is not None
        self.attacker.drain_c3(self.load1_collision.program)
        self._set_idx(idx)
        self._plant(idx, planted)
        self._flush_idx()
        self.run_victim(idx2_off=idx)
        return self._covert_hit()

    def _leak_byte(self, victim_va: int) -> int | None:
        assert self.load3_collision is not None
        planted = (victim_va - self.array1) & ((1 << 64) - 1)
        # Leftover stickiness on the covert entry would read as a false
        # hit at idx = 0; clear it first.
        self.attacker.drain_c3(self.load3_collision.program)
        # Two passes: a cold secret line can close the first window of a
        # byte early (the nested loads outrun the store's resolution);
        # the failed attempt itself warms the line for the second pass.
        for _ in range(2):
            for idx in range(256):
                if not self._trial(idx, planted):
                    continue
                confirmations = sum(
                    self._trial(idx, planted) for _ in range(self.verify_hits)
                )
                if confirmations == self.verify_hits:
                    return idx
        return None

    def leak(self, secret: bytes) -> CtlLeakReport:
        """Plant ``secret`` in *victim-private* memory and leak it."""
        kernel = self.machine.kernel
        kernel.write(self.victim, self.secret_va, secret)
        if self.load1_collision is None or self.load3_collision is None:
            self.find_collisions()
        # One warming run so the secret's first line is cached (the first
        # transient window otherwise closes before the nested loads).
        self._set_idx(1)
        self._plant(1, (self.secret_va - self.array1) & ((1 << 64) - 1))
        self._flush_idx()
        self.run_victim(idx2_off=1)
        start_cycles = self.machine.core.thread(0).cycles
        recovered = bytearray()
        missed = []
        for index in range(len(secret)):
            byte = self._leak_byte(self.secret_va + index)
            if byte is None:
                missed.append(index)
                byte = 0
            recovered.append(byte)
        cycles = self.machine.core.thread(0).cycles - start_cycles
        return CtlLeakReport(
            recovered=bytes(recovered),
            expected=secret,
            cycles=cycles,
            clock_ghz=self.machine.core.model.clock_ghz,
            load1_collision=self.load1_collision,
            load3_collision=self.load3_collision,
            missed_bytes=missed,
        )
