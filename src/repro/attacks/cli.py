"""``repro-attack``: the end-to-end exploitation front end.

Four subcommands cover the exploitation chapter (docs/attacks.md):

* ``channel`` — measure one covert-channel configuration (transport,
  symbol width, repetition, injected noise): raw symbol error rate,
  corrected byte error rate, gross/goodput bits per second at the
  modeled clock;
* ``leak`` — run the Spectre-STL secret-extraction campaign under one
  mitigation or all of them, reporting per-mitigation byte accuracy and
  cycles per byte;
* ``aslr`` — run the SPOILER-style derandomizer: exact sub-page
  placement recovery plus partial physical-base bits from predictor
  collisions;
* ``verify`` — assert the exploitation contract over a ``leak --out``
  JSON: the unmitigated run recovers every byte, and every mitigated
  run is measurably degraded (exit 1 otherwise — the shell-gate form
  ``make attack-smoke`` relies on).

All runs are deterministic functions of ``--seed``; two invocations
with the same arguments write byte-identical ``--out`` files.  Exit
codes follow the shared contract (see ``--help``): a campaign that
*completes* but misses its recovery target exits 1, usage errors exit
2, Ctrl-C exits 3.
"""

from __future__ import annotations

import json
import sys

from repro.attacks.aslr import AslrDerandomizer
from repro.attacks.capacity import CHANNEL_KINDS, CapacityConfig, measure_capacity
from repro.attacks.extraction import (
    DEFAULT_COLLISION_BUDGET,
    ExtractionReport,
    run_suite,
)
from repro.cpu.machine import Machine
from repro.errors import ConfigError, ReproError
from repro.fuzz.harness import MITIGATIONS
from repro.interference import PRESET_ORDER
from repro.runtime import exitcodes
from repro.runtime.atomic import atomic_write_json
from repro.runtime.cliutil import apply_engine, build_parser, require_range

__all__ = ["DEFAULT_SECRET", "main"]

#: Default extraction target: 16 bytes, all distinct.
DEFAULT_SECRET = b"repro-secret-16B"

_EPILOG = """\
examples:
  repro-attack channel --channel cache --width 4 --payload-bytes 16
  repro-attack channel --channel stl --noise 0.05 --repeat 3
  repro-attack leak --mitigation all --out leak.json
  repro-attack verify leak.json
  repro-attack aslr --seed 4242"""


def main(argv: list[str] | None = None) -> int:
    parser = build_parser(
        "repro-attack",
        "End-to-end exploitation of the AMD speculative memory access "
        "predictors: covert channels, Spectre-STL secret extraction, "
        "and ASLR derandomization.",
        epilog=_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chan = sub.add_parser("channel", help="measure a covert-channel configuration")
    chan.add_argument("--channel", default="stl", choices=CHANNEL_KINDS,
                      help="transport: stl = predictor-state lanes, "
                           "cache = Flush+Reload lines (default stl)")
    chan.add_argument("--width", type=int, default=2, metavar="BITS",
                      help="symbol width in bits (default 2)")
    chan.add_argument("--repeat", type=int, default=1, metavar="N",
                      help="repetition-code factor (default 1 = uncoded)")
    chan.add_argument("--payload-bytes", type=int, default=8, metavar="N",
                      help="seeded payload length (default 8)")
    chan.add_argument("--noise", type=float, default=0.0, metavar="P",
                      help="per-symbol corruption probability (default 0)")
    chan.add_argument("--interference", default=None, choices=PRESET_ORDER,
                      metavar="PRESET",
                      help="attach a system-interference preset to the "
                           f"transport's machine ({', '.join(PRESET_ORDER)}; "
                           "default: no model attached)")
    chan.add_argument("--resync", action="store_true",
                      help="hardened receiver: resynchronize after a failed "
                           "frame-sync point instead of abandoning the stream")
    chan.add_argument("--seed", type=int, default=7, help="machine + payload seed")
    chan.add_argument("--json", action="store_true", help="machine-readable output")
    chan.add_argument("--out", default=None, metavar="FILE",
                      help="also write the report as JSON")

    leak = sub.add_parser("leak", help="Spectre-STL secret extraction campaign")
    leak.add_argument("--mitigation", default="none",
                      choices=(*MITIGATIONS, "all"),
                      help="victim hardening to attack through (default none); "
                           "'all' runs every mitigation on fresh machines")
    leak.add_argument("--secret", default=None, metavar="TEXT",
                      help=f"secret to plant (default {DEFAULT_SECRET.decode()!r})")
    leak.add_argument("--seed", type=int, default=2024, help="machine seed")
    leak.add_argument("--redundancy", type=int, default=1, metavar="N",
                      help="channel reads per byte, plurality-voted (default 1)")
    leak.add_argument("--slide-pages", type=int, default=16, metavar="N",
                      help="attacker code-sliding region size (default 16)")
    leak.add_argument("--collision-budget", type=int,
                      default=DEFAULT_COLLISION_BUDGET, metavar="N",
                      help="probe attempts per sliding scan before giving up "
                           f"(default {DEFAULT_COLLISION_BUDGET})")
    leak.add_argument("--interference", default=None, choices=PRESET_ORDER,
                      metavar="PRESET",
                      help="attach a system-interference preset to every "
                           f"campaign machine ({', '.join(PRESET_ORDER)})")
    leak.add_argument("--no-hardening", action="store_true",
                      help="pin the pre-hardening protocols (single-sample "
                           "calibration, exact votes, no retries) — the "
                           "robustness curve's comparison arm")
    leak.add_argument("--json", action="store_true", help="machine-readable output")
    leak.add_argument("--out", default=None, metavar="FILE",
                      help="also write the report as JSON (feeds 'verify')")

    aslr = sub.add_parser("aslr", help="derandomize a victim allocation")
    aslr.add_argument("--seed", type=int, default=4242, help="machine seed")
    aslr.add_argument("--window-bits", type=int, default=12, metavar="N",
                      help="entropy of the randomized frame window (default 12)")
    aslr.add_argument("--region-pages", type=int, default=40, metavar="N",
                      help="victim region size in pages (default 40)")
    aslr.add_argument("--json", action="store_true", help="machine-readable output")
    aslr.add_argument("--out", default=None, metavar="FILE",
                      help="also write the report as JSON")

    ver = sub.add_parser(
        "verify", help="assert the exploitation contract over a leak JSON"
    )
    ver.add_argument("report", help="a 'leak --mitigation all --out' JSON file")

    args = parser.parse_args(argv)
    apply_engine(args)
    try:
        if args.command == "channel":
            return _channel(args)
        if args.command == "leak":
            return _leak(args)
        if args.command == "aslr":
            return _aslr(args)
        return _verify(args)
    except (ConfigError, ValueError, OSError) as exc:
        print(f"repro-attack: {exc}", file=sys.stderr)
        return exitcodes.EXIT_USAGE
    except ReproError as exc:
        print(f"repro-attack: {exc}", file=sys.stderr)
        return exitcodes.EXIT_FAILURES
    except KeyboardInterrupt:
        print("repro-attack: interrupted", file=sys.stderr)
        return exitcodes.EXIT_INTERRUPTED


def _channel(args) -> int:
    # Up-front range validation: a bad value exits 2 (usage) before any
    # machine is built, instead of clamping silently or tracing deep.
    require_range("--width", args.width, 1, 16)
    require_range("--repeat", args.repeat, 1)
    require_range("--payload-bytes", args.payload_bytes, 1)
    require_range("--noise", args.noise, 0.0, 1.0)
    config = CapacityConfig(
        channel=args.channel,
        width=args.width,
        repeat=args.repeat,
        payload_bytes=args.payload_bytes,
        noise=args.noise,
        seed=args.seed,
        interference=args.interference,
        resync=args.resync,
    )
    report = measure_capacity(config)
    data = report.to_dict()
    if args.out:
        atomic_write_json(args.out, data)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return exitcodes.EXIT_OK
    print(
        f"channel {config.channel}: width {config.width}b x{config.repeat}, "
        f"{config.payload_bytes} payload bytes, noise {config.noise:g}"
    )
    print(
        f"  wire: {report.symbols_on_wire} symbols, "
        f"raw symbol error rate {report.raw_symbol_error_rate:.4f}"
    )
    print(
        f"  decoded: byte error rate {report.corrected_byte_error_rate:.4f}"
        + (" (framing failed)" if report.framing_failed else "")
    )
    print(
        f"  throughput: {report.gross_bits_per_second:,.0f} b/s gross, "
        f"{report.goodput_bits_per_second:,.0f} b/s goodput "
        f"({report.cycles:,} cycles @ {report.clock_ghz:g} GHz)"
    )
    if args.out:
        print(f"  report written to {args.out}")
    return exitcodes.EXIT_OK


def _leak(args) -> int:
    require_range("--redundancy", args.redundancy, 1)
    require_range("--slide-pages", args.slide_pages, 1, 512)
    if args.collision_budget is not None:
        require_range("--collision-budget", args.collision_budget, 1)
    secret = args.secret.encode() if args.secret is not None else DEFAULT_SECRET
    mitigations = MITIGATIONS if args.mitigation == "all" else (args.mitigation,)
    reports = run_suite(
        secret,
        seed=args.seed,
        mitigations=mitigations,
        slide_pages=args.slide_pages,
        redundancy=args.redundancy,
        collision_budget=args.collision_budget,
        interference=args.interference,
        hardened=not args.no_hardening,
    )
    data = {
        "seed": args.seed,
        "secret_bytes": len(secret),
        "redundancy": args.redundancy,
        "interference": args.interference,
        "hardened": not args.no_hardening,
        "reports": [report.to_dict() for report in reports],
    }
    if args.out:
        atomic_write_json(args.out, data)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        for report in reports:
            _print_leak_report(report)
        if args.out:
            print(f"report written to {args.out}")
    # The contract: an unmitigated campaign that was requested must
    # recover the full secret.
    failed = [
        report for report in reports
        if report.mitigation == "none" and report.accuracy < 1.0
    ]
    return exitcodes.EXIT_FAILURES if failed else exitcodes.EXIT_OK


def _print_leak_report(report: ExtractionReport) -> None:
    print(
        f"mitigation {report.mitigation:<5s}: "
        f"{round(report.accuracy * len(report.expected))}/{len(report.expected)} "
        f"bytes ({report.accuracy:.0%}), "
        f"{report.cycles_per_byte:,.0f} cycles/byte, "
        f"{report.bytes_per_second:,.1f} B/s"
    )
    if report.failure:
        print(f"  attack failed: {report.failure}")
    else:
        print(f"  recovered: {report.recovered.hex()}")


def _aslr(args) -> int:
    require_range("--window-bits", args.window_bits, 1, 24)
    require_range("--region-pages", args.region_pages, 2, 4096)
    derandomizer = AslrDerandomizer(
        machine=Machine(seed=args.seed),
        window_bits=args.window_bits,
        region_pages=args.region_pages,
    )
    report = derandomizer.recover()
    data = report.to_dict()
    if args.out:
        atomic_write_json(args.out, data)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        sub_note = (
            "exact" if report.sub_page_recovered
            else f"WRONG (true {report.true_sub_offset:#x})"
        )
        print(
            f"sub-page placement: {report.recovered_sub_offset:#x} ({sub_note})"
            if report.recovered_sub_offset is not None
            else "sub-page placement: not recovered"
        )
        print(
            f"physical window: {report.candidates_remaining} of "
            f"{1 << report.window_bits} candidates remain "
            f"({report.physical_bits_recovered:.1f} bits recovered, "
            f"truth {'kept' if report.true_base_in_candidates else 'LOST'})"
        )
        print(
            f"cost: {report.probes} probes, {report.victim_invocations} victim "
            f"invocations, {report.cycles:,} cycles"
        )
        if args.out:
            print(f"report written to {args.out}")
    return exitcodes.EXIT_OK if report.success else exitcodes.EXIT_FAILURES


def _verify(args) -> int:
    with open(args.report, "rb") as handle:
        data = json.loads(handle.read().decode("utf-8"))
    reports = {entry["mitigation"]: entry for entry in data["reports"]}
    if "none" not in reports:
        raise ValueError(f"{args.report} has no unmitigated run to compare against")
    baseline = reports["none"]
    problems = []
    if baseline["accuracy"] < 1.0:
        problems.append(
            f"unmitigated accuracy {baseline['accuracy']:.2f} "
            f"(must recover every byte)"
        )
    mitigated = [name for name in reports if name != "none"]
    if not mitigated:
        problems.append("no mitigated runs to compare (run leak --mitigation all)")
    for name in mitigated:
        entry = reports[name]
        degraded = (
            entry["accuracy"] < baseline["accuracy"]
            or entry["cycles_per_byte"] > baseline["cycles_per_byte"]
        )
        verdict = "degraded" if degraded else "NOT DEGRADED"
        print(
            f"{name:<5s} vs none: accuracy {entry['accuracy']:.2f} "
            f"vs {baseline['accuracy']:.2f}, cycles/byte "
            f"{entry['cycles_per_byte']:,.0f} vs "
            f"{baseline['cycles_per_byte']:,.0f} -> {verdict}"
        )
        if not degraded:
            problems.append(f"mitigation {name} did not degrade the attack")
    if problems:
        for problem in problems:
            print(f"repro-attack: verify: {problem}", file=sys.stderr)
        return exitcodes.EXIT_FAILURES
    print(f"verify ok: full unmitigated recovery, "
          f"{len(mitigated)} mitigated run(s) degraded")
    return exitcodes.EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
