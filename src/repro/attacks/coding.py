"""Channel coding for the covert channels: symbols, redundancy, framing.

The predictor and cache channels move *symbols* (``width``-bit values);
this module is the pure-software layer that turns payload bytes into a
symbol stream and back:

* **packing** — bytes are serialized LSB-first into ``width``-bit
  symbols (the natural order for a receiver assembling bits as they
  arrive);
* **redundancy** — an r-fold repetition code with *bitwise* majority
  decode (stronger than symbol-plurality for width > 1, because a
  symbol hit by independent bit flips still contributes its unharmed
  bits to the vote);
* **sync** — a preamble/length frame, so a receiver that attaches to
  the channel mid-stream (or behind lead-in noise) can find the payload
  without any out-of-band synchronization.

Everything here is deterministic and channel-agnostic; the capacity
harness composes it with the transports in :mod:`repro.attacks.channels`.
"""

from __future__ import annotations

from repro.errors import AttackError
from repro.telemetry.metrics import registry

__all__ = [
    "FramingError",
    "bytes_to_symbols",
    "symbols_to_bytes",
    "encode_repetition",
    "decode_repetition",
    "preamble_symbols",
    "frame_symbols",
    "deframe_symbols",
]

#: Width of the length field in bits (symbol counts up to 65535).
_LENGTH_BITS = 16


class FramingError(AttackError):
    """The receiver could not locate or parse a frame in the stream."""


def _check_width(width: int) -> None:
    if not 1 <= width <= 16:
        raise ValueError(f"symbol width must be in 1..16, got {width}")


def bytes_to_symbols(data: bytes, width: int) -> list[int]:
    """Serialize bytes LSB-first into ``width``-bit symbols.

    The final symbol is zero-padded when ``8 * len(data)`` is not a
    multiple of ``width``.

    >>> bytes_to_symbols(b"\\xb4", 2)
    [0, 1, 3, 2]
    """
    _check_width(width)
    symbols = []
    acc = bits = 0
    for byte in data:
        acc |= byte << bits
        bits += 8
        while bits >= width:
            symbols.append(acc & ((1 << width) - 1))
            acc >>= width
            bits -= width
    if bits:
        symbols.append(acc)
    return symbols


def symbols_to_bytes(symbols: list[int], width: int, length: int) -> bytes:
    """Reassemble ``length`` bytes from LSB-first ``width``-bit symbols."""
    _check_width(width)
    acc = bits = 0
    out = bytearray()
    for symbol in symbols:
        acc |= (symbol & ((1 << width) - 1)) << bits
        bits += width
        while bits >= 8 and len(out) < length:
            out.append(acc & 0xFF)
            acc >>= 8
            bits -= 8
    if len(out) < length:
        raise ValueError(
            f"{len(symbols)} symbols of width {width} hold fewer than "
            f"{length} bytes"
        )
    return bytes(out)


def encode_repetition(symbols: list[int], repeat: int) -> list[int]:
    """Repeat every symbol ``repeat`` times (r-fold repetition code)."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    return [symbol for symbol in symbols for _ in range(repeat)]


def decode_repetition(symbols: list[int], repeat: int, width: int) -> list[int]:
    """Bitwise-majority decode of an r-fold repetition stream.

    Each output bit is set when *strictly more* than half its ``repeat``
    copies are set, so an even split (possible for even ``repeat``)
    decodes to 0 — deterministic, and biased toward the channels' idle
    symbol.  A trailing partial group is decoded from the copies present.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    _check_width(width)
    decoded = []
    for start in range(0, len(symbols), repeat):
        group = symbols[start:start + repeat]
        value = 0
        for bit in range(width):
            votes = sum(symbol >> bit & 1 for symbol in group)
            if votes * 2 > len(group):
                value |= 1 << bit
        decoded.append(value)
    return decoded


def preamble_symbols(width: int, length: int = 8) -> list[int]:
    """The sync preamble: ``length`` symbols alternating all-ones/zero.

    The all-ones symbol exercises every bit lane of the channel, so a
    receiver that can read the preamble has demonstrably synchronized
    all ``width`` lanes, not just one.
    """
    _check_width(width)
    ones = (1 << width) - 1
    return [ones if index % 2 == 0 else 0 for index in range(length)]


def frame_symbols(
    payload: list[int], width: int, preamble_len: int = 8, repeat: int = 1
) -> list[int]:
    """Wrap payload symbols in a ``preamble + length + payload`` frame.

    With ``repeat > 1`` the length field *and* payload are protected by
    the repetition code; the preamble stays uncoded (it is the sync
    pattern the decoder aligns on, so it must keep its wire shape) but
    the fuzzy matching in :func:`deframe_symbols` absorbs errors there.
    """
    if len(payload) >= 1 << _LENGTH_BITS:
        raise ValueError(f"payload too long to frame: {len(payload)} symbols")
    length_field = bytes_to_symbols(
        len(payload).to_bytes(_LENGTH_BITS // 8, "little"), width
    )
    body = encode_repetition(length_field + payload, repeat)
    return preamble_symbols(width, preamble_len) + body


def deframe_symbols(
    stream: list[int],
    width: int,
    preamble_len: int = 8,
    repeat: int = 1,
    tolerance: int | None = None,
    resync: bool = False,
) -> list[int]:
    """Locate the first frame in ``stream`` and return its payload.

    Scans for the earliest preamble occurrence (tolerating lead-in
    symbols from before the receiver attached).  The match is fuzzy: a
    window whose first symbol is the all-ones mark and that differs from
    the preamble in at most ``tolerance`` symbols (default a quarter of
    ``preamble_len``) counts — anchoring on the leading mark keeps idle
    zeros from producing an off-by-one false sync.  The body is then
    repetition-decoded (``repeat``) and the length field parsed.  Raises
    :class:`FramingError` when no complete frame exists.

    With ``resync=True`` (the hardened receiver), a sync point whose
    frame fails to parse — a noise window that happened to look like a
    preamble, or a corrupted length field announcing more symbols than
    the stream holds — is abandoned and the scan *continues* at the next
    candidate window instead of giving up, so one unlucky match no
    longer loses a recoverable frame further down the stream.  The
    first parse failure is re-raised only when no later sync point
    yields a frame.
    """
    preamble = preamble_symbols(width, preamble_len)
    if tolerance is None:
        tolerance = preamble_len // 4
    length_symbols = len(bytes_to_symbols(b"\x00" * (_LENGTH_BITS // 8), width))
    ones = (1 << width) - 1
    sync_failure: FramingError | None = None
    for start in range(len(stream) - len(preamble) + 1):
        window = stream[start:start + len(preamble)]
        if window[0] != ones:
            continue
        mismatches = sum(got != want for got, want in zip(window, preamble))
        if mismatches > tolerance:
            continue
        body = decode_repetition(
            stream[start + len(preamble):], repeat, width
        )
        field = body[:length_symbols]
        if len(field) < length_symbols:
            break
        count = int.from_bytes(
            symbols_to_bytes(field, width, _LENGTH_BITS // 8), "little"
        )
        payload = body[length_symbols:length_symbols + count]
        if len(payload) < count:
            error = FramingError(
                f"frame announces {count} payload symbols, "
                f"stream holds {len(payload)}"
            )
            if not resync:
                raise error
            if sync_failure is None:
                sync_failure = error
            registry().counter("attack.resync").inc()
            continue
        return payload
    if sync_failure is not None:
        raise sync_failure
    raise FramingError("no preamble found in the received stream")
