"""SPOILER-style ASLR derandomization through predictor collisions.

The selection hash consumes *physical* instruction addresses: the low
12 bits are the page offset (entering the fold linearly — Vulnerability
2), the rest fold down from the frame number.  Two consequences, both
measured here against a victim whose code region lives in a contiguous
physical frame run at a secret base (the layout a loaded image or a
hugepage/CMA allocation has):

* **Sub-page placement is fully recoverable.**  If a defense
  re-randomizes a secret routine's placement *within* its page
  (function-granular ASLR), one reference routine at a known offset on
  the same page calibrates away the unknown frame hash: the gadget's
  colliding probe offset then reveals the secret placement exactly —
  all 12 page-offset bits, two page scans, no privileges.
* **Physical base bits leak like SPOILER.**  Reference routines at
  known page distances ``d`` give the attacker ``H(B+d) XOR H(B)`` for
  the secret base frame ``B``.  Those differences depend only on the
  carry pattern of ``B + d``, so each distance reveals a few low bits
  of ``B`` — partial physical-address disclosure, exactly SPOILER's
  shape.  The attack tracks the candidate set explicitly and probes
  *predicted* offsets only, so every distance after the first costs a
  handful of probes, not a page scan.

The attacker is a separate unprivileged process: it invokes victim
routines with chosen (aliasing or not) arguments and slides stld probes
through its own pages.  SSBP surviving context switches (Vulnerability
1) is what lets the victim's charge be observed cross-process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.attacks.runtime import AttackerStld
from repro.core.exec_types import TimingClass
from repro.core.hashfn import ipa_hash
from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.errors import ConfigError
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE
from repro.osm.address_space import Perm
from repro.revng.stld import (
    DATA_REG,
    LOAD_ADDR_REG,
    STORE_ADDR_REG,
    build_stld,
    load_instruction_index,
)
from repro.telemetry.metrics import registry

__all__ = ["AslrReport", "AslrDerandomizer"]

_STALL = (TimingClass.STALL_CACHE, TimingClass.STALL_FORWARD)

#: Known in-page offset of the reference routines (part of the victim
#: binary's layout, which the attacker has).
_REF_OFFSET = 64
#: Lowest sub-page placement the randomizer uses: keeps the secret
#: routine clear of the page-0 reference routine.
_SUB_FLOOR = 256


def _frame_hash(frame: int) -> int:
    """Hash contribution of a page frame (page offset zero)."""
    return ipa_hash(frame << PAGE_SHIFT)


@dataclass
class AslrReport:
    """What the probe recovered, scored against ground truth."""

    true_sub_offset: int
    recovered_sub_offset: int | None
    window_bits: int
    candidates_remaining: int
    true_base_in_candidates: bool
    sites_probed: int
    probes: int
    victim_invocations: int
    cycles: int
    clock_ghz: float
    scan_page: int = 0
    distance_hits: list[int] = field(default_factory=list)

    @property
    def sub_page_recovered(self) -> bool:
        return self.recovered_sub_offset == self.true_sub_offset

    @property
    def physical_bits_recovered(self) -> float:
        """Entropy removed from the physical-base window, in bits."""
        if not self.candidates_remaining or not self.true_base_in_candidates:
            return 0.0
        return self.window_bits - math.log2(self.candidates_remaining)

    @property
    def success(self) -> bool:
        return self.sub_page_recovered and self.true_base_in_candidates

    def to_dict(self) -> dict:
        return {
            "true_sub_offset": self.true_sub_offset,
            "recovered_sub_offset": self.recovered_sub_offset,
            "sub_page_recovered": self.sub_page_recovered,
            "window_bits": self.window_bits,
            "candidates_remaining": self.candidates_remaining,
            "true_base_in_candidates": self.true_base_in_candidates,
            "physical_bits_recovered": round(self.physical_bits_recovered, 2),
            "sites_probed": self.sites_probed,
            "probes": self.probes,
            "victim_invocations": self.victim_invocations,
            "cycles": self.cycles,
            "scan_page": self.scan_page,
            "success": self.success,
        }


class AslrDerandomizer:
    """Recovers a randomized victim placement from aliasing collisions.

    The victim's code region is ``region_pages`` pages in a contiguous
    frame run at ``window_base + secret`` (``secret`` uniform over
    ``2**window_bits`` — the randomized allocation under attack); a
    secret routine is additionally placed at a random sub-page offset of
    page 0.  The attacker knows the binary layout (reference offsets,
    distances) and the allocator's window, and nothing about either
    secret.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        window_bits: int = 12,
        window_base: int = 0x80_0000,
        region_pages: int = 40,
        site_distances: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
        slide_pages: int = 3,
    ) -> None:
        if site_distances and max(site_distances) >= region_pages:
            raise ConfigError("site distance beyond the victim region")
        self.machine = machine or Machine(seed=4242)
        self.window_bits = window_bits
        self.window_base = window_base
        self.site_distances = tuple(site_distances)
        kernel = self.machine.kernel
        self.victim_process = kernel.create_process("aslr-victim")
        self.attacker_process = kernel.create_process("aslr-attacker")

        # --- the randomized allocation (ground truth kept for scoring) ---
        rng = kernel.rng
        self.template = build_stld()
        load_index = load_instruction_index(self.template)
        self._load_off = sum(
            instr.size for instr in self.template.instructions[:load_index]
        )
        for _ in range(64):
            secret = rng.randrange(1 << window_bits)
            try:
                self.region_va, self.base_frame = kernel.map_contiguous(
                    self.victim_process,
                    region_pages,
                    perms=Perm.RX,
                    kind="code",
                    base_frame=window_base + secret,
                )
                break
            except ConfigError:
                continue  # run not free at this base: redraw
        else:
            raise ConfigError("could not place the victim window")
        self.true_secret = self.base_frame - window_base
        self.true_sub_offset = rng.randrange(
            _SUB_FLOOR, PAGE_SIZE - self.template.byte_size
        )

        def _site(iva: int) -> Program:
            return self.machine.place_program(
                self.victim_process, self.template.relocate(iva), iva
            )

        self._ref = _site(self.region_va + _REF_OFFSET)
        self._gadget = _site(self.region_va + self.true_sub_offset)
        self._distance_sites = {
            d: _site(self.region_va + d * PAGE_SIZE + _REF_OFFSET)
            for d in self.site_distances
        }
        victim_buf = kernel.map_anonymous(self.victim_process, pages=2)
        self._victim_load_va = victim_buf + 0x100

        # --- the attacker's own probing kit ---
        self.attacker = AttackerStld(
            self.machine, self.attacker_process, slide_pages=slide_pages
        )
        self.probes = 0
        self.victim_invocations = 0

    # ------------------------------------------------------------------
    # The victim service interface: invoke a routine with chosen inputs
    # ------------------------------------------------------------------
    def _run_victim(self, program: Program, aliasing: bool) -> None:
        store = self._victim_load_va if aliasing else self._victim_load_va + 64
        self.machine.run(
            self.victim_process,
            program,
            {
                STORE_ADDR_REG: store,
                LOAD_ADDR_REG: self._victim_load_va,
                DATA_REG: 0xEE,
            },
        )
        self.victim_invocations += 1

    def _charge(self, program: Program) -> None:
        """The (7 non-aliasing, 1 aliasing) x 3 charge, via the service."""
        for _ in range(3):
            for _ in range(7):
                self._run_victim(program, aliasing=False)
            self._run_victim(program, aliasing=True)

    # ------------------------------------------------------------------
    # Probing primitives (attacker-local, one scan page at a time)
    # ------------------------------------------------------------------
    def _probe_at(self, placement: int) -> Program:
        return self.attacker.place_at(self.attacker.slide_base + placement)

    def _sticky_for(self, placement: int, site: Program) -> bool:
        """Stall at ``placement``, attributable to ``site``'s entry.

        A first stall may be residue from an earlier site; drain it,
        recharge *this* site, and demand the stall returns.
        """
        self.probes += 1
        probe = self._probe_at(placement)
        if self.attacker.observe(probe, aliasing=False) not in _STALL:
            return False
        self.attacker.drain_c3(probe)
        self._charge(site)
        return self.attacker.observe(probe, aliasing=False) in _STALL

    def _page_span(self, page: int) -> range:
        base = page * PAGE_SIZE
        return range(base, base + PAGE_SIZE - self.template.byte_size + 1)

    def _full_scan(self, site: Program, page: int) -> int | None:
        """Slide across one attacker page; the colliding placement or None."""
        self._charge(site)
        for placement in self._page_span(page):
            if self._sticky_for(placement, site):
                self.attacker.drain_c3(self._probe_at(placement))
                return placement - page * PAGE_SIZE
        return None

    # ------------------------------------------------------------------
    def recover(self) -> AslrReport:
        """Run the whole derandomization; never raises on a failed probe."""
        thread = self.machine.core.thread(0)
        start = thread.cycles
        outcome = None
        for page in range(self.attacker.slide_pages):
            outcome = self._recover_in_page(page)
            if outcome is not None:
                break
        recovered_sub, candidates, hits, page = outcome or (None, [], [], 0)
        cycles = thread.cycles - start
        report = AslrReport(
            true_sub_offset=self.true_sub_offset,
            recovered_sub_offset=recovered_sub,
            window_bits=self.window_bits,
            candidates_remaining=len(candidates),
            true_base_in_candidates=self.true_secret in candidates,
            sites_probed=2 + len(self.site_distances),
            probes=self.probes,
            victim_invocations=self.victim_invocations,
            cycles=cycles,
            clock_ghz=self.machine.core.model.clock_ghz,
            scan_page=page,
            distance_hits=hits,
        )
        metrics = registry()
        metrics.counter("attack.aslr.probes").inc(self.probes)
        metrics.counter("attack.aslr.recoveries").inc(int(report.success))
        metrics.histogram("attack.aslr.candidates_remaining").observe(
            len(candidates)
        )
        return report

    def _recover_in_page(
        self, page: int
    ) -> tuple[int, list[int], list[int], int] | None:
        """One attempt with all probes in attacker page ``page``.

        Returns None when the reference or gadget collision falls in the
        sliver of offsets this page cannot place a probe at (the routine
        must not straddle into the next page) — the caller retries in
        the next page, whose frame hash shifts every collision offset.
        """
        load_off = self._load_off
        ref_placement = self._full_scan(self._ref, page)
        if ref_placement is None:
            return None
        # Collision equates XORed load offsets with XORed frame hashes:
        # mask = H(F_attacker) ^ H(B), the page-local calibration value.
        mask = (
            (ref_placement + load_off)
            ^ ((_REF_OFFSET + load_off) & 0xFFF)
        ) & 0xFFF
        gadget_placement = self._full_scan(self._gadget, page)
        if gadget_placement is None:
            return None
        # The gadget's load sits at (sub + load_off) by *addition*; undo
        # the XOR mask first, then the addition.
        recovered_sub = (((gadget_placement + load_off) & 0xFFF) ^ mask) - load_off
        candidates = list(range(1 << self.window_bits))
        ref_load = (_REF_OFFSET + load_off) & 0xFFF
        span = self._page_span(page)
        hits: list[int] = []
        for distance, site in self._distance_sites.items():
            predictions: dict[int, list[int]] = {}
            for candidate in candidates:
                base = self.window_base + candidate
                predicted = (
                    mask
                    ^ _frame_hash(base)
                    ^ _frame_hash(base + distance)
                    ^ ref_load
                )
                predictions.setdefault(predicted, []).append(candidate)
            self._charge(site)
            hit = None
            untestable: list[int] = []
            for predicted in sorted(predictions):
                placement = page * PAGE_SIZE + predicted - load_off
                if placement not in span:
                    untestable.extend(predictions[predicted])
                    continue
                if hit is None and self._sticky_for(placement, site):
                    hit = predicted
                    self.attacker.drain_c3(self._probe_at(placement))
            survivors = list(predictions[hit]) if hit is not None else []
            survivors.extend(untestable)
            if not survivors:
                # Nothing testable matched: inconsistent observations.
                return recovered_sub, [], hits, page
            candidates = sorted(survivors)
            hits.append(hit if hit is not None else -1)
        return recovered_sub, candidates, hits, page
