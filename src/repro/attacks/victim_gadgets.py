"""Victim gadgets (paper Listings 2 and 3).

These are the in-victim code patterns the attacks exploit, expressed in
the micro-ISA.  Both follow the paper exactly:

* Spectre-STL gadget (Listing 2)::

      array2[idx * 4096] = x;
      temp = array2[array1[array2[0]] * 4096];

  One store (address delayed through a cache-missing load of ``idx``)
  and three loads: the first receives ``x`` through a mistrained PSF
  forward, the second fetches the secret at ``array1 + x``, the third
  encodes it into a cache line for Flush+Reload.

* Spectre-CTL gadget (Listing 3)::

      array2[idx] = 0;
      temp = array2[array1[array2[idx2]]];

  The first load bypasses the store (mistrained SSBP) and reads the
  *stale* attacker-planted value at ``array2[idx2]``; the second fetches
  the secret; the third races the still-pending store and trains the
  SSBP entry — C3 charges only when ``secret == idx``, the covert channel.
"""

from __future__ import annotations

from repro.cpu.isa import Alu, Halt, ImulImm, Load, Mov, Program, Store

__all__ = [
    "spectre_stl_gadget",
    "spectre_ctl_gadget",
    "STL_REGS",
    "CTL_REGS",
]

#: Register interface of the STL gadget: the attacker controls ``x`` and
#: ``idx_ptr`` (a flushed memory slot holding idx); ``array1``/``array2``
#: are the victim's buffers.
STL_REGS = ("x", "idx_ptr", "array1", "array2")

#: Register interface of the CTL gadget: ``idx_ptr`` (flushed slot
#: holding idx), ``idx2_off`` and the victim's buffers.
CTL_REGS = ("idx_ptr", "idx2_off", "array1", "array2")


def spectre_stl_gadget() -> Program:
    """The Listing 2 victim function.

    The store's address depends on ``idx`` loaded from memory; flushing
    that line delays address generation and opens the window.
    """
    return Program(
        [
            Load("idx", base="idx_ptr"),          # flushed -> slow AGEN
            ImulImm("soff", "idx", 4096),
            Alu("saddr", "array2", "soff", "add"),
            Store(base="saddr", src="x", width=8),     # the delayed store
            Load("t1", base="array2", offset=0),       # load 1: gets x via PSF
            Alu("a1addr", "array1", "t1", "add"),
            Load("t2", base="a1addr", width=1),        # load 2: the secret
            ImulImm("enc", "t2", 4096),
            Alu("eaddr", "array2", "enc", "add"),
            Load("t3", base="eaddr"),                  # load 3: cache-encode
            Halt(),
        ],
        name="victim-stl",
    )


def spectre_ctl_gadget() -> Program:
    """The Listing 3 victim function.

    The first load is pointer-wide (it carries the planted secret
    address, as in the paper's WebAssembly variant where
    ``spectreArgs[0]`` holds a full address); the second and third are
    byte-wide index chasing.  The covert channel is the third load's
    race against the pending store.
    """
    return Program(
        [
            Load("idx", base="idx_ptr"),               # flushed -> slow AGEN
            Alu("saddr", "array2", "idx", "add"),
            Mov("zero", "nil"),
            Store(base="saddr", src="zero", width=1),  # the delayed store
            Alu("laddr", "array2", "idx2_off", "add"),
            Load("t1", base="laddr", width=8),         # load 1: stale pointer
            Alu("a1addr", "array1", "t1", "add"),
            Load("t2", base="a1addr", width=1),        # load 2: the secret
            Alu("eaddr", "array2", "t2", "add"),
            Load("t3", base="eaddr", width=1),         # load 3: covert update
            Halt(),
        ],
        name="victim-ctl",
    )
