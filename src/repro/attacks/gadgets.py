"""Backwards-compatible alias for :mod:`repro.attacks.victim_gadgets`.

The module was renamed when the static analyzer arrived: this package's
gadget *builders* (the paper's Listing 2/3 victim programs) and the
scanner's gadget *detector* (:mod:`repro.static.gadgets`) are different
things that must not share a dotted name.  ``from repro.attacks import
gadgets`` keeps working through this shim; new code should import
:mod:`repro.attacks.victim_gadgets` directly.
"""

from repro.attacks.victim_gadgets import (  # noqa: F401
    CTL_REGS,
    STL_REGS,
    spectre_ctl_gadget,
    spectre_stl_gadget,
)

__all__ = [
    "spectre_stl_gadget",
    "spectre_ctl_gadget",
    "STL_REGS",
    "CTL_REGS",
]
