"""Spectre-CTL in a web browser (paper Section V-C.2).

The paper ports the attack into Chrome 86 via WebAssembly: the stld
becomes a wasm store-load pair, the timer is a hand-built ~10 ns counter,
and ``clflush`` is unavailable (an Evict+Reload-style eviction set delays
the store's address input instead).  The SSBP side channel replaces the
usual cache covert channel.

We model the three browser constraints explicitly:

* :class:`BrowserTimer` — quantizes readings to 10 ns ticks and
  occasionally jitters by a whole tick (interrupts, clamping), which is
  why the browser attack verifies covert hits before accepting them;
* eviction-set flushing that only *probabilistically* removes the
  victim's ``idx`` line (a timing-built eviction set is imperfect) —
  missed evictions close the transient window and cost accuracy;
* everything else (collision sliding, draining, probing) is the native
  attack unchanged, because SSBP state is observable with any timer that
  separates a stall from a bypass (~12 ns at 3.7 GHz).

The paper reports ~170 B/s at 81.1% accuracy — markedly below the native
attack; the same ordering (web < native, web accuracy < native accuracy)
emerges here from the modeled constraints.
"""

from __future__ import annotations

from repro.attacks.runtime import AttackerStld
from repro.attacks.spectre_ctl import SpectreCTL
from repro.cpu.machine import Machine
from repro.osm.domains import SecurityDomain

__all__ = ["BrowserTimer", "SpectreCTLWeb"]


class BrowserTimer:
    """A ~10 ns resolution timer with occasional whole-tick jitter."""

    def __init__(
        self,
        machine: Machine,
        resolution_ns: float = 10.0,
        double_tick_prob: float = 0.02,
    ) -> None:
        self.tick_cycles = max(
            1, round(resolution_ns * machine.core.model.clock_ghz)
        )
        self.double_tick_prob = double_tick_prob
        self._rng = machine.core.rng

    def __call__(self, cycles: int) -> int:
        ticks = round(cycles / self.tick_cycles)
        if self._rng.random() < self.double_tick_prob:
            ticks += self._rng.choice((-2, 2))
        return max(0, ticks) * self.tick_cycles


class SpectreCTLWeb(SpectreCTL):
    """The browser port: coarse timer, eviction sets, verified hits."""

    def __init__(
        self,
        machine: Machine | None = None,
        victim_domain: SecurityDomain = SecurityDomain.USER,
        slide_pages: int = 16,
        resolution_ns: float = 10.0,
        evict_success: float = 0.85,
        double_tick_prob: float = 0.02,
    ) -> None:
        self._machine_for_timer = machine or Machine(seed=2077)
        self._timer = BrowserTimer(
            self._machine_for_timer,
            resolution_ns=resolution_ns,
            double_tick_prob=double_tick_prob,
        )
        #: Probability that one eviction-set traversal actually removes
        #: the idx line from the whole hierarchy (DESIGN.md substitution:
        #: stands in for a timing-built, hence imperfect, eviction set).
        self.evict_success = evict_success
        super().__init__(
            machine=self._machine_for_timer,
            victim_domain=victim_domain,
            slide_pages=slide_pages,
        )
        # A coarse timer can misread H as F; demand one confirmation of
        # covert hits and longer verification during sliding, and charge
        # longer because eviction-set traversals miss some windows.
        self.verify_hits = 1
        self.charge_runs = 9
        self.collision_verify_runs = 4

    def _create_attacker(self, slide_pages: int) -> AttackerStld:
        attacker = AttackerStld(
            self.machine,
            self.attacker_process,
            slide_pages=slide_pages,
            timer=self._timer,
        )
        attacker.drain_confirmations = 2  # survive single-tick misreads
        return attacker

    def _flush_idx(self) -> None:
        """Eviction-set traversal instead of clflush: succeeds with
        probability ``evict_success``; a miss leaves the idx line cached
        and the next window never opens (a wasted trial)."""
        if self.machine.core.rng.random() < self.evict_success:
            super()._flush_idx()
