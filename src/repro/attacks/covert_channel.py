"""A cross-process covert channel built from SSBP alone (Vulnerability 4).

The paper observes that because SSBP survives context switches and can
be updated (even transiently) by one party and probed by another, it
forms a covert channel needing **no shared memory and no cache lines**:

* handshake — the receiver code-slides until one of its stld placements
  collides with the sender's transmit stld (at most 4096 attempts);
* send — for a 1-bit the sender charges the entry's C3 (the ``(7n, a)``
  pattern); for a 0-bit it idles for a comparable time on a decoy stld;
* receive — the receiver probes its colliding stld once: a stall is a 1
  (then drains), a bypass is a 0.

Scheduling alternates the two processes on one hardware thread; every
switch flushes PSFP, which the channel never relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.collision import SsbpCollisionFinder
from repro.attacks.runtime import AttackerStld
from repro.core.exec_types import TimingClass
from repro.cpu.machine import Machine

__all__ = ["ChannelReport", "SsbpCovertChannel"]

_STALL = (TimingClass.STALL_CACHE, TimingClass.STALL_FORWARD)


@dataclass
class ChannelReport:
    """Outcome of one transmission."""

    sent: list[int]
    received: list[int]
    cycles: int
    clock_ghz: float

    @property
    def errors(self) -> int:
        return sum(a != b for a, b in zip(self.sent, self.received))

    @property
    def error_rate(self) -> float:
        return self.errors / len(self.sent) if self.sent else 0.0

    @property
    def bits_per_second(self) -> float:
        seconds = self.cycles / (self.clock_ghz * 1e9)
        return len(self.sent) / seconds if seconds else float("inf")


class SsbpCovertChannel:
    """Two cooperating processes with no shared mappings whatsoever."""

    def __init__(self, machine: Machine | None = None, slide_pages: int = 8) -> None:
        self.machine = machine or Machine(seed=1234)
        kernel = self.machine.kernel
        self.sender_process = kernel.create_process("covert-sender")
        self.receiver_process = kernel.create_process("covert-receiver")
        self.sender = AttackerStld(self.machine, self.sender_process, slide_pages=2)
        self.receiver = AttackerStld(
            self.machine, self.receiver_process, slide_pages=slide_pages
        )
        #: The sender transmits through this stld; a second placement
        #: serves as the 0-bit decoy (comparable timing, different entry).
        self.tx_program = self.sender.place_at(self.sender.slide_base + 512)
        self.decoy_program = self.sender.place_at(self.sender.slide_base + 1536)
        self.rx_program = None
        self.handshake_attempts = 0

    # ------------------------------------------------------------------
    def handshake(self) -> int:
        """Receiver slides until it collides with the sender's entry."""
        finder = SsbpCollisionFinder(
            self.receiver, recharge=lambda: self.sender.charge_c3(self.tx_program)
        )
        found = finder.find()
        self.rx_program = found.program
        self.handshake_attempts = found.attempts
        # Clear the handshake residue.
        self.receiver.drain_c3(self.rx_program)
        return found.attempts

    # ------------------------------------------------------------------
    def _send_bit(self, bit: int) -> None:
        if bit:
            self.sender.charge_c3(self.tx_program)
        else:
            # Keep per-bit timing comparable without touching the entry.
            self.sender.charge_c3(self.decoy_program)

    def _receive_bit(self) -> int:
        assert self.rx_program is not None, "handshake first"
        observed = self.receiver.observe(self.rx_program, aliasing=False)
        if observed in _STALL:
            self.receiver.drain_c3(self.rx_program)
            return 1
        return 0

    def transmit(self, bits: list[int]) -> ChannelReport:
        """Send a bit string; returns what the receiver decoded."""
        if self.rx_program is None:
            self.handshake()
        start = self.machine.core.thread(0).cycles
        received = []
        for bit in bits:
            self._send_bit(bit)
            received.append(self._receive_bit())
        cycles = self.machine.core.thread(0).cycles - start
        return ChannelReport(
            sent=list(bits),
            received=received,
            cycles=cycles,
            clock_ghz=self.machine.core.model.clock_ghz,
        )
