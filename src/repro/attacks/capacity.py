"""Capacity / error-rate measurement for the covert channels.

One measurement sends a seeded payload through a transport with a given
symbol width and repetition factor, framed by the sync preamble, and
reports both the *raw* symbol error rate on the wire and the *corrected*
byte error rate after repetition decode — plus throughput in simulated
cycles, converted to bits/s at the modeled clock (the same convention
the Section V experiments use).

The sent stream is known in-simulation, so raw errors are measured
positionally; a real attacker sees only the corrected payload, which is
exactly what the corrected columns report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks import coding
from repro.attacks.channels import (
    CacheLineChannel,
    NoisyChannel,
    StlPredictorChannel,
    SymbolChannel,
)
from repro.cpu.machine import Machine
from repro.errors import AttackError
from repro.interference import InterferenceModel, get_profile
from repro.telemetry.metrics import registry

__all__ = [
    "CHANNEL_KINDS",
    "CapacityConfig",
    "CapacityReport",
    "build_channel",
    "measure_capacity",
    "sweep",
]

#: Transport kinds ``build_channel`` understands.
CHANNEL_KINDS = ("stl", "cache")

#: Idle lead-in symbols prepended to every transmission: the receiver
#: demonstrably acquires sync from the preamble, not from counting.
_LEAD_SYMBOLS = 3


@dataclass(frozen=True)
class CapacityConfig:
    """One point in the capacity sweep."""

    channel: str = "stl"
    width: int = 2
    repeat: int = 1
    payload_bytes: int = 8
    noise: float = 0.0
    seed: int = 7
    preamble_len: int = 8
    #: Interference preset attached to the transport's machine (None =
    #: the historical quiet machine, byte-identical to older configs).
    interference: str | None = None
    #: Hardened receiver: resynchronize after a failed sync point
    #: instead of abandoning the stream (see ``coding.deframe_symbols``).
    resync: bool = False


@dataclass
class CapacityReport:
    """Measured outcome of one configuration."""

    config: CapacityConfig
    symbols_on_wire: int
    raw_symbol_errors: int
    corrected_byte_errors: int
    framing_failed: bool
    cycles: int
    clock_ghz: float
    handshake_attempts: list[int] = field(default_factory=list)
    #: Transport-level failure (e.g. the handshake died under
    #: interference); the report is then all-lost but still structured.
    failure: str | None = None

    @property
    def raw_symbol_error_rate(self) -> float:
        """Positional error rate on the wire; 0.0 on an empty wire (a
        fully-jammed transmission is reported through ``all_lost`` and
        the byte-error columns, not a division error)."""
        if not self.symbols_on_wire:
            return 0.0
        return self.raw_symbol_errors / self.symbols_on_wire

    @property
    def corrected_byte_error_rate(self) -> float:
        if not self.config.payload_bytes:
            return 0.0
        return self.corrected_byte_errors / self.config.payload_bytes

    @property
    def _seconds(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def gross_bits_per_second(self) -> float:
        """Wire throughput: every transmitted symbol bit counts.  Zero
        elapsed cycles means nothing measurably moved — reported as 0.0
        (finite and JSON-safe), not infinity."""
        bits = self.symbols_on_wire * self.config.width
        return bits / self._seconds if self._seconds else 0.0

    @property
    def goodput_bits_per_second(self) -> float:
        """Correct payload bits delivered per second (after decode)."""
        good = self.config.payload_bytes - self.corrected_byte_errors
        return good * 8 / self._seconds if self._seconds else 0.0

    @property
    def recovered_bytes(self) -> int:
        """The partial result: payload bytes that survived decode."""
        return self.config.payload_bytes - self.corrected_byte_errors

    @property
    def all_lost(self) -> bool:
        """True when nothing of the payload got through — the structured
        outcome a fully-jammed channel reports."""
        return self.recovered_bytes == 0

    @property
    def confidence(self) -> float:
        """Wire-quality confidence in [0, 1]: how much of the stream
        arrived positionally intact (0.0 for a dead transport)."""
        if not self.symbols_on_wire or self.failure is not None:
            return 0.0
        return max(0.0, 1.0 - self.raw_symbol_error_rate)

    def to_dict(self) -> dict:
        return {
            "channel": self.config.channel,
            "width": self.config.width,
            "repeat": self.config.repeat,
            "payload_bytes": self.config.payload_bytes,
            "noise": self.config.noise,
            "seed": self.config.seed,
            "interference": self.config.interference,
            "resync": self.config.resync,
            "symbols_on_wire": self.symbols_on_wire,
            "raw_symbol_errors": self.raw_symbol_errors,
            "raw_symbol_error_rate": round(self.raw_symbol_error_rate, 6),
            "corrected_byte_errors": self.corrected_byte_errors,
            "corrected_byte_error_rate": round(self.corrected_byte_error_rate, 6),
            "recovered_bytes": self.recovered_bytes,
            "all_lost": self.all_lost,
            "confidence": round(self.confidence, 6),
            "framing_failed": self.framing_failed,
            "failure": self.failure,
            "cycles": self.cycles,
            "gross_bits_per_second": round(self.gross_bits_per_second, 1),
            "goodput_bits_per_second": round(self.goodput_bits_per_second, 1),
            "handshake_attempts": self.handshake_attempts,
        }


def build_channel(config: CapacityConfig) -> SymbolChannel:
    """Construct the configured transport on a fresh seeded machine."""
    machine = Machine(seed=config.seed)
    if config.interference is not None:
        InterferenceModel(
            get_profile(config.interference, seed=config.seed)
        ).attach(machine)
    if config.channel == "stl":
        channel: SymbolChannel = StlPredictorChannel(machine, width=config.width)
    elif config.channel == "cache":
        channel = CacheLineChannel(machine, width=config.width)
    else:
        raise ValueError(
            f"unknown channel kind {config.channel!r} (know {CHANNEL_KINDS})"
        )
    if config.noise:
        channel = NoisyChannel(channel, config.noise, seed=config.seed)
    return channel


def measure_capacity(
    config: CapacityConfig, channel: SymbolChannel | None = None
) -> CapacityReport:
    """Send one framed seeded payload and measure both error rates."""
    import random

    channel = channel if channel is not None else build_channel(config)
    payload = bytes(
        random.Random(config.seed).randrange(256)
        for _ in range(config.payload_bytes)
    )
    symbols = coding.bytes_to_symbols(payload, config.width)
    framed = coding.frame_symbols(
        symbols, config.width, config.preamble_len, config.repeat
    )
    stream = [0] * _LEAD_SYMBOLS + framed

    thread = channel.machine.core.thread(0)
    start = thread.cycles
    failure = None
    try:
        received = channel.transfer(stream)
    except AttackError as exc:
        # The transport itself died (e.g. the lane handshake could not
        # validate under interference): a structured all-lost report.
        received = []
        failure = f"{type(exc).__name__}: {exc}"
    cycles = thread.cycles - start

    raw_errors = sum(a != b for a, b in zip(stream, received))
    framing_failed = failure is not None
    byte_errors = config.payload_bytes
    if failure is None:
        try:
            decoded = coding.deframe_symbols(
                received,
                config.width,
                config.preamble_len,
                config.repeat,
                resync=config.resync,
            )
            recovered = coding.symbols_to_bytes(
                decoded, config.width, config.payload_bytes
            )
            byte_errors = sum(a != b for a, b in zip(recovered, payload))
        except (coding.FramingError, ValueError):
            framing_failed = True
    registry().counter("attack.capacity.symbols").inc(len(stream))
    registry().counter("attack.capacity.raw_errors").inc(raw_errors)
    registry().counter("attack.capacity.byte_errors").inc(byte_errors)
    report = CapacityReport(
        config=config,
        symbols_on_wire=len(stream),
        raw_symbol_errors=raw_errors,
        corrected_byte_errors=byte_errors,
        framing_failed=framing_failed,
        cycles=cycles,
        clock_ghz=channel.machine.core.model.clock_ghz,
        handshake_attempts=list(getattr(channel, "handshake_attempts", []) or
                                getattr(getattr(channel, "inner", None),
                                        "handshake_attempts", [])),
        failure=failure,
    )
    if report.all_lost:
        registry().counter("attack.degraded").inc()
    return report


def sweep(configs: list[CapacityConfig]) -> list[CapacityReport]:
    """Measure every configuration (fresh machine each, deterministic)."""
    return [measure_capacity(config) for config in configs]
