"""SSBP process fingerprinting (paper Section V-D, Fig 11).

Because SSBP is not flushed on context switches, the C3 residue a victim
leaves behind encodes its control flow.  The paper's attacker:

1. shares a core with the victim, sleeping to yield the CPU;
2. each round, traverses SSBP entries by code sliding and reads every
   C3 value (the F-run length of non-aliasing probes);
3. aggregates the relative frequency of each C3 value in 1..35 into a
   fingerprint vector;
4. classifies vectors with an SVM — >95.5% accuracy over six CNN models.

Our attacker probes a fixed sample of slide offsets rather than all 4096
hash values (a documented scaling; the signature is a distribution, so a
uniform sample preserves it).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import frequency_vector
from repro.attacks.runtime import AttackerStld
from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.revng.stld import build_stld
from repro.workloads.cnn import CnnModel, CnnVictim

__all__ = ["SsbpFingerprinter", "collect_dataset"]


class SsbpFingerprinter:
    """Collects SSBP C3-distribution fingerprints of a co-located victim."""

    def __init__(
        self,
        machine: Machine,
        probe_count: int = 4096,
        slide_pages: int = 4,
    ) -> None:
        self.machine = machine
        self.process = machine.kernel.create_process("fingerprinter")
        # A short stld keeps the 4096-probe walk affordable; its timing
        # classes are narrower but still separable under the RDPRU noise.
        self.attacker = AttackerStld(
            machine,
            self.process,
            slide_pages=slide_pages,
            template=build_stld(agen_imuls=6, consumer_imuls=4),
        )
        #: One probe per byte offset of a page: the load IPA's page
        #: offset enters the hash linearly, so a full page of sliding
        #: visits every one of the 4096 SSBP selector values (the
        #: paper's "traverse the entire space of SSBP entries").
        self.probes: list[Program] = [
            self.attacker.place_at(self.attacker.slide_base + offset)
            for offset in range(min(probe_count, 4096))
        ]

    def probe_round(self) -> list[int]:
        """Read C3 of every sampled entry (destructive, like the paper)."""
        return [self.attacker.drain_c3(probe) for probe in self.probes]

    def fingerprint(self, victim: CnnVictim, rounds: int = 12) -> list[float]:
        """Interleave victim inference with probe rounds; aggregate the
        C3-value frequency vector (values 1..35)."""
        values: list[int] = []
        for _ in range(rounds):
            victim.inference_pass()
            # The paper's probe yields the CPU with sleep(); scheduling
            # back and forth happens implicitly in probe_round's runs.
            values.extend(self.probe_round())
        return frequency_vector(values)


def collect_dataset(
    models: dict[str, CnnModel],
    samples_per_model: int = 6,
    rounds: int = 8,
    probe_count: int = 4096,
    seed: int = 7,
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Fingerprints for each model: (features, labels, label_names).

    Every sample uses a fresh machine (fresh physical layout), so the
    classifier must rely on the *distributional* signature, not on
    incidental hash placement.
    """
    names = list(models)
    features: list[list[float]] = []
    labels: list[int] = []
    for label, name in enumerate(names):
        for sample in range(samples_per_model):
            machine = Machine(seed=seed + 1009 * label + sample)
            victim = CnnVictim(machine, models[name])
            fingerprinter = SsbpFingerprinter(machine, probe_count=probe_count)
            vector = fingerprinter.fingerprint(victim, rounds=rounds)
            features.append(vector)
            labels.append(label)
    return np.array(features), np.array(labels), names
