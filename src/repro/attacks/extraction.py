"""End-to-end Spectre-STL secret extraction, evaluated per mitigation.

This is the exploitation capstone of Section V-B: a victim process owns
a secret buffer; the attacker mistrains the store-to-load predictors
through a validated hash collision (:class:`~repro.attacks.spectre_stl.
SpectreSTL`) and transmits out-of-bounds bytes through the cache
channel, optionally reading each byte several times and taking a
plurality vote (the redundancy knob of :mod:`repro.attacks.coding`
applied to extraction).

The same campaign runs under each mitigation, giving the measured
degradation story the paper's Section VI argues qualitatively:

* ``none`` — full recovery, one victim run per byte read;
* ``ssbd`` — speculative store bypass disable pins every load behind
  its stores: the timing classes the attacker calibrated collapse, the
  trivially "sticky" probes never validate, and the attack dies in the
  collision phase;
* ``fence`` — an mfence after every victim store closes the transient
  window *and* starves the predictors (no aliasing events, nothing to
  charge): the sliding scan burns its whole budget without one hit.

Failures are measurements, not errors: a failed campaign reports zero
accuracy plus the cycles the attacker wasted, which is exactly the
cycles-per-byte inflation the mitigation buys.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.attacks.spectre_stl import SpectreSTL
from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.errors import AttackError, CollisionNotFound, ReproError
from repro.fuzz.harness import MITIGATIONS
from repro.interference import InterferenceModel, InterferenceProfile, get_profile
from repro.mitigations.fences import fence_after_stores
from repro.attacks.victim_gadgets import spectre_stl_gadget
from repro.telemetry.metrics import registry

__all__ = ["ExtractionReport", "SecretExtraction", "run_suite"]

#: Sliding-scan give-up budget (probe attempts per candidate scan).  A
#: page holds exactly one colliding offset, but successive scans resume
#: just past the previous hit, so the next hit can sit almost two pages
#: away; ~8500 covers that worst case plus slack.  Against a fenced
#: victim the whole budget is wasted — that cost is part of the
#: measurement.
DEFAULT_COLLISION_BUDGET = 8500


@dataclass
class ExtractionReport:
    """Measured outcome of one extraction campaign."""

    mitigation: str
    expected: bytes
    recovered: bytes
    cycles: int
    clock_ghz: float
    redundancy: int
    validation_attempts: int
    failure: str | None = None
    #: Which interference preset was attached (None = unattached, the
    #: historical quiet machine).
    interference: str | None = None
    #: Whether the hardened protocols were allowed to engage.
    hardened: bool = True
    #: Calibrated per-byte confidence, aligned with ``recovered``.
    byte_confidence: list[float] = field(default_factory=list)
    #: Failed leak rounds that were retried (hardened path only).
    retries: int = 0
    #: Mid-campaign recalibrations triggered by confidence collapse.
    recalibrations: int = 0

    #: Bytes at or above this confidence count as confidently recovered.
    CONFIDENCE_FLOOR = 0.5

    @property
    def accuracy(self) -> float:
        if not self.expected:
            return 1.0
        good = sum(a == b for a, b in zip(self.recovered, self.expected))
        return good / len(self.expected)

    @property
    def byte_errors(self) -> int:
        return len(self.expected) - round(self.accuracy * len(self.expected))

    @property
    def cycles_per_byte(self) -> float:
        return self.cycles / len(self.expected) if self.expected else 0.0

    @property
    def bytes_per_second(self) -> float:
        seconds = self.cycles / (self.clock_ghz * 1e9)
        if not seconds:
            return float("inf")
        good = round(self.accuracy * len(self.expected))
        return good / seconds

    @property
    def mean_confidence(self) -> float:
        if not self.byte_confidence:
            return 0.0
        return sum(self.byte_confidence) / len(self.byte_confidence)

    @property
    def low_confidence_bytes(self) -> int:
        """Bytes flagged below the confidence floor — the "2 low-
        confidence" part of a "14/16 bytes, 2 low-confidence" report."""
        return sum(1 for c in self.byte_confidence if c < self.CONFIDENCE_FLOOR)

    @property
    def confident_bytes(self) -> int:
        """The partial-result size: bytes recovered with confidence."""
        return len(self.byte_confidence) - self.low_confidence_bytes

    @property
    def degraded(self) -> bool:
        """True when the campaign completed but had to flag bytes as
        low-confidence — a partial result rather than a clean one."""
        return self.failure is None and self.low_confidence_bytes > 0

    def to_dict(self) -> dict:
        return {
            "mitigation": self.mitigation,
            "secret_bytes": len(self.expected),
            "recovered_hex": self.recovered.hex(),
            "expected_hex": self.expected.hex(),
            "accuracy": round(self.accuracy, 6),
            "byte_errors": self.byte_errors,
            "cycles": self.cycles,
            "cycles_per_byte": round(self.cycles_per_byte, 1),
            "bytes_per_second": round(self.bytes_per_second, 1),
            "redundancy": self.redundancy,
            "validation_attempts": self.validation_attempts,
            "failure": self.failure,
            "interference": self.interference,
            "hardened": self.hardened,
            "byte_confidence": [round(c, 4) for c in self.byte_confidence],
            "mean_confidence": round(self.mean_confidence, 4),
            "low_confidence_bytes": self.low_confidence_bytes,
            "confident_bytes": self.confident_bytes,
            "degraded": self.degraded,
            "retries": self.retries,
            "recalibrations": self.recalibrations,
        }


class SecretExtraction:
    """One seeded extraction campaign under one mitigation."""

    #: Extra leak rounds the hardened path may spend per byte beyond
    #: ``redundancy`` (bounded retry).
    MAX_RETRIES = 4
    #: Cap on the exponential backoff between retries (syscalls idled).
    BACKOFF_CAP = 4
    #: Consecutive low-confidence bytes that trigger a recalibration.
    RECALIBRATE_AFTER = 2

    def __init__(
        self,
        seed: int = 2024,
        mitigation: str = "none",
        slide_pages: int = 16,
        redundancy: int = 1,
        collision_budget: int | None = DEFAULT_COLLISION_BUDGET,
        interference: InterferenceProfile | str | None = None,
        hardened: bool = True,
    ) -> None:
        if mitigation not in MITIGATIONS:
            raise ValueError(
                f"unknown mitigation {mitigation!r} (know {MITIGATIONS})"
            )
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.mitigation = mitigation
        self.redundancy = redundancy
        self.collision_budget = collision_budget
        self.hardened = hardened
        self.machine = Machine(seed=seed)
        profile: InterferenceProfile | None
        if isinstance(interference, str):
            # Preset by name: re-seed it from the campaign seed so the
            # disturbance schedule varies with the campaign like every
            # other seeded component.
            profile = get_profile(interference, seed=seed)
        else:
            profile = interference
        self.interference_profile = profile
        self.interference_model: InterferenceModel | None = None
        if profile is not None:
            self.interference_model = InterferenceModel(profile).attach(self.machine)
        gadget: Program | None = None
        if mitigation == "fence":
            gadget = Program(
                fence_after_stores(spectre_stl_gadget().instructions),
                name="stl-gadget-fenced",
            )
        self.attack = SpectreSTL(
            machine=self.machine,
            slide_pages=slide_pages,
            gadget=gadget,
            hardened=hardened,
        )
        if mitigation == "ssbd":
            # Machine-wide SSBD, enabled after the attacker calibrated
            # its timing classifier — the most attacker-favorable
            # ordering, and the attack still collapses.
            self.machine.core.set_ssbd(True)
        self.retries = 0
        self.recalibrations = 0
        self._low_confidence_streak = 0

    @property
    def _robust(self) -> bool:
        """The hardened per-byte loop engages only when there is noise
        to harden against; on a quiet machine the historical protocol
        runs unchanged (byte-identical to the pre-interference stack)."""
        return self.hardened and self.attack.attacker.robust_active()

    def _read_byte(self, offset: int, candidate) -> tuple[int, float]:
        """One secret byte plus its confidence.

        Quiet path: ``redundancy`` channel reads, plurality vote — ties
        and all-failed rounds resolve deterministically (smallest byte
        value; 0 for no reads), the decode bias is part of the attack,
        not hidden randomness.  Confidence is the winner's share of the
        successful reads.

        Hardened path: confidence-weighted voting with bounded retries
        and deterministic capped backoff (see :meth:`_backoff`); reads
        continue until the winner is corroborated (two agreeing reads,
        or one read at or above the confidence floor) or the retry
        budget is spent.
        """
        if not self._robust:
            reads = []
            for _ in range(self.redundancy):
                byte = self.attack.leak_byte(offset, candidate)
                if byte is None and self.redundancy == 1:
                    byte = self.attack.leak_byte(offset, candidate)  # single retry
                if byte is not None:
                    reads.append(byte)
            if not reads:
                return 0, 0.0
            best = max(Counter(reads).items(), key=lambda item: (item[1], -item[0]))
            return best[0], best[1] / len(reads)
        return self._read_byte_hardened(offset, candidate)

    def _read_byte_hardened(self, offset: int, candidate) -> tuple[int, float]:
        floor = ExtractionReport.CONFIDENCE_FLOOR
        budget = self.redundancy + self.MAX_RETRIES
        reads: list[tuple[int, float]] = []
        attempts = 0
        failures = 0
        while attempts < budget:
            attempts += 1
            byte, confidence = self.attack.leak_byte_scored(offset, candidate)
            if byte is None:
                failures += 1
                if attempts < budget:
                    self.retries += 1
                    registry().counter("attack.retry").inc()
                    self._backoff(failures)
                continue
            reads.append((byte, confidence))
            if len(reads) < self.redundancy:
                continue
            winner, total = self._tally(reads)
            support = sum(1 for b, _ in reads if b == winner)
            mean = total / support
            if support >= max(self.redundancy, 2) or mean >= floor:
                break
            if attempts < budget:
                self.retries += 1
                registry().counter("attack.retry").inc()
        if not reads:
            return 0, 0.0
        winner, total = self._tally(reads)
        # Confidence is the winner's evidence averaged over *attempts*:
        # failed and dissenting rounds dilute it.
        return winner, min(1.0, total / attempts)

    @staticmethod
    def _tally(reads: list[tuple[int, float]]) -> tuple[int, float]:
        """Confidence-weighted plurality; ties resolve to the smallest
        byte value (the same deterministic bias as the quiet path)."""
        totals: dict[int, float] = {}
        for byte, confidence in reads:
            totals[byte] = totals.get(byte, 0.0) + confidence
        return min(totals.items(), key=lambda item: (-item[1], item[0]))

    def _backoff(self, failures: int) -> None:
        """Deterministic capped exponential backoff between retries.

        Idling is modeled as kernel round-trips: each one burns cycles
        *and* flushes PSFP, clearing whatever poisoned predictor state
        made the read fail — which is why backing off helps at all.
        """
        rounds = min(2 ** (failures - 1), self.BACKOFF_CAP)
        for _ in range(rounds):
            self.machine.kernel.syscall(self.attack.process)

    def _maybe_recalibrate(self, confidence: float) -> None:
        """Drift response: a streak of low-confidence bytes means the
        calibrated centroids/thresholds no longer match the clock."""
        if confidence >= ExtractionReport.CONFIDENCE_FLOOR:
            self._low_confidence_streak = 0
            return
        self._low_confidence_streak += 1
        if self._low_confidence_streak >= self.RECALIBRATE_AFTER:
            self.attack.recalibrate()
            self.recalibrations += 1
            registry().counter("attack.recalibrations").inc()
            self._low_confidence_streak = 0

    def run(self, secret: bytes) -> ExtractionReport:
        """Plant ``secret`` in the victim and run the whole campaign."""
        if not secret:
            raise ValueError("refusing to extract an empty secret")
        machine = self.machine
        machine.kernel.write(self.attack.process, self.attack.secret_va, secret)
        thread = machine.core.thread(0)
        start = thread.cycles
        failure = None
        recovered = b"\x00" * len(secret)
        confidence = [0.0] * len(secret)
        try:
            candidate = self.attack.find_collision(
                max_attempts=self.collision_budget
            )
            out = bytearray()
            for index in range(len(secret)):
                offset = self.attack.secret_va + index - self.attack.array1
                byte, byte_confidence = self._read_byte(offset, candidate)
                out.append(byte)
                confidence[index] = byte_confidence
                if self._robust:
                    self._maybe_recalibrate(byte_confidence)
            recovered = bytes(out)
        except (AttackError, CollisionNotFound, ReproError) as exc:
            failure = f"{type(exc).__name__}: {exc}"
        cycles = thread.cycles - start
        report = ExtractionReport(
            mitigation=self.mitigation,
            expected=secret,
            recovered=recovered,
            cycles=cycles,
            clock_ghz=machine.core.model.clock_ghz,
            redundancy=self.redundancy,
            validation_attempts=self.attack.validation_attempts,
            failure=failure,
            interference=(
                self.interference_profile.name
                if self.interference_profile is not None
                else None
            ),
            hardened=self.hardened,
            byte_confidence=confidence,
            retries=self.retries,
            recalibrations=self.recalibrations,
        )
        metrics = registry()
        metrics.counter("attack.extract.bytes").inc(len(secret))
        metrics.counter("attack.extract.byte_errors").inc(report.byte_errors)
        metrics.counter(f"attack.extract.campaigns.{self.mitigation}").inc()
        metrics.histogram("attack.extract.cycles_per_byte").observe(
            round(report.cycles_per_byte)
        )
        if report.degraded:
            metrics.counter("attack.degraded").inc()
        return report


def run_suite(
    secret: bytes,
    seed: int = 2024,
    mitigations: tuple[str, ...] = MITIGATIONS,
    slide_pages: int = 16,
    redundancy: int = 1,
    collision_budget: int | None = DEFAULT_COLLISION_BUDGET,
    interference: InterferenceProfile | str | None = None,
    hardened: bool = True,
) -> list[ExtractionReport]:
    """The same seeded campaign under each mitigation, fresh machine each."""
    return [
        SecretExtraction(
            seed=seed,
            mitigation=mitigation,
            slide_pages=slide_pages,
            redundancy=redundancy,
            collision_budget=collision_budget,
            interference=interference,
            hardened=hardened,
        ).run(secret)
        for mitigation in mitigations
    ]
