"""End-to-end Spectre-STL secret extraction, evaluated per mitigation.

This is the exploitation capstone of Section V-B: a victim process owns
a secret buffer; the attacker mistrains the store-to-load predictors
through a validated hash collision (:class:`~repro.attacks.spectre_stl.
SpectreSTL`) and transmits out-of-bounds bytes through the cache
channel, optionally reading each byte several times and taking a
plurality vote (the redundancy knob of :mod:`repro.attacks.coding`
applied to extraction).

The same campaign runs under each mitigation, giving the measured
degradation story the paper's Section VI argues qualitatively:

* ``none`` — full recovery, one victim run per byte read;
* ``ssbd`` — speculative store bypass disable pins every load behind
  its stores: the timing classes the attacker calibrated collapse, the
  trivially "sticky" probes never validate, and the attack dies in the
  collision phase;
* ``fence`` — an mfence after every victim store closes the transient
  window *and* starves the predictors (no aliasing events, nothing to
  charge): the sliding scan burns its whole budget without one hit.

Failures are measurements, not errors: a failed campaign reports zero
accuracy plus the cycles the attacker wasted, which is exactly the
cycles-per-byte inflation the mitigation buys.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.attacks.spectre_stl import SpectreSTL
from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.errors import AttackError, CollisionNotFound, ReproError
from repro.fuzz.harness import MITIGATIONS
from repro.mitigations.fences import fence_after_stores
from repro.attacks.gadgets import spectre_stl_gadget
from repro.telemetry.metrics import registry

__all__ = ["ExtractionReport", "SecretExtraction", "run_suite"]

#: Sliding-scan give-up budget (probe attempts per candidate scan).  A
#: page holds exactly one colliding offset, but successive scans resume
#: just past the previous hit, so the next hit can sit almost two pages
#: away; ~8500 covers that worst case plus slack.  Against a fenced
#: victim the whole budget is wasted — that cost is part of the
#: measurement.
DEFAULT_COLLISION_BUDGET = 8500


@dataclass
class ExtractionReport:
    """Measured outcome of one extraction campaign."""

    mitigation: str
    expected: bytes
    recovered: bytes
    cycles: int
    clock_ghz: float
    redundancy: int
    validation_attempts: int
    failure: str | None = None

    @property
    def accuracy(self) -> float:
        if not self.expected:
            return 1.0
        good = sum(a == b for a, b in zip(self.recovered, self.expected))
        return good / len(self.expected)

    @property
    def byte_errors(self) -> int:
        return len(self.expected) - round(self.accuracy * len(self.expected))

    @property
    def cycles_per_byte(self) -> float:
        return self.cycles / len(self.expected) if self.expected else 0.0

    @property
    def bytes_per_second(self) -> float:
        seconds = self.cycles / (self.clock_ghz * 1e9)
        if not seconds:
            return float("inf")
        good = round(self.accuracy * len(self.expected))
        return good / seconds

    def to_dict(self) -> dict:
        return {
            "mitigation": self.mitigation,
            "secret_bytes": len(self.expected),
            "recovered_hex": self.recovered.hex(),
            "expected_hex": self.expected.hex(),
            "accuracy": round(self.accuracy, 6),
            "byte_errors": self.byte_errors,
            "cycles": self.cycles,
            "cycles_per_byte": round(self.cycles_per_byte, 1),
            "bytes_per_second": round(self.bytes_per_second, 1),
            "redundancy": self.redundancy,
            "validation_attempts": self.validation_attempts,
            "failure": self.failure,
        }


class SecretExtraction:
    """One seeded extraction campaign under one mitigation."""

    def __init__(
        self,
        seed: int = 2024,
        mitigation: str = "none",
        slide_pages: int = 16,
        redundancy: int = 1,
        collision_budget: int | None = DEFAULT_COLLISION_BUDGET,
    ) -> None:
        if mitigation not in MITIGATIONS:
            raise ValueError(
                f"unknown mitigation {mitigation!r} (know {MITIGATIONS})"
            )
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.mitigation = mitigation
        self.redundancy = redundancy
        self.collision_budget = collision_budget
        self.machine = Machine(seed=seed)
        gadget: Program | None = None
        if mitigation == "fence":
            gadget = Program(
                fence_after_stores(spectre_stl_gadget().instructions),
                name="stl-gadget-fenced",
            )
        self.attack = SpectreSTL(
            machine=self.machine, slide_pages=slide_pages, gadget=gadget
        )
        if mitigation == "ssbd":
            # Machine-wide SSBD, enabled after the attacker calibrated
            # its timing classifier — the most attacker-favorable
            # ordering, and the attack still collapses.
            self.machine.core.set_ssbd(True)

    def _read_byte(self, offset: int, candidate) -> int:
        """One secret byte, ``redundancy`` channel reads, plurality vote.

        Ties and all-failed rounds resolve deterministically (smallest
        byte value; 0 for no reads) — the decode bias is part of the
        attack, not hidden randomness.
        """
        reads = []
        for _ in range(self.redundancy):
            byte = self.attack.leak_byte(offset, candidate)
            if byte is None and self.redundancy == 1:
                byte = self.attack.leak_byte(offset, candidate)  # single retry
            if byte is not None:
                reads.append(byte)
        if not reads:
            return 0
        best = max(Counter(reads).items(), key=lambda item: (item[1], -item[0]))
        return best[0]

    def run(self, secret: bytes) -> ExtractionReport:
        """Plant ``secret`` in the victim and run the whole campaign."""
        if not secret:
            raise ValueError("refusing to extract an empty secret")
        machine = self.machine
        machine.kernel.write(self.attack.process, self.attack.secret_va, secret)
        thread = machine.core.thread(0)
        start = thread.cycles
        failure = None
        recovered = b"\x00" * len(secret)
        try:
            candidate = self.attack.find_collision(
                max_attempts=self.collision_budget
            )
            out = bytearray()
            for index in range(len(secret)):
                offset = self.attack.secret_va + index - self.attack.array1
                out.append(self._read_byte(offset, candidate))
            recovered = bytes(out)
        except (AttackError, CollisionNotFound, ReproError) as exc:
            failure = f"{type(exc).__name__}: {exc}"
        cycles = thread.cycles - start
        report = ExtractionReport(
            mitigation=self.mitigation,
            expected=secret,
            recovered=recovered,
            cycles=cycles,
            clock_ghz=machine.core.model.clock_ghz,
            redundancy=self.redundancy,
            validation_attempts=self.attack.validation_attempts,
            failure=failure,
        )
        metrics = registry()
        metrics.counter("attack.extract.bytes").inc(len(secret))
        metrics.counter("attack.extract.byte_errors").inc(report.byte_errors)
        metrics.counter(f"attack.extract.campaigns.{self.mitigation}").inc()
        metrics.histogram("attack.extract.cycles_per_byte").observe(
            round(report.cycles_per_byte)
        )
        return report


def run_suite(
    secret: bytes,
    seed: int = 2024,
    mitigations: tuple[str, ...] = MITIGATIONS,
    slide_pages: int = 16,
    redundancy: int = 1,
    collision_budget: int | None = DEFAULT_COLLISION_BUDGET,
) -> list[ExtractionReport]:
    """The same seeded campaign under each mitigation, fresh machine each."""
    return [
        SecretExtraction(
            seed=seed,
            mitigation=mitigation,
            slide_pages=slide_pages,
            redundancy=redundancy,
            collision_budget=collision_budget,
        ).run(secret)
        for mitigation in mitigations
    ]
