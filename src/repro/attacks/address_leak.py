"""Leaking virtual-to-physical mapping information via the hash (§V-D).

The paper's second side-channel impact of SSBP: the selection hash mixes
the *physical* frame number into an attacker-observable quantity.  An
unprivileged process that finds a colliding offset pair between two of
its own executable pages learns

    H(F_i) ^ H(F_j)  =  L_i ^ L_j

where ``H(F)`` is the fold of the page's frame bits and ``L`` the load
instruction's (attacker-known) in-page offset — 12 bits of relative
physical-mapping information per page pair, normally hidden from user
space (pagemap is privileged).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.collision import SsbpCollisionFinder
from repro.attacks.runtime import AttackerStld
from repro.core.hashfn import ipa_hash
from repro.cpu.machine import Machine
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE
from repro.revng.stld import load_instruction_index

__all__ = ["RelativeHashLeak", "AddressMappingLeak"]


@dataclass(frozen=True)
class RelativeHashLeak:
    """One recovered relative frame hash ``H(F_i) ^ H(F_j)``."""

    page_i: int
    page_j: int
    recovered: int
    attempts: int


class AddressMappingLeak:
    """Recovers relative frame hashes among the attacker's own pages."""

    def __init__(self, machine: Machine | None = None, pages: int = 4) -> None:
        self.machine = machine or Machine(seed=808)
        self.process = self.machine.kernel.create_process("va-pa-leaker")
        self.pages = pages
        self.attacker = AttackerStld(
            self.machine, self.process, slide_pages=pages
        )
        self._load_offset = self.attacker.template.relocate(0).iva(
            load_instruction_index(self.attacker.template)
        )

    def _page_base(self, page: int) -> int:
        return self.attacker.slide_base + page * PAGE_SIZE

    def recover_pair(self, page_i: int, page_j: int) -> RelativeHashLeak:
        """Find a colliding offset pair between two of the attacker's own
        pages by charging a fixed stld in page i and sliding within page j."""
        anchor = self.attacker.place_at(self._page_base(page_i) + 64)
        finder = SsbpCollisionFinder(
            self.attacker, recharge=lambda: self.attacker.charge_c3(anchor)
        )
        found = finder.find(
            start_offset=page_j * PAGE_SIZE,
            max_attempts=PAGE_SIZE,
        )
        self.attacker.drain_c3(found.program)
        anchor_load_off = (64 + self._load_offset) & (PAGE_SIZE - 1)
        found_load_off = (found.iva + self._load_offset) & (PAGE_SIZE - 1)
        return RelativeHashLeak(
            page_i=page_i,
            page_j=page_j,
            recovered=anchor_load_off ^ found_load_off,
            attempts=found.attempts,
        )

    def recover_all(self) -> list[RelativeHashLeak]:
        """Relative hashes of every page against page 0."""
        return [self.recover_pair(0, page) for page in range(1, self.pages)]

    # ------------------------------------------------------------------
    # Ground truth (test oracle only: needs the kernel's page tables)
    # ------------------------------------------------------------------
    def true_relative_hash(self, page_i: int, page_j: int) -> int:
        def frame_hash(page: int) -> int:
            base = self._page_base(page)
            mapping = self.process.address_space.mapping(base >> PAGE_SHIFT)
            assert mapping is not None
            return ipa_hash(mapping.frame << PAGE_SHIFT)

        return frame_hash(page_i) ^ frame_hash(page_j)
