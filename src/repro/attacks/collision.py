"""Unprivileged code-sliding collision search (paper Fig 3, Section IV-B).

To attack a victim load, the attacker needs its own stld whose load IPA
hashes to the victim load's predictor entry.  Without physical-address
access, the attacker slides its probe code byte by byte through its own
executable pages; after the target entry's C3 is charged, a colliding
probe shows the sticky (type F) timing on a non-aliasing run, any other
probe shows the bypass (type H) timing.

Vulnerability 2: the page-offset bits enter the hash linearly, so every
page contains exactly one colliding offset — at most 4096 attempts, with
the attempt count uniform over the page (the paper's Fig 7 histogram,
mean ~2200).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.exec_types import TimingClass
from repro.cpu.isa import Program
from repro.errors import CollisionNotFound
from repro.mem.physical import PAGE_SIZE
from repro.attacks.runtime import AttackerStld

__all__ = ["CollisionResult", "SsbpCollisionFinder"]


@dataclass
class CollisionResult:
    """A found collision: the placed probe and the search cost."""

    program: Program
    iva: int
    attempts: int


class SsbpCollisionFinder:
    """Finds attacker stld placements colliding with a charged entry."""

    def __init__(
        self,
        attacker: AttackerStld,
        recharge: Callable[[], None],
        verify_runs: int = 2,
        majority: bool | None = None,
    ) -> None:
        self.attacker = attacker
        #: Re-charges the target entry's C3 (e.g. by running the victim's
        #: aliasing path, or the attacker's own trained stld).
        self.recharge = recharge
        self.verify_runs = verify_runs
        #: Majority-vote verification: confirm a screened hit by
        #: ``verify_runs`` stalls out of ``2 * verify_runs - 1`` reads
        #: instead of ``verify_runs`` *consecutive* stalls, so one
        #: interference-garbled read cannot reject a true collision.
        #: Auto-enabled when a non-quiet interference model is attached;
        #: off by default so the quiet path is byte-identical.
        self.majority = (
            attacker.robust_active() if majority is None else majority
        )

    def find(
        self,
        start_offset: int = 0,
        max_attempts: int | None = None,
        step: int = 1,
    ) -> CollisionResult:
        """Slide byte by byte until a probe shows the sticky timing.

        Non-colliding probes never touch the target entry, so one charge
        lasts the whole scan; a hit is verified with ``verify_runs``
        consecutive sticky observations (each drains C3 by one).
        """
        attacker = self.attacker
        span = attacker.slide_limit - attacker.slide_base
        if max_attempts is None:
            max_attempts = span // step
        self.recharge()
        attempts = 0
        offset = start_offset
        while attempts < max_attempts and offset <= span:
            attempts += 1
            iva = attacker.slide_base + offset
            program = attacker.place_at(iva)
            if self._is_sticky(program):
                return CollisionResult(program=program, iva=iva, attempts=attempts)
            offset += step
        raise CollisionNotFound(
            f"no SSBP collision in {attempts} attempts "
            f"({span // PAGE_SIZE + 1} pages scanned)"
        )

    def find_many(self, count: int, step: int = 1) -> list[CollisionResult]:
        """Collect several distinct collisions (one per page at most)."""
        results: list[CollisionResult] = []
        offset = 0
        for _ in range(count):
            found = self.find(start_offset=offset, step=step)
            results.append(found)
            # Resume the scan just past the hit.
            offset = found.iva - self.attacker.slide_base + step
        return results

    _STALL_CLASSES = (TimingClass.STALL_CACHE, TimingClass.STALL_FORWARD)

    def _is_sticky(self, program: Program) -> bool:
        # The probe's own PSFP pair is untrained, so any stall observed
        # on a non-aliasing run is C3-driven; accepting both stall
        # flavours also tolerates coarse timers that cannot separate
        # them (the browser case).
        if not self.majority:
            for _ in range(self.verify_runs):
                observed = self.attacker.observe(program, aliasing=False)
                if observed not in self._STALL_CLASSES:
                    return False
            # Verification drained C3; restore it for the next consumer.
            self.recharge()
            return True
        # Majority mode keeps the 1-read screen (the scan's cost per
        # non-colliding offset is unchanged) but confirms a screened hit
        # by vote, tolerating garbled reads in either direction.  C3
        # holds enough charge (<= 32) to absorb the extra drains.
        if self.attacker.observe(program, aliasing=False) not in self._STALL_CLASSES:
            return False
        needed = self.verify_runs
        stalls = 1
        reads = 1
        budget = 2 * self.verify_runs - 1 + 1  # screen + confirm reads
        while reads < budget and stalls < needed:
            if budget - reads < needed - stalls:
                return False
            observed = self.attacker.observe(program, aliasing=False)
            reads += 1
            if observed in self._STALL_CLASSES:
                stalls += 1
        if stalls < needed:
            return False
        self.recharge()
        return True
