"""Unprivileged code-sliding collision search (paper Fig 3, Section IV-B).

To attack a victim load, the attacker needs its own stld whose load IPA
hashes to the victim load's predictor entry.  Without physical-address
access, the attacker slides its probe code byte by byte through its own
executable pages; after the target entry's C3 is charged, a colliding
probe shows the sticky (type F) timing on a non-aliasing run, any other
probe shows the bypass (type H) timing.

Vulnerability 2: the page-offset bits enter the hash linearly, so every
page contains exactly one colliding offset — at most 4096 attempts, with
the attempt count uniform over the page (the paper's Fig 7 histogram,
mean ~2200).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.exec_types import TimingClass
from repro.cpu.isa import Program
from repro.errors import CollisionNotFound
from repro.mem.physical import PAGE_SIZE
from repro.attacks.runtime import AttackerStld

__all__ = ["CollisionResult", "SsbpCollisionFinder"]


@dataclass
class CollisionResult:
    """A found collision: the placed probe and the search cost."""

    program: Program
    iva: int
    attempts: int


class SsbpCollisionFinder:
    """Finds attacker stld placements colliding with a charged entry."""

    def __init__(
        self,
        attacker: AttackerStld,
        recharge: Callable[[], None],
        verify_runs: int = 2,
    ) -> None:
        self.attacker = attacker
        #: Re-charges the target entry's C3 (e.g. by running the victim's
        #: aliasing path, or the attacker's own trained stld).
        self.recharge = recharge
        self.verify_runs = verify_runs

    def find(
        self,
        start_offset: int = 0,
        max_attempts: int | None = None,
        step: int = 1,
    ) -> CollisionResult:
        """Slide byte by byte until a probe shows the sticky timing.

        Non-colliding probes never touch the target entry, so one charge
        lasts the whole scan; a hit is verified with ``verify_runs``
        consecutive sticky observations (each drains C3 by one).
        """
        attacker = self.attacker
        span = attacker.slide_limit - attacker.slide_base
        if max_attempts is None:
            max_attempts = span // step
        self.recharge()
        attempts = 0
        offset = start_offset
        while attempts < max_attempts and offset <= span:
            attempts += 1
            iva = attacker.slide_base + offset
            program = attacker.place_at(iva)
            if self._is_sticky(program):
                return CollisionResult(program=program, iva=iva, attempts=attempts)
            offset += step
        raise CollisionNotFound(
            f"no SSBP collision in {attempts} attempts "
            f"({span // PAGE_SIZE + 1} pages scanned)"
        )

    def find_many(self, count: int, step: int = 1) -> list[CollisionResult]:
        """Collect several distinct collisions (one per page at most)."""
        results: list[CollisionResult] = []
        offset = 0
        for _ in range(count):
            found = self.find(start_offset=offset, step=step)
            results.append(found)
            # Resume the scan just past the hit.
            offset = found.iva - self.attacker.slide_base + step
        return results

    _STALL_CLASSES = (TimingClass.STALL_CACHE, TimingClass.STALL_FORWARD)

    def _is_sticky(self, program: Program) -> bool:
        # The probe's own PSFP pair is untrained, so any stall observed
        # on a non-aliasing run is C3-driven; accepting both stall
        # flavours also tolerates coarse timers that cannot separate
        # them (the browser case).
        for _ in range(self.verify_runs):
            observed = self.attacker.observe(program, aliasing=False)
            if observed not in self._STALL_CLASSES:
                return False
        # Verification drained C3; restore it for the next consumer.
        self.recharge()
        return True
