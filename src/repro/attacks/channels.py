"""Symbol transports over the two side channels the paper exposes.

Both transports move ``width``-bit symbols between a sender process and
a receiver process in lockstep (the half-duplex scheduling the covert
channel of Section IV-D already uses — every hand-over is a context
switch, which flushes PSFP; neither channel relies on it):

* :class:`StlPredictorChannel` — ``width`` parallel SSBP bit lanes, the
  multi-entry generalization of :class:`~repro.attacks.covert_channel.
  SsbpCovertChannel`.  No shared memory, no cache lines: each lane is a
  sender stld whose predictor entry the receiver found by code sliding.
* :class:`CacheLineChannel` — a Flush+Reload transport over a shared
  mapping with ``2**width`` page-strided slots; one victim-free cache
  transmission per symbol.

:class:`NoisyChannel` wraps either with seeded symbol corruption, which
models the classification noise a real (DVFS-jittered, preempted)
attacker sees and gives the repetition code something to correct.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.attacks.collision import SsbpCollisionFinder
from repro.attacks.flush_reload import FlushReloadChannel
from repro.attacks.runtime import AttackerStld
from repro.core.exec_types import TimingClass
from repro.cpu.isa import Halt, Load, Program
from repro.cpu.machine import Machine
from repro.errors import AttackError
from repro.mem.physical import PAGE_SIZE
from repro.osm.address_space import Perm
from repro.telemetry.metrics import registry

__all__ = [
    "SymbolChannel",
    "StlPredictorChannel",
    "CacheLineChannel",
    "NoisyChannel",
]

_STALL = (TimingClass.STALL_CACHE, TimingClass.STALL_FORWARD)


class SymbolChannel(Protocol):
    """What the capacity harness needs from a transport."""

    machine: Machine
    width: int

    @property
    def arity(self) -> int: ...

    def transfer(self, symbols: list[int]) -> list[int]: ...


class StlPredictorChannel:
    """``width`` SSBP bit lanes between two unrelated processes.

    Lane ``i`` is a sender stld placed at a distinct page offset (the
    offset bits enter the selection hash linearly, so distinct offsets
    in one page guarantee distinct predictor entries); the receiver
    code-slides once per lane to find a colliding probe.  A set bit is
    sent by charging the lane's C3, a clear bit by charging a decoy
    entry so per-symbol timing stays bit-independent.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        width: int = 2,
        slide_pages: int = 8,
    ) -> None:
        if not 1 <= width <= 8:
            raise ValueError(f"STL channel width must be in 1..8, got {width}")
        self.machine = machine or Machine(seed=1234)
        self.width = width
        kernel = self.machine.kernel
        self.sender_process = kernel.create_process("stl-chan-sender")
        self.receiver_process = kernel.create_process("stl-chan-receiver")
        self.sender = AttackerStld(self.machine, self.sender_process, slide_pages=2)
        self.receiver = AttackerStld(
            self.machine, self.receiver_process, slide_pages=slide_pages
        )
        #: Lane transmitters: distinct offsets in the sender's first
        #: slide page; the decoy lives in the second page.
        self.tx_programs = [
            self.sender.place_at(self.sender.slide_base + 512 + lane * 256)
            for lane in range(width)
        ]
        self.decoy_program = self.sender.place_at(
            self.sender.slide_base + PAGE_SIZE + 512
        )
        self.rx_programs: list[Program] = []
        self.handshake_attempts: list[int] = []
        self.symbols_transferred = 0

    @property
    def arity(self) -> int:
        return 1 << self.width

    # ------------------------------------------------------------------
    def handshake(self) -> list[int]:
        """Receiver slides once per lane; returns per-lane attempt counts."""
        self.rx_programs = []
        self.handshake_attempts = []
        for tx in self.tx_programs:
            finder = SsbpCollisionFinder(
                self.receiver, recharge=lambda tx=tx: self.sender.charge_c3(tx)
            )
            found = finder.find()
            self.receiver.drain_c3(found.program)
            self.rx_programs.append(found.program)
            self.handshake_attempts.append(found.attempts)
        if len({program.base_iva for program in self.rx_programs}) != self.width:
            raise AttackError("lane handshakes converged on one probe placement")
        registry().counter("attack.channel.handshake_probes").inc(
            sum(self.handshake_attempts)
        )
        return self.handshake_attempts

    # ------------------------------------------------------------------
    def _send(self, symbol: int) -> None:
        for lane, tx in enumerate(self.tx_programs):
            if symbol >> lane & 1:
                self.sender.charge_c3(tx)
            else:
                self.sender.charge_c3(self.decoy_program)

    def _receive(self) -> int:
        symbol = 0
        for lane, rx in enumerate(self.rx_programs):
            if self.receiver.observe(rx, aliasing=False) in _STALL:
                self.receiver.drain_c3(rx)
                symbol |= 1 << lane
        return symbol

    def transfer(self, symbols: list[int]) -> list[int]:
        """Send a symbol stream; returns what the receiver decoded."""
        if not self.rx_programs:
            self.handshake()
        received = []
        for symbol in symbols:
            self._send(symbol)
            received.append(self._receive())
        self.symbols_transferred += len(symbols)
        registry().counter("attack.channel.symbols").inc(len(symbols))
        return received


class CacheLineChannel:
    """Flush+Reload symbol transport over a shared mapping.

    The receiver owns a ``2**width``-slot page-strided probe buffer and
    shares it read-only with the sender; a symbol is one sender load of
    slot ``s``, received by flushing before and timing reloads after.
    An unreadable round (zero or multiple hot slots) is an *erasure*,
    counted and decoded as symbol 0 — the repetition layer's job.
    """

    def __init__(self, machine: Machine | None = None, width: int = 4) -> None:
        if not 1 <= width <= 8:
            raise ValueError(f"cache channel width must be in 1..8, got {width}")
        self.machine = machine or Machine(seed=1234)
        self.width = width
        kernel = self.machine.kernel
        self.receiver_process = kernel.create_process("cache-chan-receiver")
        self.sender_process = kernel.create_process("cache-chan-sender")
        self.receiver_base = kernel.map_anonymous(
            self.receiver_process, pages=self.arity
        )
        self.sender_base = kernel.map_shared(
            self.sender_process,
            self.receiver_process,
            self.receiver_base,
            pages=self.arity,
            perms=Perm.R,
        )
        self.reloader = FlushReloadChannel(
            self.machine, self.receiver_process, self.receiver_base,
            slots=self.arity,
        )
        self._touch_program = self.machine.load_program(
            self.sender_process,
            Program([Load("x", base="addr"), Halt()], name="cache-chan-touch"),
        )
        self.erasures = 0
        self.symbols_transferred = 0

    @property
    def arity(self) -> int:
        return 1 << self.width

    # ------------------------------------------------------------------
    def _send(self, symbol: int) -> None:
        self.machine.run(
            self.sender_process,
            self._touch_program,
            {"addr": self.sender_base + (symbol & (self.arity - 1)) * PAGE_SIZE},
        )

    def transfer(self, symbols: list[int]) -> list[int]:
        received = []
        for symbol in symbols:
            self.reloader.flush_all()
            self._send(symbol)
            slot = self.reloader.receive()
            if slot is None:
                self.erasures += 1
                registry().counter("attack.channel.erasures").inc()
                slot = 0
            received.append(slot)
        self.symbols_transferred += len(symbols)
        registry().counter("attack.channel.symbols").inc(len(symbols))
        return received


class NoisyChannel:
    """Seeded symbol corruption around any transport.

    With probability ``flip_probability`` a received symbol is replaced
    by a uniformly random one (which may equal the original — the
    standard symmetric-channel convention).  Deterministic for a fixed
    seed, independent of the wrapped transport's own randomness.
    """

    def __init__(
        self, inner: SymbolChannel, flip_probability: float, seed: int = 0
    ) -> None:
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError(f"flip probability out of range: {flip_probability}")
        self.inner = inner
        self.machine = inner.machine
        self.width = inner.width
        self.flip_probability = flip_probability
        self.rng = random.Random(seed)
        self.flips = 0

    @property
    def arity(self) -> int:
        return 1 << self.width

    def transfer(self, symbols: list[int]) -> list[int]:
        received = self.inner.transfer(symbols)
        out = []
        for symbol in received:
            if self.rng.random() < self.flip_probability:
                symbol = self.rng.randrange(self.arity)
                self.flips += 1
            out.append(symbol)
        return out
