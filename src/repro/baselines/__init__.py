"""Baseline predictors from other vendors (TABLE IV comparison).

AMD's SSBP (the paper's subject, :mod:`repro.core`) is compared against
the Intel and ARM memory disambiguation units; :func:`amd_characterization`
renders our work's row of TABLE IV.
"""

from repro.baselines.arm_mdu import ArmMdu
from repro.baselines.intel_mdu import IntelMdu, MduCharacterization

__all__ = ["ArmMdu", "IntelMdu", "MduCharacterization", "amd_characterization"]


def amd_characterization() -> MduCharacterization:
    """The AMD row of TABLE IV: 6-bit C3 + 2-bit C4, whole-IPA hash."""
    return MduCharacterization(
        vendor="AMD (our work)",
        state_bits="6 bit (C3) + 2 bit (C4)",
        selection="hashed value of the whole load IPA",
        entries=4096,
    )
