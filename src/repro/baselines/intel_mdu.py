"""Intel's memory disambiguation unit (baseline for TABLE IV).

Modeled after the design recovered by Ragab et al. [41] and the earlier
blog-post reverse engineering [21, 27]: per-load-address entries selected
by the *lowest bits of the load's instruction address* (no hash), each
holding a 4-bit saturating counter; a load is predicted non-aliasing
(allowed to bypass) only while the counter is saturated, and any actual
aliasing resets it.

The security-relevant contrasts with AMD's SSBP (our work / the paper):

* selection uses low IVA/IPA bits directly — an attacker computes
  colliding addresses instead of searching for them;
* the 4-bit state machine retrains quickly (16 clean executions);
* there is no C4-style stickiness, so no single-event covert charge.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IntelMdu", "MduCharacterization"]


@dataclass(frozen=True)
class MduCharacterization:
    """A TABLE IV row."""

    vendor: str
    state_bits: str
    selection: str
    entries: int


class IntelMdu:
    """4-bit saturating-counter disambiguator, low-8-bit IVA selection."""

    INDEX_BITS = 8
    COUNTER_MAX = 15

    def __init__(self) -> None:
        self._counters = [0] * (1 << self.INDEX_BITS)

    @staticmethod
    def index(load_iva: int) -> int:
        return load_iva & (1 << IntelMdu.INDEX_BITS) - 1

    def predict_bypass(self, load_iva: int) -> bool:
        """May the load bypass unresolved older stores?"""
        return self._counters[self.index(load_iva)] >= self.COUNTER_MAX

    def update(self, load_iva: int, aliased: bool) -> None:
        slot = self.index(load_iva)
        if aliased:
            self._counters[slot] = 0
        else:
            self._counters[slot] = min(self._counters[slot] + 1, self.COUNTER_MAX)

    def counter(self, load_iva: int) -> int:
        return self._counters[self.index(load_iva)]

    def flush(self) -> None:
        self._counters = [0] * (1 << self.INDEX_BITS)

    @classmethod
    def characterization(cls) -> MduCharacterization:
        return MduCharacterization(
            vendor="Intel",
            state_bits="4 bit",
            selection="lowest 8 bits of the load IVA/IPA",
            entries=1 << cls.INDEX_BITS,
        )

    def collision_attempts_needed(self) -> int:
        """Expected attacker work to collide with a known target: zero
        search — the index is the address's low bits."""
        return 1
