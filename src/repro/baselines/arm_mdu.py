"""ARM's memory disambiguation unit (baseline for TABLE IV).

Modeled after Liu et al. [34] ("Leaky MDU"): entries selected by the
lowest 16 bits of the load's instruction *virtual* address, each a 1-bit
predictor — a single clean execution flips the load to bypassing, a
single aliasing execution flips it back.
"""

from __future__ import annotations

from repro.baselines.intel_mdu import MduCharacterization

__all__ = ["ArmMdu"]


class ArmMdu:
    """1-bit disambiguator, low-16-bit IVA selection."""

    INDEX_BITS = 16

    def __init__(self) -> None:
        self._bits = bytearray(1 << self.INDEX_BITS)

    @staticmethod
    def index(load_iva: int) -> int:
        return load_iva & (1 << ArmMdu.INDEX_BITS) - 1

    def predict_bypass(self, load_iva: int) -> bool:
        return bool(self._bits[self.index(load_iva)])

    def update(self, load_iva: int, aliased: bool) -> None:
        self._bits[self.index(load_iva)] = 0 if aliased else 1

    def flush(self) -> None:
        self._bits = bytearray(1 << self.INDEX_BITS)

    @classmethod
    def characterization(cls) -> MduCharacterization:
        return MduCharacterization(
            vendor="ARM",
            state_bits="1 bit",
            selection="lowest 16 bits of the load IVA",
            entries=1 << cls.INDEX_BITS,
        )

    def collision_attempts_needed(self) -> int:
        """IVA-based selection: the attacker aligns its own code — no
        search at all."""
        return 1
