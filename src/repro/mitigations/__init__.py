"""Mitigations (paper Section VI).

* **SSBD** (:mod:`repro.mitigations.ssbd`) — serializes loads behind
  stores; stops everything, at the Fig 12 performance cost.
* **PSFD** — modeled faithfully as *ineffective*: the predictors keep
  functioning with the bit set (see
  :class:`repro.core.spec_ctrl.SpecCtrl` and Section VI-A).
* **Flush SSBP on context switch** — ``Machine(flush_ssbp_on_switch=True)``;
  stops cross-process SSBP attacks (Spectre-CTL, fingerprinting).
* **Randomized selection** — ``Machine(resalt_on_switch=True)``; re-keys
  the selection hash on every switch/syscall so code-sliding collisions
  go stale, stopping out-of-place attacks.
* **Fence insertion** (:mod:`repro.mitigations.fences`) — the software
  countermeasure: an ``mfence`` after every store serializes it against
  younger loads, so the predictors are never consulted.
* **Secure timer** (:mod:`repro.mitigations.secure_timer`) — denies the
  cycle resolution probing needs.
"""

from repro.mitigations.fences import count_fences, fence_after_stores
from repro.mitigations.secure_timer import SecureTimer
from repro.mitigations.ssbd import (
    WorkloadTiming,
    measure_workload,
    ssbd_enabled,
    ssbd_overhead,
)

__all__ = [
    "SecureTimer",
    "WorkloadTiming",
    "count_fences",
    "fence_after_stores",
    "measure_workload",
    "ssbd_enabled",
    "ssbd_overhead",
]
