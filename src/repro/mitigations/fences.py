"""Fence insertion — the software countermeasure to store bypass.

Where SSBD flips a chicken bit (:mod:`repro.mitigations.ssbd`), a
compiler can instead serialize each store against younger loads by
emitting an ``mfence`` right after it: by the time any subsequent load
dispatches, every older store's address is resolved and committed, so
there is no unresolved store to race — the predictors are simply never
consulted.  This is the lfence/mfence hardening strategy SpecFuzz-style
tools validate, and the fuzzing harness (:mod:`repro.fuzz`) uses this
transform as its third mitigation configuration next to ``none`` and
``ssbd``.

The transform is purely architectural-neutral: ``Mfence`` is a no-op to
the reference interpreter, so a fenced program must produce the same
registers and memory as the original under both executors.
"""

from __future__ import annotations

from repro.cpu.isa import Instruction, Mfence, Store

__all__ = ["fence_after_stores", "count_fences"]


def fence_after_stores(instructions: list[Instruction]) -> list[Instruction]:
    """Insert an ``Mfence`` after every ``Store`` (compiler hardening).

    Returns a new instruction list; the input is not modified.  Labels
    and branch targets are unaffected because fences are appended after
    stores, never between a label and the instruction it names.
    """
    fenced: list[Instruction] = []
    for instruction in instructions:
        fenced.append(instruction)
        if isinstance(instruction, Store):
            fenced.append(Mfence())
    return fenced


def count_fences(instructions: list[Instruction]) -> int:
    """Number of ``Mfence`` instructions in a program (for overhead stats)."""
    return sum(1 for instruction in instructions if isinstance(instruction, Mfence))
