"""Fence insertion — the software countermeasure to store bypass.

Where SSBD flips a chicken bit (:mod:`repro.mitigations.ssbd`), a
compiler can instead serialize each store against younger loads by
emitting an ``mfence`` right after it: by the time any subsequent load
dispatches, every older store's address is resolved and committed, so
there is no unresolved store to race — the predictors are simply never
consulted.  This is the lfence/mfence hardening strategy SpecFuzz-style
tools validate, and the fuzzing harness (:mod:`repro.fuzz`) uses this
transform as its third mitigation configuration next to ``none`` and
``ssbd``.

The transform is purely architectural-neutral: ``Mfence`` is a no-op to
the reference interpreter, so a fenced program must produce the same
registers and memory as the original under both executors.
"""

from __future__ import annotations

from repro.cpu.isa import Instruction, Mfence, Store
from repro.errors import ConfigError

__all__ = ["fence_after_stores", "fence_after", "count_fences"]


def fence_after_stores(instructions: list[Instruction]) -> list[Instruction]:
    """Insert an ``Mfence`` after every ``Store`` (compiler hardening).

    Returns a new instruction list; the input is not modified.  Labels
    and branch targets are unaffected because fences are appended after
    stores, never between a label and the instruction it names.
    """
    fenced: list[Instruction] = []
    for instruction in instructions:
        fenced.append(instruction)
        if isinstance(instruction, Store):
            fenced.append(Mfence())
    return fenced


def fence_after(
    instructions: list[Instruction], indices: list[int] | tuple[int, ...]
) -> list[Instruction]:
    """Insert an ``Mfence`` after each of the given instruction indices.

    The targeted variant of :func:`fence_after_stores`, used by the
    static fence advisor (:mod:`repro.static.advisor`) to realize a
    *minimal* placement: only the positions that actually sever a
    gadget-carrying store→load bypass edge get a fence.  Indices refer
    to the input list; the returned list is new and the input is not
    modified.
    """
    positions = sorted(set(indices))
    if positions and not 0 <= positions[0] <= positions[-1] < len(instructions):
        raise ConfigError(
            f"fence indices out of range for a {len(instructions)}-instruction "
            f"program: {positions}"
        )
    fenced: list[Instruction] = []
    cursor = 0
    for index, instruction in enumerate(instructions):
        fenced.append(instruction)
        if cursor < len(positions) and positions[cursor] == index:
            fenced.append(Mfence())
            cursor += 1
    return fenced


def count_fences(instructions: list[Instruction]) -> int:
    """Number of ``Mfence`` instructions in a program (for overhead stats)."""
    return sum(1 for instruction in instructions if isinstance(instruction, Mfence))
