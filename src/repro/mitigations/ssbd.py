"""SSBD — Speculative Store Bypass Disable (paper Section VI-A).

Setting SPEC_CTRL bit 2 serializes every load behind preceding stores:
the predictors pin to the Block state (``phi(n) = E``, ``phi(a) = A``),
no training occurs, no timing differences remain, and no exploitable
transient window exists.  The cost is the Fig 12 overhead this module
measures on the SPEC2017-like workloads.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.cpu.core import Core
from repro.cpu.machine import Machine
from repro.workloads.spec2017 import SPEC2017, WorkloadSpec, build_workload, prefill

__all__ = ["ssbd_enabled", "WorkloadTiming", "measure_workload", "ssbd_overhead"]


@contextmanager
def ssbd_enabled(core: Core):
    """Temporarily set the SSBD bit."""
    previous = core.spec_ctrl.ssbd
    core.set_ssbd(True)
    try:
        yield core
    finally:
        core.set_ssbd(previous)


@dataclass(frozen=True)
class WorkloadTiming:
    """Cycles for one workload with SSBD off and on."""

    name: str
    baseline_cycles: int
    ssbd_cycles: int

    @property
    def overhead(self) -> float:
        """Relative slowdown: (ssbd - baseline) / baseline."""
        if self.baseline_cycles == 0:
            return 0.0
        return (self.ssbd_cycles - self.baseline_cycles) / self.baseline_cycles


def measure_workload(
    spec: WorkloadSpec,
    operations: int = 400,
    repetitions: int = 3,
    seed: int = 0,
) -> WorkloadTiming:
    """Run one workload with SSBD off, then on; fresh machine each mode
    so cache and predictor state are comparable.

    The first repetition warms caches and trains predictors (as SPEC's
    measured iterations would be warm); timing sums the remaining runs.
    """

    def run_mode(ssbd: bool) -> int:
        machine = Machine(seed=seed)
        machine.core.set_ssbd(ssbd)
        process = machine.kernel.create_process(f"spec-{spec.name}")
        data = machine.kernel.map_anonymous(process, pages=spec.footprint_pages)
        prefill(machine.kernel, process, data, spec.footprint_pages, seed)
        program = machine.load_program(
            process, build_workload(spec, data, operations, seed)
        )
        machine.run(process, program, max_steps=1_000_000)  # warm-up
        total = 0
        for _ in range(repetitions):
            total += machine.run(process, program, max_steps=1_000_000).cycles
        return total

    return WorkloadTiming(
        name=spec.name,
        baseline_cycles=run_mode(ssbd=False),
        ssbd_cycles=run_mode(ssbd=True),
    )


def ssbd_overhead(
    names: list[str] | None = None,
    operations: int = 400,
    repetitions: int = 3,
    seed: int = 0,
) -> dict[str, WorkloadTiming]:
    """The Fig 12 sweep over all (or selected) benchmarks."""
    chosen = names or list(SPEC2017)
    return {name: measure_workload(SPEC2017[name], operations, repetitions, seed)
            for name in chosen}
