"""Secure-timer mitigation (paper Section VI-B).

Coarsening or jittering the user-visible timer denies the attacker the
cycle-level differences that make predictor state observable.  The
critical threshold is the stld timing-class margin: once the timer's
effective resolution exceeds the bypass-vs-stall gap, probing fails.
"""

from __future__ import annotations

import random

__all__ = ["SecureTimer"]


class SecureTimer:
    """Quantize readings to ``resolution`` cycles and add jitter.

    Attach to an :class:`repro.attacks.runtime.AttackerStld` via its
    ``timer`` parameter; with a resolution well above the stall/bypass
    gap (~45 cycles on the default model), the attacker's calibration
    and probes collapse.
    """

    def __init__(
        self,
        resolution: int = 256,
        jitter: int = 64,
        seed: int = 0,
    ) -> None:
        if resolution < 1:
            raise ValueError("resolution must be at least one cycle")
        self.resolution = resolution
        self.jitter = jitter
        self._rng = random.Random(seed)

    def __call__(self, cycles: int) -> int:
        noisy = cycles + self._rng.randint(-self.jitter, self.jitter)
        return max(0, noisy // self.resolution) * self.resolution

    def defeats_margin(self, margin: float) -> bool:
        """Would this timer hide a timing gap of ``margin`` cycles?"""
        return self.resolution > margin or self.jitter > margin
