"""Small statistics helpers used by the experiments.

Gaussian fitting (for the Fig 7 collision-attempt histogram), histogram
vectors (Fig 11 fingerprints) and leak-metric containers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["GaussianFit", "fit_gaussian", "frequency_vector", "mean", "stdev"]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / (len(values) - 1))


@dataclass(frozen=True)
class GaussianFit:
    """A fitted normal distribution plus a goodness heuristic."""

    mu: float
    sigma: float
    samples: int

    def pdf(self, x: float) -> float:
        if self.sigma == 0:
            return math.inf if x == self.mu else 0.0
        z = (x - self.mu) / self.sigma
        return math.exp(-0.5 * z * z) / (self.sigma * math.sqrt(2 * math.pi))

    def within(self, x: float, sigmas: float = 3.0) -> bool:
        return abs(x - self.mu) <= sigmas * max(self.sigma, 1e-12)


def fit_gaussian(values: Sequence[float]) -> GaussianFit:
    """Moment-matching normal fit (the paper fits the Fig 7 histogram)."""
    return GaussianFit(mu=mean(values), sigma=stdev(values), samples=len(values))


def frequency_vector(
    values: Sequence[int], lo: int = 1, hi: int = 35
) -> list[float]:
    """Relative frequencies of ``values`` over the inclusive bin range.

    The paper's fingerprint vector: C3 values from 1 to 35 (zeros —
    untrained entries — are excluded so the signature reflects activity),
    normalized to sum to 1.  All-zero rounds produce the zero vector.
    """
    bins = [0] * (hi - lo + 1)
    for value in values:
        if lo <= value <= hi:
            bins[value - lo] += 1
    total = sum(bins)
    if total == 0:
        return [0.0] * len(bins)
    return [count / total for count in bins]
