"""A linear multi-class SVM (one-vs-rest, hinge loss, NumPy).

The paper classifies CNN fingerprint vectors with sklearn's SVM; this is
the offline-friendly equivalent: an L2-regularized linear SVM trained by
averaged subgradient descent, wrapped one-vs-rest for multi-class.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["LinearSvm", "OneVsRestSvm", "train_test_split"]


class LinearSvm:
    """Binary linear SVM: hinge loss + L2, averaged subgradient descent."""

    def __init__(
        self,
        c: float = 10.0,
        epochs: int = 200,
        learning_rate: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.c = c
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSvm":
        """``labels`` must be +1/-1.

        Samples are weighted inversely to their class frequency
        ("balanced"), which matters in the one-vs-rest setting where the
        positive class is a small minority.
        """
        samples, dims = features.shape
        if set(np.unique(labels)) - {-1, 1}:
            raise ReproError("binary SVM labels must be +1/-1")
        positives = max(1, int(np.sum(labels == 1)))
        negatives = max(1, int(np.sum(labels == -1)))
        weight_of = {
            1: samples / (2.0 * positives),
            -1: samples / (2.0 * negatives),
        }
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(dims)
        bias = 0.0
        averaged_w = np.zeros(dims)
        averaged_b = 0.0
        for epoch in range(self.epochs):
            rate = self.learning_rate / (1 + 0.1 * epoch)
            for index in rng.permutation(samples):
                label = labels[index]
                sample_weight = weight_of[int(label)]
                margin = label * (features[index] @ weights + bias)
                grad_w = weights / (self.c * samples)
                if margin < 1:
                    grad_w = grad_w - sample_weight * label * features[index]
                    bias += rate * sample_weight * label
                weights = weights - rate * grad_w
            averaged_w += weights
            averaged_b += bias
        self.weights = averaged_w / self.epochs
        self.bias = averaged_b / self.epochs
        return self

    def decision(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ReproError("SVM is not fitted")
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.where(self.decision(features) >= 0, 1, -1)


class OneVsRestSvm:
    """Multi-class wrapper: one binary SVM per class, argmax decision."""

    def __init__(self, **svm_kwargs) -> None:
        self.svm_kwargs = svm_kwargs
        self.classes_: list = []
        self._machines: list[LinearSvm] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "OneVsRestSvm":
        self.classes_ = sorted(set(labels.tolist()))
        if len(self.classes_) < 2:
            raise ReproError("need at least two classes")
        self._machines = []
        for cls in self.classes_:
            binary = np.where(labels == cls, 1, -1)
            self._machines.append(
                LinearSvm(**self.svm_kwargs).fit(features, binary)
            )
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._machines:
            raise ReproError("SVM is not fitted")
        scores = np.stack(
            [machine.decision(features) for machine in self._machines], axis=1
        )
        winners = np.argmax(scores, axis=1)
        return np.array([self.classes_[w] for w in winners])

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(features) == labels))


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split, stratification-free (callers balance classes)."""
    if not 0 < test_fraction < 1:
        raise ReproError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(labels))
    cut = max(1, int(len(labels) * test_fraction))
    test_idx, train_idx = order[:cut], order[cut:]
    return features[train_idx], labels[train_idx], features[test_idx], labels[test_idx]
