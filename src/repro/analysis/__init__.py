"""Analysis utilities: SVM classifier, statistics, fingerprint vectors."""

from repro.analysis.stats import (
    GaussianFit,
    fit_gaussian,
    frequency_vector,
    mean,
    stdev,
)
from repro.analysis.svm import LinearSvm, OneVsRestSvm, train_test_split

__all__ = [
    "GaussianFit",
    "LinearSvm",
    "OneVsRestSvm",
    "fit_gaussian",
    "frequency_vector",
    "mean",
    "stdev",
    "train_test_split",
]
