"""E6 — Fig 5: eviction rates of PSFP and SSBP vs eviction-set size.

PSFP: abrupt threshold at 12 (12-entry fully associative, LRU).
SSBP: gradual curve crossing 50% around 16 and ~90% at 32 (set-based
selection with random-looking placement).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.revng.organization import OrganizationExperiment
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier

__all__ = ["run"]


def run(
    psfp_trials: int = 6,
    ssbp_trials: int = 40,
    seed: int = 2024,
) -> ExperimentResult:
    harness = StldHarness()
    classifier = TimingClassifier(harness)
    classifier.calibrate()
    experiment = OrganizationExperiment(harness, classifier, seed=seed)

    psfp = experiment.psfp_curve(sizes=[4, 8, 10, 11, 12, 13, 16], trials=psfp_trials)
    ssbp = experiment.ssbp_curve(sizes=[2, 4, 8, 16, 24, 32, 40], trials=ssbp_trials)

    result = ExperimentResult(
        experiment_id="fig5",
        title="Eviction rate of PSFP and SSBP under different eviction sizes",
        headers=["predictor", "eviction size", "eviction rate"],
        paper_claim=(
            "PSFP: never evicted below 12, always at 12 (size = 12); "
            "SSBP: >50% at 16, ~90% at 32"
        ),
    )
    for size in sorted(psfp.rates):
        result.add_row("PSFP", size, f"{psfp.rates[size]:.0%}")
    for size in sorted(ssbp.rates):
        result.add_row("SSBP", size, f"{ssbp.rates[size]:.0%}")

    result.metrics["psfp_threshold"] = psfp.threshold(0.5) or -1
    result.metrics["ssbp_rate_at_16"] = ssbp.rates.get(16, 0.0)
    result.metrics["ssbp_rate_at_32"] = ssbp.rates.get(32, 0.0)
    result.add_note("PSFP size conclusion: 12 entries, fully associative")
    return result
