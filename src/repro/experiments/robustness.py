"""E24/E25 — the robustness curve: the attack stack under interference.

Real systems are not quiet: SMT co-runners pollute the caches and the
predictor tables, the scheduler preempts the attacker mid-measurement,
and hardened timers drift.  These drivers sweep the
:mod:`repro.interference` presets (``quiet`` → ``adversarial``) over the
two result families the paper's Section V builds on:

* **robustness-channel** — one cache-transport capacity point per
  preset, with the hardened receiver (repetition code + framing
  resynchronization).  Goodput must degrade monotonically-in-spirit as
  the presets get louder; the ``quiet`` point is byte-identical to an
  interference-free machine.
* **robustness-extraction** — the Spectre-STL extraction campaign per
  preset, twice: the hardened protocol stack (robust calibration,
  confidence-weighted reads, bounded retry, recalibration on drift)
  against the pre-hardening stack pinned via ``hardened=False``.  The
  hardened arm must stay usable (>= 80% recovery) under ``adversarial``
  while the pinned arm collapses — the measured value of every
  robustness mechanism in this PR.

Both drivers are seeded and single-threaded per point, so the whole
curve is byte-identical across reruns and ``--jobs`` settings (the
``interference-smoke`` make target enforces this).
"""

from __future__ import annotations

from repro.attacks.capacity import CapacityConfig, measure_capacity
from repro.attacks.extraction import SecretExtraction
from repro.experiments.base import ExperimentResult
from repro.interference import PRESET_ORDER

__all__ = ["run_channel", "run_extraction"]

#: Fixed shape of the per-preset capacity point: the cache transport
#: (its goodput responds cleanly to preemption-inflated cycles), a
#: 3-fold repetition code and mild symbol noise so the coding layer has
#: errors to correct, and the resynchronizing receiver.
_CHANNEL_POINT = dict(
    channel="cache", width=4, repeat=3, payload_bytes=16,
    noise=0.06, resync=True,
)

#: The extraction secret: same generator as ``stl-extraction`` so the
#: quiet arm is directly comparable against that experiment's campaign.
_SECRET = bytes((index * 37 + 11) & 0xFF for index in range(16))


def run_channel(seed: int = 2601) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="robustness-channel",
        title="Covert-channel capacity per interference preset",
        headers=[
            "preset", "raw sym err", "byte err", "recovered",
            "confidence", "goodput (b/s)",
        ],
        paper_claim=(
            "the covert channels remain usable on a loaded system; "
            "throughput degrades gracefully with system noise "
            "(Section IV-D)"
        ),
    )
    for preset in PRESET_ORDER:
        report = measure_capacity(
            CapacityConfig(
                interference=None if preset == "quiet" else preset,
                seed=seed,
                **_CHANNEL_POINT,
            )
        )
        result.add_row(
            preset,
            f"{report.raw_symbol_error_rate:.3f}",
            f"{report.corrected_byte_error_rate:.3f}",
            f"{report.recovered_bytes}/{report.config.payload_bytes}",
            f"{report.confidence:.3f}",
            f"{report.goodput_bits_per_second:,.0f}",
        )
        result.metrics[f"{preset}_goodput_bps"] = round(
            report.goodput_bits_per_second
        )
        result.metrics[f"{preset}_byte_errors"] = report.corrected_byte_errors
        result.metrics[f"{preset}_confidence"] = round(report.confidence, 4)
    result.add_note(
        "quiet runs on an interference-free machine (byte-identical to "
        "the channel-capacity experiment's conditions); louder presets "
        "attach the seeded interference model to the same seeded machine"
    )
    return result


def run_extraction(seed: int = 2024) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="robustness-extraction",
        title="Spectre-STL extraction: hardened vs pinned stack per preset",
        headers=[
            "preset", "stack", "bytes recovered", "accuracy",
            "low-conf", "retries", "recal", "outcome",
        ],
        paper_claim=(
            "end-to-end extraction survives realistic system noise when "
            "the attacker calibrates and votes robustly (Section V-B)"
        ),
    )
    for preset in PRESET_ORDER:
        interference = None if preset == "quiet" else preset
        for hardened in (True, False):
            campaign = SecretExtraction(
                seed=seed,
                mitigation="none",
                interference=interference,
                hardened=hardened,
            )
            report = campaign.run(_SECRET)
            stack = "hardened" if hardened else "pinned"
            good = round(report.accuracy * len(_SECRET))
            outcome = report.failure or (
                "degraded" if report.degraded else "full recovery"
            )
            result.add_row(
                preset, stack, f"{good}/{len(_SECRET)}",
                f"{report.accuracy:.0%}", report.low_confidence_bytes,
                report.retries, report.recalibrations, outcome,
            )
            result.metrics[f"{preset}_{stack}_accuracy"] = round(
                report.accuracy, 4
            )
            if hardened:
                result.metrics[f"{preset}_low_confidence_bytes"] = (
                    report.low_confidence_bytes
                )
    result.add_note(
        "same seeded campaign per arm on a fresh machine; the pinned "
        "stack is the pre-hardening protocol (single-sample midpoint "
        "calibration, exact stickiness votes, no retry or recalibration)"
    )
    return result
