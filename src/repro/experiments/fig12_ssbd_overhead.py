"""E15 — Fig 12: SSBD performance overhead on SPEC2017-like workloads."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.mitigations.ssbd import ssbd_overhead

__all__ = ["run"]


def run(
    operations: int = 300, repetitions: int = 3, seed: int = 0
) -> ExperimentResult:
    timings = ssbd_overhead(
        operations=operations, repetitions=repetitions, seed=seed
    )
    result = ExperimentResult(
        experiment_id="fig12",
        title="Performance evaluation of SSBD on SPEC2017-like workloads",
        headers=["benchmark", "baseline cycles", "SSBD cycles", "overhead"],
        paper_claim=(
            "significant overhead for most benchmarks; perlbench and "
            "exchange2 exceed 20%"
        ),
    )
    for name, timing in timings.items():
        result.add_row(
            name,
            timing.baseline_cycles,
            timing.ssbd_cycles,
            f"{timing.overhead:.1%}",
        )
    exceeding = [n for n, t in timings.items() if t.overhead > 0.20]
    result.metrics["benchmarks_over_20pct"] = ", ".join(sorted(exceeding))
    result.metrics["mean_overhead"] = round(
        sum(t.overhead for t in timings.values()) / len(timings), 4
    )
    return result
