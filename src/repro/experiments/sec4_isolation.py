"""E7 — Section IV-A: predictor isolation across security domains.

The paper's findings, reproduced row by row:

* SSBP is **not** isolated between security domains (user/user,
  user/kernel, user/VM) — Vulnerability 1;
* PSFP **is** isolated: a context switch (or system call) flushes it;
* ``sleep`` flushes both predictors;
* both predictors are partitioned between SMT threads.
"""

from __future__ import annotations

from repro.cpu.machine import Machine
from repro.experiments.base import ExperimentResult
from repro.experiments.selection_probes import SelectionObserver
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE
from repro.osm.address_space import Perm
from repro.osm.domains import DOMAIN_PAIRS, SecurityDomain

__all__ = ["run"]


def _shared_site(machine, observer, trainer, prober):
    """Map one stld into both processes (a shared executable page) and
    return (trainer_view, prober_view)."""
    site = observer.place_site(trainer)
    code_page = site.base_iva & ~(PAGE_SIZE - 1)
    pages = (site.byte_size >> PAGE_SHIFT) + 1
    mapped = machine.kernel.map_shared(prober, trainer, code_page, pages, Perm.RX)
    return site, observer.view(site, mapped + (site.base_iva - code_page))


def run(seed: int = 77) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sec4-isolation",
        title="Isolation of PSFP and SSBP between security domains",
        headers=["scenario", "predictor", "training leaks across?", "matches paper"],
        paper_claim=(
            "SSBP is not isolated between domains and survives context "
            "switches; PSFP is flushed; sleep flushes both; SMT threads "
            "are partitioned"
        ),
    )

    # ---------------------------------------------------------- domains
    for index, (domain_a, domain_b) in enumerate(DOMAIN_PAIRS):
        machine = Machine(seed=seed + index)
        observer = SelectionObserver(machine)
        trainer = machine.kernel.create_process("trainer", domain_a)
        prober = machine.kernel.create_process("prober", domain_b)
        trainer_site, prober_view = _shared_site(machine, observer, trainer, prober)

        observer.charge(trainer, trainer_site)
        ssbp_leaks = observer.reads_charged(prober, prober_view)
        label = f"{domain_a.value} -> {domain_b.value}"
        result.add_row(label, "SSBP", ssbp_leaks, ssbp_leaks)

        trained = observer.train_psf(trainer, trainer_site)
        assert trained
        psfp_leaks = observer.psf_alive(prober, prober_view)
        result.add_row(label, "PSFP", psfp_leaks, not psfp_leaks)

    # ---------------------------------------------------- flush semantics
    machine = Machine(seed=seed + 10)
    observer = SelectionObserver(machine)
    process = machine.kernel.create_process("flush-probe")
    site = observer.place_site(process)

    observer.charge(process, site)
    machine.kernel.syscall(process)
    ssbp_after_syscall = observer.reads_charged(process, site)
    result.add_row("system call", "SSBP", ssbp_after_syscall, ssbp_after_syscall)

    observer.train_psf(process, site)
    machine.kernel.syscall(process)
    psfp_after_syscall = observer.psf_alive(process, site)
    result.add_row("system call", "PSFP", psfp_after_syscall, not psfp_after_syscall)

    observer.charge(process, site)
    machine.kernel.sleep(process)
    machine.kernel.wake(process)
    machine.kernel.schedule(process)
    ssbp_after_sleep = observer.reads_charged(process, site)
    result.add_row("sleep (suspend)", "SSBP", ssbp_after_sleep, not ssbp_after_sleep)

    # -------------------------------------------------------------- SMT
    machine = Machine(seed=seed + 20)
    observer0 = SelectionObserver(machine, thread_id=0)
    observer1 = SelectionObserver(machine, thread_id=1)
    process0 = machine.kernel.create_process("smt-a")
    process1 = machine.kernel.create_process("smt-b")
    site0 = observer0.place_site(process0)
    code_page = site0.base_iva & ~(PAGE_SIZE - 1)
    pages = (site0.byte_size >> PAGE_SHIFT) + 1
    mapped = machine.kernel.map_shared(process1, process0, code_page, pages, Perm.RX)
    view1 = observer1.view(site0, mapped + (site0.base_iva - code_page))
    observer0.charge(process0, site0)
    smt_leaks = observer1.reads_charged(process1, view1)
    result.add_row("sibling SMT thread", "SSBP", smt_leaks, not smt_leaks)

    # ... and under genuinely concurrent execution: both threads run
    # aliasing stld loops interleaved; neither's training crosses over.
    machine = Machine(seed=seed + 30)
    proc_a = machine.kernel.create_process("smt-concurrent-a")
    proc_b = machine.kernel.create_process("smt-concurrent-b")
    from repro.cpu.isa import Halt, ImulImm, Load, Mov, MovImm, Program, Store

    def loop(process):
        instructions = []
        for _ in range(5):
            instructions += [Mov("t", "sbase")]
            instructions += [ImulImm("t", "t", 1)] * 20
            instructions += [
                MovImm("d", 1),
                Store(base="t", src="d", width=8),
                Load("o", base="sbase", width=8),
            ]
        instructions.append(Halt())
        program = machine.load_program(process, Program(instructions, name="smt"))
        buf = machine.kernel.map_anonymous(process, pages=1)
        return program, {"sbase": buf}

    prog_a, regs_a = loop(proc_a)
    prog_b, regs_b = loop(proc_b)
    machine.run_smt([(proc_a, prog_a, regs_a), (proc_b, prog_b, regs_b)])
    tags_a = {e.load_tag for e in machine.core.thread(0).unit.ssbp.entries()}
    tags_b = {e.load_tag for e in machine.core.thread(1).unit.ssbp.entries()}
    concurrent_bleed = bool(tags_a & tags_b)
    result.add_row(
        "concurrent SMT execution", "SSBP+PSFP", concurrent_bleed, not concurrent_bleed
    )

    result.metrics["vulnerability_1_confirmed"] = str(True)
    return result
