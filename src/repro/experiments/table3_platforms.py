"""E21 — TABLE III: the attacks work on every evaluated platform.

The paper validates both PoCs on all four machines (Ryzen 9 5900X,
EPYC 7543, Ryzen 5 5600G, Ryzen 7 7735HS) and finds the same PSFP/SSBP
design everywhere.  This experiment runs a small Spectre-CTL leak and
the core reverse-engineering checks on each platform model.
"""

from __future__ import annotations

from repro.attacks.spectre_ctl import SpectreCTL
from repro.core.config import ZEN3_MODELS
from repro.cpu.machine import Machine
from repro.experiments.base import ExperimentResult
from repro.revng.sequences import format_types
from repro.revng.stld import StldHarness

__all__ = ["run"]

_SECRET = b"\x3c"


def run(seed: int = 1900) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table3",
        title="Attack validation across the TABLE III platforms",
        headers=["platform", "uarch", "microcode", "state machine", "Spectre-CTL leak"],
        paper_claim=(
            "the PoCs execute successfully on all four CPUs; all share "
            "the same PSFP/SSBP design"
        ),
    )
    for index, (name, model) in enumerate(sorted(ZEN3_MODELS.items())):
        harness = StldHarness(machine=Machine(model=model, seed=seed + index))
        signature = format_types(harness.run_events("7n, a, 7n"))
        same_design = signature == "7H, G, 4E, 3H"

        attack = SpectreCTL(machine=Machine(model=model, seed=seed + 50 + index))
        attack.find_collisions()
        leaked = attack.leak(_SECRET).recovered == _SECRET

        result.add_row(
            name,
            model.microarch,
            f"{model.microcode:#x}",
            "matches" if same_design else "DIFFERS",
            "ok" if leaked else "FAILED",
        )
        result.metrics[f"{name}:leak"] = str(leaked)
    result.metrics["platforms"] = len(ZEN3_MODELS)
    return result
