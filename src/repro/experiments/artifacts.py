"""JSON artifact I/O for experiment results.

Every campaign run can persist each :class:`ExperimentResult` as a JSON
document (``results/<name>.json`` by default) plus one campaign manifest
(``results/campaign.json``) describing the run as a whole — seeds, wall
times, cache hits, library version.  Artifacts are the machine-readable
counterpart of the text tables: EXPERIMENTS.md's measured-value tables
are regenerated from them (:mod:`repro.experiments.report`), and the
result cache (:mod:`repro.experiments.cache`) stores the same schema.

All writes go through :func:`repro.runtime.atomic.atomic_write_json`
(tmp file + fsync + ``os.replace``): the manifest doubles as the
campaign's crash checkpoint — it is rewritten after every completion and
read back by ``--resume`` — so a reader must never be able to observe a
truncated document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ArtifactError
from repro.experiments.base import ExperimentResult
from repro.runtime.atomic import atomic_write_json

__all__ = [
    "artifact_path",
    "write_artifact",
    "read_artifact",
    "load_artifacts",
    "write_manifest",
    "read_manifest",
    "MANIFEST_NAME",
]

MANIFEST_NAME = "campaign.json"


def artifact_path(directory: str | Path, name: str) -> Path:
    """Where the artifact for experiment ``name`` lives under ``directory``."""
    return Path(directory) / f"{name}.json"


def write_artifact(
    result: ExperimentResult, directory: str | Path, name: str | None = None
) -> Path:
    """Serialize ``result`` to ``<directory>/<name>.json`` and return the path.

    ``name`` defaults to the result's ``experiment_id``; the registry key
    is passed explicitly by the runner because a few drivers reuse an id
    (e.g. ``stl-inplace`` reports ``experiment_id`` of its own).
    """
    path = artifact_path(directory, name or result.experiment_id)
    return atomic_write_json(path, result.to_dict())


def read_artifact(path: str | Path) -> ExperimentResult:
    """Load one artifact; raises :class:`ArtifactError` on bad content."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ArtifactError(f"no artifact at {path}") from None
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path} is not valid JSON: {exc}") from exc
    return ExperimentResult.from_dict(data)


def load_artifacts(directory: str | Path) -> dict[str, ExperimentResult]:
    """Read every ``*.json`` artifact in ``directory``, keyed by file stem.

    The campaign manifest is skipped; unreadable files raise.
    """
    directory = Path(directory)
    results: dict[str, ExperimentResult] = {}
    for path in sorted(directory.glob("*.json")):
        if path.name == MANIFEST_NAME:
            continue
        results[path.stem] = read_artifact(path)
    return results


def write_manifest(
    directory: str | Path, entries: Iterable[dict[str, Any]], **extra: Any
) -> Path:
    """Write the campaign manifest summarizing one runner invocation.

    ``entries`` is one dict per experiment (name, seed, wall time, cache
    hit, worker); ``extra`` lands at the top level (jobs, version, ...).
    """
    path = Path(directory) / MANIFEST_NAME
    payload = {"experiments": list(entries), **extra}
    return atomic_write_json(path, payload)


def read_manifest(directory: str | Path) -> dict[str, Any]:
    path = Path(directory) / MANIFEST_NAME
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ArtifactError(f"no campaign manifest in {directory}") from None
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"manifest {path} is not valid JSON: {exc}") from exc
