"""E4 — Fig 4 / Section III-C.2: recovering the selection hash.

Collect colliding IPA pairs (the PTEditor-assisted phase: place stld
copies, record which load IPAs select the same entry), observe the
stride-12 XOR regularity of Fig 4, and recover the fold hash.
"""

from __future__ import annotations

from repro.core.hashfn import HASH_BITS, xor_profile
from repro.experiments.base import ExperimentResult
from repro.revng.hash_recovery import (
    collect_colliding_pairs,
    infer_stride,
    recover_fold_hash,
)

__all__ = ["run", "collect_colliding_pairs"]


def run(count: int = 64, seed: int = 4) -> ExperimentResult:
    pairs = collect_colliding_pairs(count=count, seed=seed)
    stride = infer_stride(pairs)
    recovered = recover_fold_hash(pairs)
    zero_profiles = sum(
        xor_profile(a, b) == [0] * HASH_BITS for a, b in pairs
    )

    result = ExperimentResult(
        experiment_id="fig4",
        title="Mathematical characteristics of colliding address pairs",
        headers=["quantity", "measured", "paper"],
        paper_claim=(
            "colliding pairs share XOR parity in bit groups at stride 12; "
            "the hash is 12 XORs over 4 bits each"
        ),
    )
    result.add_row("colliding pairs analysed", len(pairs), "many")
    result.add_row(
        "pairs with all-zero stride-12 XOR profile",
        f"{zero_profiles}/{len(pairs)}", "all",
    )
    result.add_row("inferred fold stride", stride, "12")
    result.add_row("recovered hash verified", recovered == 12, "yes")
    result.metrics["stride"] = stride
    result.metrics["profile_consistency"] = zero_profiles / len(pairs)
    return result
