"""Experiment registry and campaign runner.

``repro-experiments --list`` shows every table/figure reproduction;
``repro-experiments fig2 table1`` runs a selection; no arguments runs
the quick set (everything but the long leak campaigns).

The runner is a campaign engine, not a loop:

* **parallel scheduling** — every driver builds its own ``Machine``, so
  experiments are embarrassingly parallel; ``--jobs N`` fans them out
  across a :class:`concurrent.futures.ProcessPoolExecutor`;
* **result cache** — results are content-addressed by (experiment name,
  seed, :class:`CpuModel`, package version) under ``.repro-cache/``;
  unchanged experiments are replayed from disk (``--no-cache`` opts out);
* **JSON artifacts** — ``--json DIR`` writes each result to
  ``DIR/<name>.json`` plus a ``campaign.json`` manifest, the inputs to
  :mod:`repro.experiments.report`.

Rendered output is emitted in request order whatever the completion
order, so ``--jobs 8`` and ``--jobs 1`` print byte-identical reports.
See docs/experiments.md for the full catalog.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import UnknownExperimentError
from repro.experiments import (
    attack_evals,
    fig2_exec_types,
    fig4_hash,
    fig5_eviction,
    fig7_collisions,
    fig11_fingerprint,
    fig12_ssbd_overhead,
    sec3_selection,
    sec4_isolation,
    sec4_transient,
    sec5_extensions,
    sec6_mitigations,
    table1_state_machine,
    table2_counters,
    table3_platforms,
    table4_comparison,
)
from repro.experiments.artifacts import write_artifact, write_manifest
from repro.experiments.base import ExperimentResult
from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache, cache_key

__all__ = [
    "EXPERIMENTS",
    "QUICK_SET",
    "COST_TIERS",
    "ExperimentSpec",
    "run_experiment",
    "run_campaign",
    "main",
]

COST_TIERS = ("fast", "medium", "slow")


@dataclass(frozen=True)
class ExperimentSpec:
    """One registry entry: the driver plus its catalog metadata."""

    driver: Callable[..., ExperimentResult]
    artifact: str          # paper table/figure/section this regenerates
    cost: str              # "fast" | "medium" | "slow"
    default_seed: int      # the driver's own default, made explicit


#: name -> spec; insertion order is the paper's presentation order.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig2": ExperimentSpec(fig2_exec_types.run, "Fig 2", "fast", 2024),
    "table1": ExperimentSpec(table1_state_machine.run, "TABLE I", "fast", 11),
    "sec3-selection": ExperimentSpec(sec3_selection.run, "Section III-C.1", "fast", 31),
    "fig4": ExperimentSpec(fig4_hash.run, "Fig 4", "fast", 4),
    "table2": ExperimentSpec(table2_counters.run, "TABLE II", "fast", 2024),
    "fig5": ExperimentSpec(fig5_eviction.run, "Fig 5", "medium", 2024),
    "sec4-isolation": ExperimentSpec(sec4_isolation.run, "Section IV-A", "fast", 77),
    "fig7": ExperimentSpec(fig7_collisions.run, "Fig 7", "medium", 900),
    "sec4-transient": ExperimentSpec(sec4_transient.run, "Figs 8-9", "fast", 8),
    "spectre-stl": ExperimentSpec(attack_evals.run_stl, "Section V-B", "slow", 5150),
    "spectre-ctl": ExperimentSpec(attack_evals.run_ctl, "Section V-C.1", "slow", 5151),
    "spectre-ctl-web": ExperimentSpec(attack_evals.run_web, "Section V-C.2", "slow", 5152),
    "attack-comparison": ExperimentSpec(attack_evals.run_all, "Section V", "slow", 5150),
    "fig11": ExperimentSpec(fig11_fingerprint.run, "Fig 11", "slow", 7),
    "fig12": ExperimentSpec(fig12_ssbd_overhead.run, "Fig 12", "fast", 0),
    "table3": ExperimentSpec(table3_platforms.run, "TABLE III", "slow", 1900),
    "table4": ExperimentSpec(table4_comparison.run, "TABLE IV", "medium", 4000),
    "sec6-mitigations": ExperimentSpec(sec6_mitigations.run, "Section VI", "slow", 616),
    "covert-channel": ExperimentSpec(
        sec5_extensions.run_covert_channel, "Section IV-D", "medium", 42
    ),
    "stl-inplace": ExperimentSpec(
        sec5_extensions.run_stl_inplace, "Section V-B", "slow", 24
    ),
    "address-leak": ExperimentSpec(
        sec5_extensions.run_address_leak, "Section V-D", "medium", 808
    ),
}

#: Default selection: everything that completes within a couple minutes.
QUICK_SET = [name for name, spec in EXPERIMENTS.items() if spec.cost != "slow"]


def _spec(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise UnknownExperimentError(name, known=list(EXPERIMENTS)) from None


def effective_seed(name: str, seed: int | None = None) -> int:
    """The seed experiment ``name`` actually runs with.

    ``seed`` overrides; None falls back to the driver's published default
    (part of the registry so cache keys are stable and documented).
    """
    return _spec(name).default_seed if seed is None else seed


def run_experiment(name: str, seed: int | None = None) -> ExperimentResult:
    """Run one experiment driver synchronously and return its result.

    Raises :class:`repro.errors.UnknownExperimentError` for names not in
    the registry — never ``SystemExit``; the CLI owns exit codes.
    """
    spec = _spec(name)
    return spec.driver(seed=effective_seed(name, seed))


def _execute(name: str, seed: int | None) -> dict[str, Any]:
    """Worker entry point: run one experiment, return the artifact dict.

    Runs in the pool processes under ``--jobs N`` (and inline for serial
    runs, so both paths produce identical JSON-normalized results).  The
    dict form crosses the process boundary instead of the dataclass so a
    worker can never ship cells the artifact layer would not round-trip.
    """
    started = time.perf_counter()
    result = run_experiment(name, seed)
    result.seed = effective_seed(name, seed)
    result.wall_time_s = round(time.perf_counter() - started, 3)
    result.worker = f"pid:{os.getpid()}"
    return result.to_dict()


def run_campaign(
    names: Sequence[str],
    *,
    jobs: int = 1,
    seed: int | None = None,
    use_cache: bool = True,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    json_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[ExperimentResult]:
    """Run a set of experiments, possibly in parallel, with caching.

    Returns results in ``names`` order regardless of completion order.
    Unknown names raise :class:`UnknownExperimentError` before any work
    is scheduled.  ``progress`` (if given) receives one human-readable
    line per completion event.
    """
    for name in names:
        _spec(name)
    say = progress or (lambda line: None)
    cache = ResultCache(cache_dir) if use_cache else None

    results: dict[str, ExperimentResult] = {}
    keys: dict[str, str] = {}
    pending: list[str] = []
    for name in names:
        keys[name] = cache_key(name, effective_seed(name, seed))
        cached = cache.get(keys[name]) if cache is not None else None
        if cached is not None:
            results[name] = cached
            say(f"{name}: cache hit ({keys[name][:12]})")
        else:
            pending.append(name)

    if pending and jobs > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_execute, name, seed): name for name in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    name = futures[future]
                    result = ExperimentResult.from_dict(future.result())
                    results[name] = result
                    say(f"{name}: completed in {result.wall_time_s:.1f}s "
                        f"[{result.worker}]")
    else:
        for name in pending:
            result = ExperimentResult.from_dict(_execute(name, seed))
            results[name] = result
            say(f"{name}: completed in {result.wall_time_s:.1f}s")

    if cache is not None:
        for name in pending:
            cache.put(keys[name], results[name])

    ordered = [results[name] for name in names]
    if json_dir is not None:
        for name, result in zip(names, ordered):
            write_artifact(result, json_dir, name)
        write_manifest(
            json_dir,
            (
                {
                    "name": name,
                    "seed": result.seed,
                    "wall_time_s": result.wall_time_s,
                    "worker": result.worker,
                    "cache_hit": result.cache_hit,
                    "cache_key": keys[name],
                }
                for name, result in zip(names, ordered)
            ),
            jobs=jobs,
            cached=sum(result.cache_hit for result in ordered),
            version=_version(),
        )
    return ordered


def _version() -> str:
    from repro import __version__

    return __version__


class _UsageError(Exception):
    """Bad CLI usage (not an unknown experiment); exits 2 like argparse."""


def _select(args: argparse.Namespace) -> list[str]:
    names = list(args.names) or (list(EXPERIMENTS) if args.all else list(QUICK_SET))
    if args.cost:
        tiers = {tier.strip() for tier in args.cost.split(",")}
        unknown = tiers - set(COST_TIERS)
        if unknown:
            raise _UsageError(
                f"unknown cost tier(s): {', '.join(sorted(unknown))}; "
                f"choose from {', '.join(COST_TIERS)}"
            )
        names = [name for name in names if EXPERIMENTS[name].cost in tiers]
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures on the simulator.",
    )
    parser.add_argument("names", nargs="*", help="experiments to run")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial)",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="write per-experiment JSON artifacts and a campaign manifest",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override every driver's default seed",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-run; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result cache location (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--cost", default=None, metavar="TIERS",
        help="filter the selection by cost tier(s), e.g. fast or fast,medium",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, spec in EXPERIMENTS.items():
            print(f"{name:20s} {spec.artifact:18s} [{spec.cost}]")
        return 0

    try:
        names = _select(args)
        started = time.perf_counter()
        results = run_campaign(
            names,
            jobs=max(1, args.jobs),
            seed=args.seed,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            json_dir=args.json,
            progress=lambda line: print(f"  .. {line}", file=sys.stderr),
        )
    except (UnknownExperimentError, _UsageError) as exc:
        print(f"repro-experiments: {exc}", file=sys.stderr)
        return 2

    for name, result in zip(names, results):
        print(result.render())
        suffix = " (cached)" if result.cache_hit else ""
        print(f"[{name} completed in {result.wall_time_s:.1f}s{suffix}]")
        print()
    cached = sum(result.cache_hit for result in results)
    print(
        f"campaign: {len(results)} experiments, {cached} from cache, "
        f"{time.perf_counter() - started:.1f}s wall with --jobs {max(1, args.jobs)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
