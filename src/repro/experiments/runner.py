"""Experiment registry and campaign runner.

``repro-experiments --list`` shows every table/figure reproduction;
``repro-experiments fig2 table1`` runs a selection; no arguments runs
the quick set (everything but the long leak campaigns).

The runner is a campaign engine, not a loop:

* **parallel scheduling** — every driver builds its own ``Machine``, so
  experiments are embarrassingly parallel; ``--jobs N`` fans them out
  across a :class:`concurrent.futures.ProcessPoolExecutor`;
* **result cache** — results are content-addressed by (experiment name,
  seed, :class:`CpuModel`, package version) under ``.repro-cache/``;
  unchanged experiments are replayed from disk (``--no-cache`` opts out);
* **JSON artifacts** — ``--json DIR`` writes each result to
  ``DIR/<name>.json`` plus a ``campaign.json`` manifest, the inputs to
  :mod:`repro.experiments.report`.

Rendered output is emitted in request order whatever the completion
order, so ``--jobs 8`` and ``--jobs 1`` print byte-identical reports.
See docs/experiments.md for the full catalog.

Execution is resilient (see docs/resilience.md): workers run under the
supervised pool in :mod:`repro.runtime.supervisor` — per-task
``--timeout`` deadlines, ``--retries`` with deterministic backoff, crash
isolation — the manifest is checkpointed atomically after every
completion so ``--resume`` continues an interrupted campaign, and tasks
that exhaust their retries become structured failure entries instead of
aborting the run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import (
    ArtifactError,
    CampaignInterrupted,
    ConfigError,
    UnknownExperimentError,
)
from repro.experiments import (
    attack_e2e,
    attack_evals,
    fig2_exec_types,
    fig4_hash,
    fig5_eviction,
    fig7_collisions,
    fig11_fingerprint,
    fig12_ssbd_overhead,
    robustness,
    scan_crossval,
    sec3_selection,
    sec4_isolation,
    sec4_transient,
    sec5_extensions,
    sec6_mitigations,
    table1_state_machine,
    table2_counters,
    table3_platforms,
    table4_comparison,
)
from repro.experiments.artifacts import (
    MANIFEST_NAME,
    artifact_path,
    read_artifact,
    read_manifest,
    write_artifact,
    write_manifest,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from repro.runtime import exitcodes
from repro.runtime.chaos import CHAOS_ENV_VAR, ChaosPlan
from repro.runtime.cliutil import apply_engine, build_parser
from repro.runtime.quarantine import quarantine
from repro.runtime.supervisor import (
    DEFAULT_GRACE_S,
    DEFAULT_RETRIES,
    TaskFailure,
    run_supervised,
)

__all__ = [
    "EXPERIMENTS",
    "QUICK_SET",
    "COST_TIERS",
    "ExperimentSpec",
    "CampaignResult",
    "run_experiment",
    "run_campaign",
    "main",
]

COST_TIERS = ("fast", "medium", "slow")


@dataclass(frozen=True)
class ExperimentSpec:
    """One registry entry: the driver plus its catalog metadata."""

    driver: Callable[..., ExperimentResult]
    artifact: str          # paper table/figure/section this regenerates
    cost: str              # "fast" | "medium" | "slow"
    default_seed: int      # the driver's own default, made explicit


#: name -> spec; insertion order is the paper's presentation order.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig2": ExperimentSpec(fig2_exec_types.run, "Fig 2", "fast", 2024),
    "table1": ExperimentSpec(table1_state_machine.run, "TABLE I", "fast", 11),
    "sec3-selection": ExperimentSpec(sec3_selection.run, "Section III-C.1", "fast", 31),
    "fig4": ExperimentSpec(fig4_hash.run, "Fig 4", "fast", 4),
    "table2": ExperimentSpec(table2_counters.run, "TABLE II", "fast", 2024),
    "fig5": ExperimentSpec(fig5_eviction.run, "Fig 5", "medium", 2024),
    "sec4-isolation": ExperimentSpec(sec4_isolation.run, "Section IV-A", "fast", 77),
    "fig7": ExperimentSpec(fig7_collisions.run, "Fig 7", "medium", 900),
    "sec4-transient": ExperimentSpec(sec4_transient.run, "Figs 8-9", "fast", 8),
    "spectre-stl": ExperimentSpec(attack_evals.run_stl, "Section V-B", "slow", 5150),
    "spectre-ctl": ExperimentSpec(attack_evals.run_ctl, "Section V-C.1", "slow", 5151),
    "spectre-ctl-web": ExperimentSpec(attack_evals.run_web, "Section V-C.2", "slow", 5152),
    "attack-comparison": ExperimentSpec(attack_evals.run_all, "Section V", "slow", 5150),
    "fig11": ExperimentSpec(fig11_fingerprint.run, "Fig 11", "slow", 7),
    "fig12": ExperimentSpec(fig12_ssbd_overhead.run, "Fig 12", "fast", 0),
    "table3": ExperimentSpec(table3_platforms.run, "TABLE III", "slow", 1900),
    "table4": ExperimentSpec(table4_comparison.run, "TABLE IV", "medium", 4000),
    "sec6-mitigations": ExperimentSpec(sec6_mitigations.run, "Section VI", "slow", 616),
    "covert-channel": ExperimentSpec(
        sec5_extensions.run_covert_channel, "Section IV-D", "medium", 42
    ),
    "stl-inplace": ExperimentSpec(
        sec5_extensions.run_stl_inplace, "Section V-B", "slow", 24
    ),
    "address-leak": ExperimentSpec(
        sec5_extensions.run_address_leak, "Section V-D", "medium", 808
    ),
    "channel-capacity": ExperimentSpec(
        attack_e2e.run_capacity, "Section IV-D", "medium", 713
    ),
    "stl-extraction": ExperimentSpec(
        attack_e2e.run_extraction, "Section V-B", "slow", 2024
    ),
    "aslr-derand": ExperimentSpec(
        attack_e2e.run_aslr, "Section V-D", "medium", 4096
    ),
    "robustness-channel": ExperimentSpec(
        robustness.run_channel, "Section IV-D", "medium", 2601
    ),
    "robustness-extraction": ExperimentSpec(
        robustness.run_extraction, "Section V-B", "slow", 2024
    ),
    "scan-crossval": ExperimentSpec(
        scan_crossval.run, "Section VI (tooling)", "medium", 902
    ),
}

#: Default selection: everything that completes within a couple minutes.
QUICK_SET = [name for name, spec in EXPERIMENTS.items() if spec.cost != "slow"]


def _spec(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise UnknownExperimentError(name, known=list(EXPERIMENTS)) from None


def effective_seed(name: str, seed: int | None = None) -> int:
    """The seed experiment ``name`` actually runs with.

    ``seed`` overrides; None falls back to the driver's published default
    (part of the registry so cache keys are stable and documented).
    """
    return _spec(name).default_seed if seed is None else seed


def run_experiment(name: str, seed: int | None = None) -> ExperimentResult:
    """Run one experiment driver synchronously and return its result.

    Raises :class:`repro.errors.UnknownExperimentError` for names not in
    the registry — never ``SystemExit``; the CLI owns exit codes.
    """
    spec = _spec(name)
    return spec.driver(seed=effective_seed(name, seed))


def _execute(
    name: str,
    seed: int | None,
    stable_meta: bool = False,
    metrics: bool = False,
) -> dict[str, Any]:
    """Worker entry point: run one experiment, return the artifact dict.

    Runs in the supervised pool processes (and inline for plain serial
    runs, so both paths produce identical JSON-normalized results).  The
    dict form crosses the process boundary instead of the dataclass so a
    worker can never ship cells the artifact layer would not round-trip.
    ``stable_meta`` zeroes the volatile run metadata (wall time, worker
    pid) so artifacts and manifests become byte-comparable across runs —
    the mode the chaos/resume convergence checks rely on.  ``metrics``
    attaches this task's telemetry-registry delta (counters/histograms
    only — wall-clock timers are excluded, so the rollup is exactly as
    deterministic as the result rows).
    """
    from repro.telemetry import registry

    started = time.perf_counter()
    before = registry().snapshot(timers=False) if metrics else None
    result = run_experiment(name, seed)
    result.seed = effective_seed(name, seed)
    if metrics:
        result.telemetry = registry().delta_since(before, timers=False)
    if stable_meta:
        result.wall_time_s = 0.0
        result.worker = "-"
    else:
        result.wall_time_s = round(time.perf_counter() - started, 3)
        result.worker = f"pid:{os.getpid()}"
    return result.to_dict()


def _execute_task(payload: dict) -> dict[str, Any]:
    """Supervised-pool adapter around :func:`_execute` (payload dict in)."""
    return _execute(
        payload["name"],
        payload["seed"],
        payload["stable_meta"],
        payload.get("metrics", False),
    )


class CampaignResult(list):
    """Completed results in request order, plus campaign telemetry.

    A list of :class:`ExperimentResult` (failed/unfinished names are
    absent — ``completed_names`` is the parallel name list), with the
    structured failures, quarantine count and resume statistics the
    manifest also records.
    """

    def __init__(
        self,
        results: Sequence[ExperimentResult] = (),
        *,
        names: Sequence[str] = (),
        failures: Sequence[TaskFailure] = (),
        quarantined: int = 0,
        resumed: int = 0,
        retried: int = 0,
    ) -> None:
        super().__init__(results)
        self.completed_names = list(names)
        self.failures = list(failures)
        self.quarantined = quarantined
        self.resumed = resumed
        self.retried = retried


def _recover_checkpoint(
    json_dir: str | Path,
    names: Sequence[str],
    seed: int | None,
    keys: dict[str, str],
) -> tuple[dict[str, ExperimentResult], int]:
    """Load completed entries from a previous campaign's checkpoint.

    Resume trusts only what re-validates: a truncated/corrupt manifest is
    quarantined (never deleted) and the per-experiment artifacts are then
    consulted directly; an artifact only counts when it parses and its
    recorded seed matches the current run, and when a readable manifest
    is present its ``cache_key`` must match too (so results from another
    model/version are re-run, not resumed).
    """
    directory = Path(json_dir)
    recovered: dict[str, ExperimentResult] = {}
    quarantined = 0
    listed: dict[str, dict] | None = None
    if (directory / MANIFEST_NAME).exists():
        try:
            manifest = read_manifest(directory)
            listed = {
                entry["name"]: entry
                for entry in manifest.get("experiments", [])
                if entry.get("status", "ok") == "ok" and "name" in entry
            }
        except ArtifactError as exc:
            if quarantine(directory, directory / MANIFEST_NAME,
                          f"unreadable checkpoint manifest: {exc}"):
                quarantined += 1
            listed = None
    for name in names:
        if listed is not None:
            entry = listed.get(name)
            if entry is None or entry.get("cache_key") != keys[name]:
                continue
        path = artifact_path(directory, name)
        if not path.exists():
            continue
        try:
            result = read_artifact(path)
        except ArtifactError as exc:
            if quarantine(directory, path, f"unreadable artifact: {exc}"):
                quarantined += 1
            continue
        if result.seed != effective_seed(name, seed):
            continue
        recovered[name] = result
    return recovered, quarantined


def run_campaign(
    names: Sequence[str],
    *,
    jobs: int = 1,
    seed: int | None = None,
    use_cache: bool = True,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    json_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    resume: bool = False,
    chaos: str | None = None,
    stable_meta: bool = False,
    grace_s: float = DEFAULT_GRACE_S,
    metrics: bool = False,
) -> CampaignResult:
    """Run a set of experiments under the supervised campaign runtime.

    Returns completed results in ``names`` order regardless of completion
    order; tasks that exhaust ``retries`` become :class:`TaskFailure`
    entries on the returned :class:`CampaignResult` (and in the manifest)
    instead of aborting the campaign.  Unknown names raise
    :class:`UnknownExperimentError` before any work is scheduled.

    With ``json_dir`` the manifest is rewritten atomically after every
    completion, so the campaign is checkpointed at all times; ``resume``
    skips entries the checkpoint already completed.  On SIGINT/SIGTERM
    in-flight tasks are drained for ``grace_s`` seconds, the checkpoint
    is written, and :class:`repro.errors.CampaignInterrupted` is raised.
    ``chaos`` arms the test-only fault injector
    (:mod:`repro.runtime.chaos`).  ``progress`` (if given) receives one
    human-readable line per scheduling event.  ``metrics`` attaches each
    task's telemetry rollup to its artifact and a merged rollup to the
    manifest; it disables the result cache for the run (cached results
    carry no telemetry, and mixing instrumented with cached rows would
    make the manifest rollup lie about coverage).
    """
    for name in names:
        _spec(name)
    if resume and json_dir is None:
        raise ConfigError("--resume requires --json DIR (the checkpoint lives there)")
    if metrics:
        use_cache = False
    say = progress or (lambda line: None)
    cache = ResultCache(cache_dir) if use_cache else None
    keys = {name: cache_key(name, effective_seed(name, seed)) for name in names}

    completed: dict[str, ExperimentResult] = {}
    failures: list[TaskFailure] = []
    quarantined = 0
    resumed = 0

    if resume:
        recovered, quarantined = _recover_checkpoint(json_dir, names, seed, keys)
        for name, result in recovered.items():
            completed[name] = result
            say(f"{name}: resumed from checkpoint")
        resumed = len(recovered)

    for name in names:
        if name in completed or cache is None:
            continue
        cached = cache.get(keys[name])
        if cached is not None:
            completed[name] = cached
            say(f"{name}: cache hit ({keys[name][:12]})")

    def _checkpoint(interrupted: bool = False) -> Path | None:
        if json_dir is None:
            return None
        entries: list[dict[str, Any]] = []
        for name in names:
            if name in completed:
                result = completed[name]
                entries.append(
                    {
                        "name": name,
                        "seed": result.seed,
                        "wall_time_s": result.wall_time_s,
                        "worker": result.worker,
                        "cache_hit": result.cache_hit,
                        "cache_key": keys[name],
                        "status": "ok",
                    }
                )
            else:
                failure = next((f for f in failures if f.task == name), None)
                if failure is not None:
                    entries.append(
                        {
                            "name": name,
                            "cache_key": keys[name],
                            "status": "failed",
                            "failure": failure.to_dict(),
                        }
                    )
        extra: dict[str, Any] = {}
        if metrics:
            from repro.telemetry import merge_snapshots

            extra["metrics"] = merge_snapshots(
                [
                    result.telemetry
                    for result in completed.values()
                    if result.telemetry is not None
                ]
            )
        return write_manifest(
            json_dir,
            entries,
            jobs=jobs,
            cached=sum(r.cache_hit for r in completed.values()),
            version=_version(),
            failures=[f.to_dict() for f in failures],
            interrupted=interrupted,
            quarantined=quarantined + (cache.quarantined if cache else 0),
            **extra,
        )

    if json_dir is not None:
        for name in names:
            if name in completed:
                write_artifact(completed[name], json_dir, name)
        _checkpoint()

    def on_result(name: str, result: ExperimentResult) -> None:
        completed[name] = result
        if cache is not None:
            cache.put(keys[name], result)
        if json_dir is not None:
            write_artifact(result, json_dir, name)
            _checkpoint()
        say(f"{name}: completed in {result.wall_time_s:.1f}s [{result.worker}]")

    pending = [name for name in names if name not in completed]
    interrupted = False
    chaos_plan = ChaosPlan.from_spec(chaos) if chaos else None
    try:
        if pending:
            report = run_supervised(
                [
                    (
                        name,
                        {
                            "name": name,
                            "seed": seed,
                            "stable_meta": stable_meta,
                            "metrics": metrics,
                        },
                    )
                    for name in pending
                ],
                _execute_task,
                jobs=jobs,
                timeout=timeout,
                retries=retries,
                batch=1,  # experiments are heavy and heterogeneous
                chaos=chaos_plan,
                validate=ExperimentResult.from_dict,
                on_result=on_result,
                progress=say,
                grace_s=grace_s,
            )
            failures.extend(report.failures)
            interrupted = report.interrupted
            retried = report.retried
        else:
            retried = 0
    finally:
        if chaos_plan is not None:
            chaos_plan.cleanup()

    checkpoint_path = _checkpoint(interrupted=interrupted)
    campaign = CampaignResult(
        [completed[name] for name in names if name in completed],
        names=[name for name in names if name in completed],
        failures=failures,
        quarantined=quarantined + (cache.quarantined if cache else 0),
        resumed=resumed,
        retried=retried,
    )
    if interrupted:
        raise CampaignInterrupted(
            f"campaign interrupted with {len(campaign)}/{len(names)} "
            f"experiment(s) checkpointed",
            partial=campaign,
            checkpoint=checkpoint_path,
        )
    return campaign


def _version() -> str:
    from repro import __version__

    return __version__


class _UsageError(Exception):
    """Bad CLI usage (not an unknown experiment); exits 2 like argparse."""


def _select(args: argparse.Namespace) -> list[str]:
    names = list(args.names) or (list(EXPERIMENTS) if args.all else list(QUICK_SET))
    if args.cost:
        tiers = {tier.strip() for tier in args.cost.split(",")}
        unknown = tiers - set(COST_TIERS)
        if unknown:
            raise _UsageError(
                f"unknown cost tier(s): {', '.join(sorted(unknown))}; "
                f"choose from {', '.join(COST_TIERS)}"
            )
        names = [name for name in names if EXPERIMENTS[name].cost in tiers]
    return names


def main(argv: list[str] | None = None) -> int:
    parser = build_parser(
        "repro-experiments",
        "Reproduce the paper's tables and figures on the simulator.",
    )
    parser.add_argument("names", nargs="*", help="experiments to run")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial)",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="write per-experiment JSON artifacts and a campaign manifest",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override every driver's default seed",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-run; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result cache location (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--cost", default=None, metavar="TIERS",
        help="filter the selection by cost tier(s), e.g. fast or fast,medium",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-experiment deadline; a hung worker is killed and retried",
    )
    parser.add_argument(
        "--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
        help=f"retry budget per experiment after a crash/timeout/error "
             f"(default {DEFAULT_RETRIES}, deterministic backoff)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip experiments already completed in the --json DIR checkpoint "
             "(after a crash or Ctrl-C)",
    )
    parser.add_argument(
        "--stable-meta", action="store_true",
        help="zero volatile run metadata (wall times, worker pids) so "
             "artifacts and manifests are byte-comparable across runs",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="attach per-task telemetry rollups (pipeline counters and "
             "histograms) to artifacts and a merged rollup to the "
             "manifest; implies --no-cache",
    )
    parser.add_argument(
        "--chaos", default=os.environ.get(CHAOS_ENV_VAR), metavar="SPEC",
        help="self-test: inject runtime faults, e.g. "
             "'crash@fig4,hang@table1,corrupt@fig2,interrupt@fig5' "
             f"(default from ${CHAOS_ENV_VAR})",
    )
    args = parser.parse_args(argv)
    apply_engine(args)

    if args.list:
        for name, spec in EXPERIMENTS.items():
            print(f"{name:20s} {spec.artifact:18s} [{spec.cost}]")
        return exitcodes.EXIT_OK

    try:
        names = _select(args)
        if args.resume and args.json is None:
            raise _UsageError("--resume requires --json DIR")
        started = time.perf_counter()
        results = run_campaign(
            names,
            jobs=max(1, args.jobs),
            seed=args.seed,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            json_dir=args.json,
            progress=lambda line: print(f"  .. {line}", file=sys.stderr),
            timeout=args.timeout,
            retries=max(0, args.retries),
            resume=args.resume,
            chaos=args.chaos,
            stable_meta=args.stable_meta,
            metrics=args.metrics,
        )
    except (UnknownExperimentError, ConfigError, _UsageError) as exc:
        print(f"repro-experiments: {exc}", file=sys.stderr)
        return exitcodes.EXIT_USAGE
    except CampaignInterrupted as exc:
        print(f"repro-experiments: {exc}", file=sys.stderr)
        print(
            f"repro-experiments: checkpoint written to {args.json}; "
            f"re-run with --resume --json {args.json} to continue",
            file=sys.stderr,
        )
        return exitcodes.EXIT_INTERRUPTED

    for name, result in zip(results.completed_names, results):
        print(result.render())
        suffix = " (cached)" if result.cache_hit else ""
        print(f"[{name} completed in {result.wall_time_s:.1f}s{suffix}]")
        print()
    for failure in results.failures:
        print(
            f"FAILED {failure.task}: {failure.kind} after "
            f"{failure.attempts} attempt(s) — {failure.message}"
        )
    cached = sum(result.cache_hit for result in results)
    extras = ""
    if results.failures:
        extras += f", {len(results.failures)} failed"
    if results.resumed:
        extras += f", {results.resumed} resumed"
    if results.quarantined:
        extras += f", {results.quarantined} corrupt file(s) quarantined"
    print(
        f"campaign: {len(results)} experiments, {cached} from cache{extras}, "
        f"{time.perf_counter() - started:.1f}s wall with --jobs {max(1, args.jobs)}"
    )
    return exitcodes.EXIT_FAILURES if results.failures else exitcodes.EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
