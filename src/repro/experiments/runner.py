"""Experiment registry and CLI runner.

``repro-experiments --list`` shows every table/figure reproduction;
``repro-experiments fig2 table1`` runs a selection; no arguments runs
the quick set (everything but the long leak campaigns).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    attack_evals,
    fig2_exec_types,
    fig4_hash,
    fig5_eviction,
    fig7_collisions,
    fig11_fingerprint,
    fig12_ssbd_overhead,
    sec3_selection,
    sec4_isolation,
    sec4_transient,
    sec5_extensions,
    sec6_mitigations,
    table1_state_machine,
    table2_counters,
    table3_platforms,
    table4_comparison,
)
from repro.experiments.base import ExperimentResult

__all__ = ["EXPERIMENTS", "QUICK_SET", "run_experiment", "main"]

#: name -> (driver, paper artifact, rough cost)
EXPERIMENTS: dict[str, tuple[Callable[[], ExperimentResult], str, str]] = {
    "fig2": (fig2_exec_types.run, "Fig 2", "fast"),
    "table1": (table1_state_machine.run, "TABLE I", "fast"),
    "sec3-selection": (sec3_selection.run, "Section III-C.1", "fast"),
    "fig4": (fig4_hash.run, "Fig 4", "fast"),
    "table2": (table2_counters.run, "TABLE II", "fast"),
    "fig5": (fig5_eviction.run, "Fig 5", "medium"),
    "sec4-isolation": (sec4_isolation.run, "Section IV-A", "fast"),
    "fig7": (fig7_collisions.run, "Fig 7", "medium"),
    "sec4-transient": (sec4_transient.run, "Figs 8-9", "fast"),
    "spectre-stl": (attack_evals.run_stl, "Section V-B", "slow"),
    "spectre-ctl": (attack_evals.run_ctl, "Section V-C.1", "slow"),
    "spectre-ctl-web": (attack_evals.run_web, "Section V-C.2", "slow"),
    "attack-comparison": (attack_evals.run_all, "Section V", "slow"),
    "fig11": (fig11_fingerprint.run, "Fig 11", "slow"),
    "fig12": (fig12_ssbd_overhead.run, "Fig 12", "fast"),
    "table3": (table3_platforms.run, "TABLE III", "slow"),
    "table4": (table4_comparison.run, "TABLE IV", "medium"),
    "sec6-mitigations": (sec6_mitigations.run, "Section VI", "slow"),
    "covert-channel": (sec5_extensions.run_covert_channel, "Section IV-D", "medium"),
    "stl-inplace": (sec5_extensions.run_stl_inplace, "Section V-B", "slow"),
    "address-leak": (sec5_extensions.run_address_leak, "Section V-D", "medium"),
}

#: Default selection: everything that completes within a couple minutes.
QUICK_SET = [
    name for name, (_, _, cost) in EXPERIMENTS.items() if cost != "slow"
]


def run_experiment(name: str) -> ExperimentResult:
    try:
        driver, _, _ = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise SystemExit(f"unknown experiment {name!r}; known: {known}") from None
    return driver()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures on the simulator.",
    )
    parser.add_argument("names", nargs="*", help="experiments to run")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--all", action="store_true", help="run everything")
    args = parser.parse_args(argv)

    if args.list:
        for name, (_, artifact, cost) in EXPERIMENTS.items():
            print(f"{name:20s} {artifact:18s} [{cost}]")
        return 0

    names = args.names or (list(EXPERIMENTS) if args.all else QUICK_SET)
    for name in names:
        started = time.time()
        result = run_experiment(name)
        print(result.render())
        print(f"[{name} completed in {time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
